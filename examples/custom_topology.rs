//! Routing a hand-written topology file: the workflow of an operator
//! with an `ibnetdiscover`-style cabling dump.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use dfsssp::fabric::format;
use dfsssp::prelude::*;

/// A small irregular cluster: two racks of leaf switches with uneven
/// uplinks plus a legacy ring segment — the kind of grown network the
/// paper targets. The same file feeds CI's route + vet artifact gate.
const CABLING: &str = include_str!("grown-cluster.topo");

fn main() {
    let net = format::parse_network(CABLING).expect("cabling file parses");
    net.validate().expect("consistent");
    println!(
        "parsed '{}': {} switches, {} endpoints, {} cables",
        net.label(),
        net.num_switches(),
        net.num_terminals(),
        net.num_cables()
    );

    let (routes, stats) = DfSssp::new().route_with_stats(&net).expect("routable");
    dfsssp::verify::verify_deadlock_free(&net, &routes).unwrap();
    println!(
        "DFSSSP: {} layers used ({} after balancing), {} cycles broken",
        stats.layers_used, stats.layers_final, stats.cycles_broken
    );

    // Show one path through the irregular part.
    let n5 = net.node_by_name("n5").unwrap();
    let n4 = net.node_by_name("n4").unwrap();
    let path = routes.path_channels(&net, n5, n4).unwrap();
    let hops: Vec<&str> = path
        .iter()
        .map(|&c| net.node(net.channel(c).dst).name.as_str())
        .collect();
    println!("path n5 -> n4: {}", hops.join(" > "));

    // Export the routed fabric for other tools.
    let json = format::routes_to_json(&routes);
    println!("routes serialize to {} bytes of JSON", json.len());
    let text = format::write_network(&net);
    println!(
        "network round-trips through the text format: {} lines",
        text.lines().count()
    );
}
