//! Failover and recovery through the fault-tolerance loop: a cable
//! fails, the SM reroutes around it; the cable is repaired, the SM
//! routes back — printing what each step cost in SMP writes (the
//! `LftDiff`), virtual lanes, and update-plan shape.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use dfsssp::prelude::*;
use dfsssp::topo;

fn main() {
    // A 4x4 torus: every cable has a detour, so single failures reroute.
    let net = topo::torus(&[4, 4], 1);
    println!(
        "fabric: {} — {} endpoints, {} switches, {} cables",
        net.label(),
        net.num_terminals(),
        net.num_switches(),
        net.num_cables()
    );

    let mut sm =
        SmLoop::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).expect("bring-up");
    println!(
        "bring-up: {} VLs, plan {}, resolved by {}",
        sm.outcome().vls,
        sm.outcome().plan.describe(),
        sm.outcome().resolved_by()
    );

    // Pick a switch-switch cable to fail (ids refer to the reference).
    let victim = net
        .channels()
        .find(|(_, ch)| net.is_switch(ch.src) && net.is_switch(ch.dst))
        .map(|(id, _)| id)
        .expect("torus has uplinks");
    let a = &net.node(net.channel(victim).src).name;
    let b = &net.node(net.channel(victim).dst).name;
    println!("\n--- cable {a} <-> {b} fails ---");
    let down = sm.handle(FabricEvent::CableDown(victim)).expect("reroute");
    report("degraded reroute", &down);

    println!("\n--- cable {a} <-> {b} repaired ---");
    let up = sm.handle(FabricEvent::CableUp(victim)).expect("recovery");
    report("recovery reroute", &up);

    assert_eq!(sm.network().num_cables(), net.num_cables());
    let nt = net.num_terminals();
    assert_eq!(sm.light_sweep().expect("walk"), nt * (nt - 1));
    println!(
        "\nfabric restored: {} cables, all {} pairs connected",
        net.num_cables(),
        nt * (nt - 1)
    );
}

fn report(step: &str, outcome: &dfsssp::subnet::EventOutcome) {
    println!(
        "{step}: {} LFT entries rewritten on {} switch(es) in {:.1} ms, \
         {} VLs, plan {}, resolved by {}",
        outcome.diff.entries_changed,
        outcome.diff.switches_touched,
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.vls,
        outcome.plan.describe(),
        outcome.resolved_by()
    );
}
