//! Deploying DFSSSP through the subnet manager on the Deimos
//! reconstruction — the paper's §VI setting: sweep the fabric, assign
//! LIDs, run the engine, program LFTs and SL→VL tables, validate.
//!
//! ```sh
//! cargo run --release --example subnet_manager
//! ```

use dfsssp::prelude::*;
use dfsssp::subnet::SmError;
use dfsssp::topo::realworld::RealSystem;

fn main() {
    // A scaled-down Deimos: three director switches bridged by cables.
    let net = RealSystem::Deimos.build(0.1);
    println!(
        "fabric: {} — {} endpoints, {} switches, {} cables",
        net.label(),
        net.num_terminals(),
        net.num_switches(),
        net.num_cables()
    );

    // The SM refuses engines whose dependency graphs are cyclic.
    let sm = SubnetManager::new(Sssp::new());
    match sm.run(&net, net.terminals()[0]) {
        Err(SmError::CyclicLayers(layers)) => {
            println!("plain SSSP refused: cyclic dependency layers {layers:?}")
        }
        Err(e) => println!("plain SSSP refused: {e}"),
        Ok(_) => println!("plain SSSP accepted (this fabric's SSSP CDG happens to be acyclic)"),
    }

    // DFSSSP deploys.
    let sm = SubnetManager::new(DfSssp::new());
    let fabric = sm
        .run(&net, net.terminals()[0])
        .expect("DFSSSP deploys everywhere");
    println!(
        "DFSSSP deployed: swept {} nodes with {} probes, programmed {} VLs, validated {} pairs",
        fabric.discovery.nodes.len(),
        fabric.discovery.probes,
        fabric.tables.num_vls(),
        fabric.pairs_validated
    );

    // Ask the SM for a path record, like an MPI library would at
    // connection setup.
    let (src_t, dst_t) = (0, net.num_terminals() - 1);
    let pr = fabric
        .tables
        .path_record(&fabric.lids, &net, src_t, dst_t)
        .expect("terminals are in the programmed fabric");
    println!(
        "path record {src_t} -> {dst_t}: dlid {}, service level {}",
        pr.dlid.0, pr.sl
    );

    // Walk the programmed hardware tables for that pair.
    let src = net.terminals()[src_t];
    let walk = fabric
        .tables
        .walk(&net, &fabric.lids, src, pr.dlid)
        .expect("programmed tables route the pair");
    let names: Vec<&str> = walk
        .iter()
        .map(|&c| net.node(net.channel(c).dst).name.as_str())
        .collect();
    println!(
        "hardware walk: {} hops via {}",
        walk.len(),
        names.join(" > ")
    );
}
