//! Quickstart: route a torus deadlock-free and measure its effective
//! bisection bandwidth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dfsssp::prelude::*;

fn main() {
    // 1. Build a topology. Tori deadlock under unrestricted minimal
    //    routing, which is exactly what DFSSSP fixes.
    let net = dfsssp::topo::torus(&[4, 4], 2);
    println!(
        "network: {} ({} switches, {} endpoints, {} cables)",
        net.label(),
        net.num_switches(),
        net.num_terminals(),
        net.num_cables()
    );

    // 2. Route it with DFSSSP (offline layer assignment, weakest-edge
    //    heuristic, 8 virtual lanes — the paper's configuration).
    let engine = DfSssp::new();
    let routes = engine
        .route_in(&net, &ComputeCtx::seq())
        .expect("torus is routable");
    println!(
        "routed by {}: {} virtual layers",
        routes.engine(),
        routes.num_layers()
    );

    // 3. Verify the deadlock-freedom condition (per-layer acyclic CDGs).
    dfsssp::verify::verify_deadlock_free(&net, &routes).expect("DFSSSP is deadlock-free");
    dfsssp::verify::verify_minimal(&net, &routes).expect("DFSSSP paths are minimal");
    println!("verified: all layers acyclic, all paths minimal");

    // 4. Compare the effective bisection bandwidth against MinHop.
    let opts = EbbOptions {
        patterns: 200,
        ..Default::default()
    };
    let minhop = MinHop::new()
        .route_in(&net, &ComputeCtx::seq())
        .expect("routable");
    let ebb_df = effective_bisection_bandwidth(&net, &routes, &opts).unwrap();
    let ebb_mh = effective_bisection_bandwidth(&net, &minhop, &opts).unwrap();
    println!("eBB DFSSSP: {ebb_df}");
    println!("eBB MinHop: {ebb_mh}");

    // 5. And prove the difference matters: drive real packets through
    //    finite buffers.
    let workload = Workload::uniform_random(net.num_terminals(), 30, 7);
    let outcome = simulate(&net, &routes, &workload, &SimConfig::default());
    println!("packet simulation under DFSSSP: {outcome:?}");
}
