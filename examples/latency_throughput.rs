//! Latency-throughput curves: the classic interconnect view, produced by
//! the open-loop packet simulator. Shows (a) how routing quality moves
//! the saturation point and (b) what a cyclic routing does to a network
//! pushed past its comfort zone.
//!
//! ```sh
//! cargo run --release --example latency_throughput
//! ```

use dfsssp::flitsim::{load_sweep, OpenLoopConfig};
use dfsssp::prelude::*;

fn main() {
    // An oversubscribed fat tree: 256 endpoints behind 2:1 tapering.
    let net = dfsssp::topo::xgft(2, &[16, 16], &[8, 8]);
    println!(
        "network: {} ({} endpoints)\n",
        net.label(),
        net.num_terminals()
    );

    let config = OpenLoopConfig {
        buffer_capacity: 2,
        warmup: 300,
        measure: 1200,
        seed: 7,
    };
    let loads = [0.01, 0.05, 0.1, 0.2, 0.4];

    for engine in [
        Box::new(MinHop::new()) as Box<dyn RoutingEngine>,
        Box::new(DfSssp::new()),
    ] {
        let routes = engine.route_in(&net, &ComputeCtx::seq()).expect("routable");
        println!("{} (uniform random traffic):", engine.name());
        println!(
            "  {:>8} {:>10} {:>12} {:>8}",
            "offered", "accepted", "latency(cyc)", "wedged"
        );
        for p in load_sweep(&net, &routes, &loads, &config) {
            println!(
                "  {:>8.2} {:>10.4} {:>12.1} {:>8}",
                p.offered,
                p.accepted,
                p.mean_latency,
                if p.deadlocked { "YES" } else { "no" }
            );
        }
        println!();
    }
    println!("DFSSSP's balanced paths push saturation higher: acceptance keeps");
    println!("tracking offered load where MinHop has already flattened.");
}
