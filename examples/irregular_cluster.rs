//! The paper's motivation, §I: regular topologies degrade in practice
//! (failed cables, grown clusters), specialized routings stop working,
//! and DFSSSP keeps both deadlock-freedom and bandwidth.
//!
//! ```sh
//! cargo run --release --example irregular_cluster
//! ```

use dfsssp::fabric::degrade;
use dfsssp::prelude::*;

fn main() {
    // Start from a clean 4-ary 3-tree (64 endpoints).
    let pristine = dfsssp::topo::kary_ntree(4, 3);
    // Cut 12 random cables: the operator's Tuesday morning.
    let (degraded, removed) = degrade::fail_random_cables(&pristine, 12, 2026);
    println!(
        "degraded {}: removed {removed} cables, still connected: {}\n",
        pristine.label(),
        degraded.is_strongly_connected()
    );

    let opts = EbbOptions {
        patterns: 200,
        ..Default::default()
    };
    let engines: Vec<Box<dyn RoutingEngine>> = vec![
        Box::new(FatTree::new()),
        Box::new(UpDown::new()),
        Box::new(MinHop::new()),
        Box::new(Lash::new()),
        Box::new(DfSssp::new()),
    ];
    println!(
        "{:<12} {:>10} {:>10} {:>14}",
        "engine", "pristine", "degraded", "deadlock-free?"
    );
    for engine in engines {
        let cell = |net: &Network| match engine.route_in(net, &ComputeCtx::seq()) {
            Err(_) => "n/a".to_string(),
            Ok(routes) => {
                let ok = dfsssp::verify::verify_deadlock_free(net, &routes).is_ok();
                let ebb = effective_bisection_bandwidth(net, &routes, &opts).unwrap();
                format!("{:.3}{}", ebb.mean, if ok { "" } else { "!" })
            }
        };
        let df = if engine.deadlock_free() { "yes" } else { "NO" };
        println!(
            "{:<12} {:>10} {:>10} {:>14}",
            engine.name(),
            cell(&pristine),
            cell(&degraded),
            df
        );
    }
    println!("\n('!' marks routings whose dependency graph is cyclic — a deadlock hazard;");
    println!(" 'n/a' marks engines that reject the topology, like OpenSM's do.)");
}
