//! The paper's Figure 2, live: a 5-switch ring where plain SSSP routing
//! deadlocks real traffic, and DFSSSP's virtual layers dissolve the
//! cycle.
//!
//! ```sh
//! cargo run --release --example ring_deadlock
//! ```

use dfsssp::prelude::*;

fn main() {
    let net = dfsssp::topo::ring(5, 1);
    println!("ring(5): every endpoint sends 8 packets 2 hops clockwise\n");

    let workload = Workload::shift(5, 2, 8);
    let config = SimConfig {
        buffer_capacity: 1,
        max_cycles: 100_000,
        ..SimConfig::default()
    };

    // Plain SSSP: the channel dependency graph is one big cycle.
    let sssp = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let report = dfsssp::verify::deadlock_report(&net, &sssp).unwrap();
    println!(
        "SSSP   : {} layer(s), cyclic layers {:?}",
        sssp.num_layers(),
        report.cyclic_layers
    );
    match simulate(&net, &sssp, &workload, &config) {
        Outcome::Deadlock {
            cycle,
            stuck,
            delivered,
        } => println!(
            "         -> DEADLOCK at cycle {cycle}: {stuck} packets stuck, {delivered} delivered\n"
        ),
        other => println!("         -> unexpected outcome {other:?}\n"),
    }

    // DFSSSP: same paths, but split over virtual layers with acyclic
    // dependency graphs.
    let dfsssp = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let report = dfsssp::verify::deadlock_report(&net, &dfsssp).unwrap();
    println!(
        "DFSSSP : {} layer(s), cyclic layers {:?}",
        dfsssp.num_layers(),
        report.cyclic_layers
    );
    match simulate(&net, &dfsssp, &workload, &config) {
        Outcome::Completed(stats) => println!(
            "         -> completed: {} packets in {} cycles (avg latency {:.1})",
            stats.delivered, stats.cycles, stats.avg_latency
        ),
        other => println!("         -> unexpected outcome {other:?}"),
    }
}
