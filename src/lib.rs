//! # dfsssp — Deadlock-Free Oblivious Routing for Arbitrary Topologies
//!
//! A from-scratch Rust reproduction of Domke, Hoefler & Nagel (IPDPS
//! 2011): the **DFSSSP** routing algorithm — balanced shortest-path
//! routing made deadlock-free by assigning paths to virtual layers whose
//! channel dependency graphs are acyclic — together with every substrate
//! and baseline the paper's evaluation needs.
//!
//! ## Quick start
//!
//! ```
//! use dfsssp::prelude::*;
//!
//! // A 2D torus: minimal routing deadlocks here without virtual lanes.
//! let net = dfsssp::topo::torus(&[4, 4], 1);
//!
//! // Route it deadlock-free (sequentially; `ComputeOpts::new()
//! // .threads(0).resolve()` fans the sweep across every core with
//! // bit-for-bit identical output).
//! let engine = DfSssp::new();
//! let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
//! assert!(routes.num_layers() >= 2);
//!
//! // Verify the Dally & Seitz condition holds per layer.
//! dfsssp::verify::verify_deadlock_free(&net, &routes).unwrap();
//!
//! // Measure the effective bisection bandwidth.
//! let opts = EbbOptions { patterns: 100, ..Default::default() };
//! let ebb = effective_bisection_bandwidth(&net, &routes, &opts).unwrap();
//! assert!(ebb.mean > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`fabric`] | network model, topology generators, forwarding tables |
//! | [`core`] | SSSP, DFSSSP, CDGs, the APP problem, verification |
//! | [`baselines`] | MinHop, Up*/Down*, DOR, LASH, FatTree |
//! | [`orcs`] | congestion simulator (effective bisection bandwidth) |
//! | [`flitsim`] | buffer-level simulator with deadlock detection |
//! | [`subnet`] | OpenSM-like subnet manager (sweep, LIDs, LFTs) |
//! | [`appsim`] | Netgauge / all-to-all / NAS workload models |
//! | [`vet`] | static analyzer for routing artifacts (lints V001–V006) |
//! | [`telemetry`] | phase timers, counters, histograms, run manifests |
//! | [`serve`] | epoch-versioned snapshots, batched concurrent query engine |
//! | [`delta`] | incremental rerouting: O(change) epoch recompute + transition certificates |
//!
//! ## Measuring a run
//!
//! ```
//! use dfsssp::prelude::*;
//! use std::sync::Arc;
//!
//! let net = dfsssp::topo::torus(&[4, 4], 1);
//! let collector = Arc::new(Collector::new());
//!
//! // Attach the collector to the engine, wrap it so `route` itself is
//! // timed, and run.
//! let config = EngineConfig::new().recorder(collector.clone());
//! let engine = Recorded::new(DfSssp::new().with_config(config), collector.clone());
//! let routes = engine
//!     .route_in(&net, &engine.config().compute.resolve())
//!     .unwrap();
//! assert!(routes.num_layers() >= 2);
//!
//! // All five DFSSSP phases plus the whole-route span were measured.
//! let snapshot = collector.snapshot();
//! for phase in ["sssp", "cdg_build", "cycle_search", "layer_assign", "balance", "route_total"] {
//!     assert!(snapshot.phases.contains_key(phase), "missing {phase}");
//! }
//!
//! // Snapshot -> versioned artifact (what `--metrics out.json` writes).
//! let manifest = RunManifest::new("doc-test").engine("DFSSSP").metrics(snapshot);
//! assert!(RunManifest::from_json(&manifest.to_json()).is_ok());
//! ```
//!
//! See `DESIGN.md` for the paper-to-module inventory and `EXPERIMENTS.md`
//! for the reproduced tables and figures.

pub use appsim;
pub use baselines;
pub use delta;
pub use dfsssp_core as core;
pub use fabric;
pub use flitsim;
pub use orcs;
pub use serve;
pub use subnet;
pub use telemetry;
pub use vet;

/// Topology generators, re-exported from [`fabric`].
pub use fabric::topo;

/// Deadlock-freedom and minimality verification, re-exported from
/// [`core`](dfsssp_core).
pub use dfsssp_core::verify;

/// The most common imports in one place.
pub mod prelude {
    pub use appsim::{alltoall_time, netgauge_ebb, Allocation, NasBenchmark};
    pub use baselines::{Dor, FatTree, Lash, MinHop, UpDown};
    pub use delta::{DeltaConfig, DeltaEngine, DeltaOutcome};
    pub use dfsssp_core::{
        Budget, ComputeCtx, ComputeOpts, CycleBreakHeuristic, DeadlockFree, DfSssp, EngineConfig,
        LayerAssignMode, Recorded, RouteError, RoutingEngine, Sssp,
    };
    pub use fabric::{Network, NetworkBuilder, Routes};
    pub use flitsim::{simulate, Outcome, SimConfig, Workload};
    pub use orcs::{effective_bisection_bandwidth, EbbOptions, Pattern};
    pub use serve::{PathAnswer, PathQuery, QueryEngine, RouteServer, SnapshotStore};
    pub use subnet::{FabricEvent, Rung, SmLoop, SubnetManager};
    pub use telemetry::{Collector, Recorder, RecorderHandle, RunManifest};
    pub use vet::check;
}
