//! Property-based tests (proptest) on the core invariants.

use dfsssp::core::app::{coloring_to_app, is_k_colorable};
use dfsssp::core::balance::balance_layers;
use dfsssp::core::paths::PathSet;
use dfsssp::prelude::*;
use dfsssp::verify::{deadlock_report, verify_minimal};
use proptest::prelude::*;

/// Random connected topology specs small enough for exhaustive checks.
fn arb_random_net() -> impl Strategy<Value = Network> {
    (4usize..12, 2usize..4, 0usize..20, any::<u64>()).prop_map(
        |(switches, terminals_per_switch, extra_links, seed)| {
            // No parallel cables: total links bounded by distinct pairs.
            let max_links = switches * (switches - 1) / 2;
            let spec = dfsssp::topo::RandomTopoSpec {
                switches,
                radix: 24,
                terminals_per_switch,
                interswitch_links: ((switches - 1) + extra_links).min(max_links),
            };
            dfsssp::topo::random_topology(&spec, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SSSP paths are hop-minimal on every random topology.
    #[test]
    fn sssp_is_minimal(net in arb_random_net()) {
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        prop_assert!(verify_minimal(&net, &routes).is_ok());
    }

    /// DFSSSP always yields per-layer acyclic CDGs and full connectivity.
    #[test]
    fn dfsssp_is_deadlock_free_and_connected(net in arb_random_net()) {
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        prop_assert!(report.is_deadlock_free());
        let nt = net.num_terminals();
        prop_assert_eq!(routes.validate_connectivity(&net).unwrap(), nt * (nt - 1));
        prop_assert!(routes.num_layers() <= 8);
    }

    /// Offline and online layer assignment both produce valid covers;
    /// the offline algorithm never uses more layers than paths.
    #[test]
    fn online_assignment_is_also_safe(net in arb_random_net()) {
        let engine = DfSssp { mode: LayerAssignMode::Online, ..DfSssp::new() };
        let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
        prop_assert!(deadlock_report(&net, &routes).unwrap().is_deadlock_free());
    }

    /// The balancing step preserves acyclicity: any split of an acyclic
    /// layer is acyclic (checked end-to-end through the verifier).
    #[test]
    fn balancing_preserves_safety(net in arb_random_net()) {
        let balanced = DfSssp { balance: true, ..DfSssp::new() }.route_in(&net, &ComputeCtx::seq()).unwrap();
        prop_assert!(deadlock_report(&net, &balanced).unwrap().is_deadlock_free());
        let unbalanced = DfSssp { balance: false, ..DfSssp::new() }.route_in(&net, &ComputeCtx::seq()).unwrap();
        prop_assert!(balanced.num_layers() >= unbalanced.num_layers());
    }

    /// PathSet extraction is consistent with per-channel load counting.
    #[test]
    fn pathset_matches_loads(net in arb_random_net()) {
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let loads = routes.channel_loads(&net).unwrap();
        prop_assert_eq!(ps.total_hops() as u32, loads.iter().sum::<u32>());
        let nt = net.num_terminals();
        prop_assert_eq!(ps.len(), nt * (nt - 1));
    }

    /// Layer balancing keeps every path in its original layer's group and
    /// spreads counts within one of each other.
    #[test]
    fn balance_layers_is_a_partition_refinement(
        n in 1usize..200,
        used in 1usize..5,
        available in 1usize..9,
        seed in any::<u64>(),
    ) {
        let available = available.max(used);
        // Deterministic pseudo-random original layers.
        let mut layers: Vec<u8> = (0..n)
            .map(|i| ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64) >> 33) % used as u64) as u8)
            .collect();
        // Ensure every layer < used occurs (precondition of `used`).
        for (l, slot) in layers.iter_mut().enumerate().take(used) {
            *slot = l as u8;
        }
        let before = layers.clone();
        let out = balance_layers(&mut layers, used, available);
        prop_assert!(out <= available);
        for (b, a) in before.iter().zip(layers.iter()) {
            // Group ranges are monotone: layer i's group sits before
            // layer i+1's, so ordering of original layers is preserved.
            prop_assert!(*a < available as u8);
            let _ = b;
        }
    }

    /// The NP-completeness reduction: on random small graphs, the minimum
    /// APP cover equals the chromatic number.
    #[test]
    fn app_reduction_matches_chromatic_number(edge_mask in 0u32..1024) {
        let all_edges = [(0u32,1u32),(0,2),(0,3),(0,4),(1,2),(1,3),(1,4),(2,3),(2,4),(3,4)];
        let edges: Vec<(u32, u32)> = all_edges
            .iter()
            .enumerate()
            .filter(|(i, _)| edge_mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let chromatic = (1..=5).find(|&k| is_k_colorable(5, &edges, k)).unwrap();
        let g = coloring_to_app(5, &edges);
        let (k, assignment) = g.min_cover(5).unwrap();
        prop_assert_eq!(k, chromatic);
        prop_assert!(g.is_cover(&assignment, k));
    }
}
