//! The parallel-compute determinism contract, end to end: at a fixed
//! `chunk`, the routes DFSSSP produces are a pure function of the
//! network — never of the worker count. Property tests sweep seeded
//! dragonfly / fat-tree / torus fabrics (pristine and degraded) and
//! compare the 2- and 4-worker tables bit for bit (`Routes: Eq`)
//! against the single-worker run.

use dfsssp::prelude::*;
use proptest::prelude::*;

/// Route `net` at 1, 2 and 4 workers under `chunk` and require all
/// three tables identical (and deadlock-free).
fn assert_thread_invariant(net: &Network, chunk: usize) -> Result<(), TestCaseError> {
    let engine = DfSssp::new();
    let baseline = engine
        .route_in(net, &ComputeCtx::new(1, chunk))
        .map_err(|e| TestCaseError::fail(format!("{}: {e}", net.label())))?;
    dfsssp::verify::verify_deadlock_free(net, &baseline)
        .map_err(|e| TestCaseError::fail(format!("{}: {e}", net.label())))?;
    for threads in [2usize, 4] {
        let routes = engine
            .route_in(net, &ComputeCtx::new(threads, chunk))
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", net.label())))?;
        prop_assert_eq!(
            &routes,
            &baseline,
            "{} diverged at threads={} chunk={}",
            net.label(),
            threads,
            chunk
        );
    }
    Ok(())
}

/// `net` with `cables` redundant cables failed (seeded); falls back to
/// the pristine network when nothing can be removed safely.
fn degraded(net: &Network, cables: usize, seed: u64) -> Network {
    let (worn, _removed) = dfsssp::fabric::degrade::fail_random_cables(net, cables, seed);
    worn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn torus_routes_ignore_worker_count(
        a in 3u16..6, b in 3u16..6, chunk_ix in 0usize..3,
        cables in 0usize..3, seed in 0u64..1024,
    ) {
        let net = dfsssp::topo::torus(&[a, b], 1);
        assert_thread_invariant(&degraded(&net, cables, seed), [1usize, 4, 16][chunk_ix])?;
    }

    #[test]
    fn fat_tree_routes_ignore_worker_count(
        k in 3usize..7, chunk_ix in 0usize..3,
        cables in 0usize..3, seed in 0u64..1024,
    ) {
        let net = dfsssp::topo::kary_ntree(k, 2);
        assert_thread_invariant(&degraded(&net, cables, seed), [1usize, 4, 16][chunk_ix])?;
    }

    #[test]
    fn dragonfly_routes_ignore_worker_count(
        a in 3usize..5, h in 1usize..3, chunk_ix in 0usize..3,
        cables in 0usize..3, seed in 0u64..1024,
    ) {
        let net = dfsssp::topo::dragonfly(a, 1, h);
        assert_thread_invariant(&degraded(&net, cables, seed), [1usize, 4, 16][chunk_ix])?;
    }
}

/// The non-property anchor: one deterministic sweep that always runs
/// identically, so a failure here bisects cleanly.
#[test]
fn example_topologies_are_thread_invariant() {
    for net in [
        dfsssp::topo::torus(&[4, 4], 2),
        dfsssp::topo::kary_ntree(4, 2),
        dfsssp::topo::dragonfly(3, 1, 1),
        dfsssp::topo::kautz(3, 2, 36, true),
    ] {
        for chunk in [1usize, 16] {
            assert_thread_invariant(&net, chunk).unwrap();
        }
    }
}
