//! Subnet-manager end-to-end runs over the real-world reconstructions
//! and formats: the full deployment pipeline the paper ships.

use dfsssp::fabric::format;
use dfsssp::prelude::*;
use dfsssp::topo::realworld::RealSystem;

#[test]
fn dfsssp_deploys_on_every_realworld_reconstruction() {
    for sys in RealSystem::ALL {
        let net = sys.build(0.05);
        let sm = SubnetManager::new(DfSssp::new());
        let fabric = sm
            .run(&net, net.terminals()[0])
            .unwrap_or_else(|e| panic!("{}: {e}", sys.name()));
        let nt = net.num_terminals();
        assert_eq!(fabric.pairs_validated, nt * (nt - 1), "{}", sys.name());
        assert!(fabric.tables.num_vls() <= 8, "{}", sys.name());
    }
}

#[test]
fn lft_walks_agree_with_routes_on_single_homed_fabrics() {
    let net = RealSystem::Odin.build(0.5);
    let sm = SubnetManager::new(DfSssp::new());
    let fabric = sm.run(&net, net.terminals()[0]).unwrap();
    for &src in net.terminals() {
        for &dst in net.terminals() {
            if src == dst {
                continue;
            }
            let walk = fabric
                .tables
                .walk(&net, &fabric.lids, src, fabric.lids.lid(dst))
                .unwrap();
            let path = fabric.routes.path_channels(&net, src, dst).unwrap();
            assert_eq!(walk, path);
        }
    }
}

#[test]
fn programmed_fabric_round_trips_through_json() {
    let net = dfsssp::topo::kary_ntree(2, 3);
    let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let njson = format::network_to_json(&net);
    let rjson = format::routes_to_json(&routes);
    let net2 = format::network_from_json(&njson).unwrap();
    let routes2 = format::routes_from_json(&rjson).unwrap();
    // The reloaded pair validates identically.
    let nt = net2.num_terminals();
    assert_eq!(routes2.validate_connectivity(&net2).unwrap(), nt * (nt - 1));
    dfsssp::verify::verify_deadlock_free(&net2, &routes2).unwrap();
}

#[test]
fn text_format_round_trips_all_generators() {
    let nets = vec![
        dfsssp::topo::ring(6, 2),
        dfsssp::topo::torus(&[3, 4], 1),
        dfsssp::topo::kary_ntree(3, 2),
        dfsssp::topo::xgft(2, &[4, 4], &[2, 2]),
        dfsssp::topo::kautz(2, 2, 12, true),
        dfsssp::topo::dragonfly(3, 1, 1),
    ];
    for net in nets {
        let text = format::write_network(&net);
        let back = format::parse_network(&text).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes(), "{}", net.label());
        assert_eq!(back.num_channels(), net.num_channels(), "{}", net.label());
        back.validate().unwrap();
        // And the reparsed network routes identically in shape.
        let a = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let b = DfSssp::new().route_in(&back, &ComputeCtx::seq()).unwrap();
        assert_eq!(a.num_layers(), b.num_layers(), "{}", net.label());
    }
}

#[test]
fn degraded_fabric_still_deploys() {
    let pristine = dfsssp::topo::kary_ntree(4, 2);
    let (net, removed) = dfsssp::fabric::degrade::fail_random_cables(&pristine, 6, 11);
    assert!(removed > 0);
    let sm = SubnetManager::new(DfSssp::new());
    let fabric = sm.run(&net, net.terminals()[0]).unwrap();
    let nt = net.num_terminals();
    assert_eq!(fabric.pairs_validated, nt * (nt - 1));
}
