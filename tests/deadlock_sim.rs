//! Cross-validation of the static deadlock analysis (channel dependency
//! graphs) against the dynamic packet simulator: acyclic CDGs must never
//! wedge, and the known cyclic configurations must wedge under pressure.

use dfsssp::prelude::*;
use dfsssp::verify::deadlock_report;

/// Any routing whose per-layer CDGs are acyclic must complete any finite
/// workload (the Dally & Seitz direction we rely on).
#[test]
fn acyclic_routings_never_wedge() {
    let cases: Vec<Network> = vec![
        dfsssp::topo::ring(5, 1),
        dfsssp::topo::ring(8, 1),
        dfsssp::topo::torus(&[4, 4], 1),
        dfsssp::topo::torus(&[5, 5], 1),
        dfsssp::topo::kautz(2, 2, 12, true),
        dfsssp::topo::dragonfly(3, 1, 1),
    ];
    for net in cases {
        for engine in [
            Box::new(DfSssp::new()) as Box<dyn RoutingEngine>,
            Box::new(Lash::new()),
            Box::new(UpDown::new()),
        ] {
            let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
            assert!(deadlock_report(&net, &routes).unwrap().is_deadlock_free());
            for (cap, seed) in [(1, 1u64), (2, 2), (4, 3)] {
                let w = Workload::uniform_random(net.num_terminals(), 12, seed);
                let config = SimConfig {
                    buffer_capacity: cap,
                    max_cycles: 2_000_000,
                    ..SimConfig::default()
                };
                let out = simulate(&net, &routes, &w, &config);
                assert!(
                    out.completed(),
                    "{} on {} cap={cap}: {out:?}",
                    engine.name(),
                    net.label()
                );
            }
        }
    }
}

/// The cyclic configurations of the paper's argument wedge in practice.
#[test]
fn cyclic_routings_wedge_under_adversarial_load() {
    // (network, shift hops): saturating directional patterns.
    let cases = [
        (dfsssp::topo::ring(5, 1), 2usize),
        (dfsssp::topo::ring(8, 1), 3),
        (dfsssp::topo::ring(11, 1), 4),
    ];
    for (net, hops) in cases {
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        assert!(!deadlock_report(&net, &routes).unwrap().is_deadlock_free());
        let w = Workload::shift(net.num_terminals(), hops, 32);
        let config = SimConfig {
            buffer_capacity: 1,
            max_cycles: 1_000_000,
            ..SimConfig::default()
        };
        let out = simulate(&net, &routes, &w, &config);
        assert!(out.deadlocked(), "{}: {out:?}", net.label());
    }
}

/// A cyclic CDG is only a hazard, not a guarantee: light traffic on the
/// same rings sails through. (This is why the bug class is so insidious
/// on production clusters — and why the paper insists on the static
/// guarantee.)
#[test]
fn cyclic_routings_survive_light_traffic() {
    let net = dfsssp::topo::ring(5, 1);
    let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let mut w = Workload::new(5);
    w.queues[0] = vec![2]; // one packet, no contention
    let out = simulate(&net, &routes, &w, &SimConfig::default());
    assert!(out.completed());
}

/// The balancing step must not reintroduce deadlock: simulate heavily on
/// balanced vs unbalanced DFSSSP.
#[test]
fn balanced_layers_still_safe_dynamically() {
    let net = dfsssp::topo::torus(&[4, 4], 1);
    for balance in [false, true] {
        let engine = DfSssp {
            balance,
            ..DfSssp::new()
        };
        let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::uniform_random(net.num_terminals(), 25, 5);
        let out = simulate(&net, &routes, &w, &SimConfig::default());
        assert!(out.completed(), "balance={balance}: {out:?}");
    }
}
