//! Routing budgets end to end: an exhausted [`Budget`] must surface as
//! a typed `RouteError::BudgetExceeded` — promptly, on every engine
//! that accepts a budget — and never as a hang or a panic.

use dfsssp::core::Budget;
use dfsssp::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A random topology big enough that routing takes real work.
fn big_random() -> Network {
    let spec = dfsssp::topo::RandomTopoSpec {
        switches: 60,
        radix: 24,
        terminals_per_switch: 4,
        interswitch_links: 240,
    };
    dfsssp::topo::random_topology(&spec, 7)
}

#[test]
fn elapsed_deadline_returns_budget_exceeded_promptly() {
    let net = big_random();
    let engine = DfSssp::new()
        .with_config(EngineConfig::new().budget(Budget::new().deadline(Duration::ZERO)));
    let start = Instant::now();
    let err = engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    assert!(
        matches!(
            err,
            RouteError::BudgetExceeded {
                resource: "deadline_ms",
                ..
            }
        ),
        "got {err}"
    );
    // A zero deadline must trip at the first checkpoint, not after the
    // full route: well under a second even on a loaded CI machine.
    assert!(start.elapsed() < Duration::from_secs(1));
}

#[test]
fn node_admission_is_checked_before_any_work() {
    let net = big_random();
    let engine = DfSssp::new().with_config(EngineConfig::new().budget(Budget::new().max_nodes(10)));
    match engine.route_in(&net, &ComputeCtx::seq()).unwrap_err() {
        RouteError::BudgetExceeded {
            resource: "nodes",
            limit,
        } => assert_eq!(limit, 10),
        other => panic!("expected node admission failure, got {other}"),
    }
}

#[test]
fn cdg_edge_cap_trips_during_layer_assignment() {
    let net = dfsssp::topo::torus(&[4, 4], 1);
    let engine =
        DfSssp::new().with_config(EngineConfig::new().budget(Budget::new().max_cdg_edges(1)));
    let err = engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    assert!(
        matches!(
            err,
            RouteError::BudgetExceeded {
                resource: "cdg_edges",
                limit: 1,
            }
        ),
        "got {err}"
    );
}

#[test]
fn layer_cap_clamps_and_surfaces_as_need_more_layers() {
    // A ring needs 2 layers; a budget capping layers at 1 clamps the
    // engine's own allowance and the shortfall keeps its usual type.
    let net = dfsssp::topo::ring(5, 1);
    let engine = DfSssp::new().with_config(EngineConfig::new().budget(Budget::new().max_layers(1)));
    let err = engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    assert!(
        matches!(err, RouteError::NeedMoreLayers { .. }),
        "got {err}"
    );
}

#[test]
fn lash_honors_the_same_budget() {
    let net = big_random();
    let engine =
        Lash::new().with_config(EngineConfig::new().budget(Budget::new().deadline(Duration::ZERO)));
    let err = engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    assert!(
        matches!(err, RouteError::BudgetExceeded { .. }),
        "got {err}"
    );
}

#[test]
fn wrapped_engines_honor_the_budget() {
    let net = big_random();
    let engine = DeadlockFree::new(Sssp::new())
        .with_config(EngineConfig::new().budget(Budget::new().deadline(Duration::ZERO)));
    let err = engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    assert!(
        matches!(err, RouteError::BudgetExceeded { .. }),
        "got {err}"
    );
}

#[test]
fn budget_trips_are_counted() {
    let net = big_random();
    let collector = Arc::new(Collector::new());
    let engine = DfSssp::new().with_config(
        EngineConfig::new()
            .recorder(collector.clone())
            .budget(Budget::new().max_nodes(10)),
    );
    engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
    let snapshot = collector.snapshot();
    assert_eq!(snapshot.counters.get("budget_trips"), Some(&2));
}

#[test]
fn unlimited_budget_changes_nothing() {
    let net = dfsssp::topo::torus(&[4, 4], 1);
    let plain = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let budgeted = DfSssp::new()
        .with_config(
            EngineConfig::new().budget(
                Budget::new()
                    .deadline(Duration::from_secs(3600))
                    .max_nodes(1 << 30)
                    .max_cdg_edges(1 << 30),
            ),
        )
        .route_in(&net, &ComputeCtx::seq())
        .unwrap();
    assert_eq!(plain.num_layers(), budgeted.num_layers());
    dfsssp::verify::verify_deadlock_free(&net, &budgeted).unwrap();
}
