//! Quantitative routing-quality assertions: the paper's comparative
//! claims, encoded with tolerances as regression tests. These guard the
//! *shape* results of EXPERIMENTS.md against algorithmic regressions.

use dfsssp::prelude::*;
use orcs::effective_bisection_bandwidth;

fn ebb(net: &Network, routes: &fabric::Routes) -> f64 {
    // Quality numbers are only meaningful for artifacts that actually
    // walk: gate every measurement on the static analyzer first (cyclic
    // CDGs and detours are legitimate engine trade-offs here, broken
    // tables are not).
    let lenient = vet::Config {
        deadlock_error: false,
        check_minimal: false,
        ..vet::Config::default()
    };
    let report = vet::analyze_with(net, routes, &lenient);
    assert_eq!(
        report.num_errors(),
        0,
        "{} tables broken on {}: {:?}",
        routes.engine(),
        net.label(),
        report.diagnostics
    );
    let opts = EbbOptions {
        patterns: 150,
        ..Default::default()
    };
    effective_bisection_bandwidth(net, routes, &opts)
        .unwrap()
        .mean
}

/// Fig 5's core claim: on oversubscribed fat trees, DFSSSP clearly beats
/// MinHop and LASH.
#[test]
fn dfsssp_dominates_on_oversubscribed_xgft() {
    let net = dfsssp::topo::xgft(2, &[16, 16], &[8, 8]);
    let df = ebb(
        &net,
        &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let mh = ebb(
        &net,
        &MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let lash = ebb(
        &net,
        &Lash::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    assert!(df > 1.3 * mh, "DFSSSP {df:.3} vs MinHop {mh:.3}");
    assert!(df > 2.0 * lash, "DFSSSP {df:.3} vs LASH {lash:.3}");
}

/// Fig 4's Odin claim: on a single-crossbar-class fabric there is nothing
/// to balance, so no engine should beat another by much.
#[test]
fn engines_tie_on_odin_class_fabric() {
    let net = dfsssp::topo::realworld::RealSystem::Odin.build(0.5);
    let df = ebb(
        &net,
        &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let mh = ebb(
        &net,
        &MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let ratio = df / mh;
    assert!(
        (0.85..=1.25).contains(&ratio),
        "DFSSSP {df:.3} vs MinHop {mh:.3} differ too much on Odin"
    );
}

/// Fig 6's claim: on Kautz graphs all reasonable engines are close.
#[test]
fn engines_tie_on_kautz() {
    let net = dfsssp::topo::kautz(2, 2, 48, true);
    let df = ebb(
        &net,
        &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let mh = ebb(
        &net,
        &MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let lash = ebb(
        &net,
        &Lash::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    for (name, x) in [("MinHop", mh), ("LASH", lash)] {
        let ratio = df / x;
        assert!(
            (0.8..=1.3).contains(&ratio),
            "DFSSSP {df:.3} vs {name} {x:.3} too far apart on Kautz"
        );
    }
}

/// DFSSSP's layers must never *cost* bandwidth: eBB is computed on
/// physical channels, so DFSSSP == SSSP exactly (same paths).
#[test]
fn layers_are_free_for_bandwidth() {
    let net = dfsssp::topo::torus(&[4, 4], 2);
    let sssp = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let dfsssp = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    assert_eq!(ebb(&net, &sssp), ebb(&net, &dfsssp));
}

/// Up*/Down*'s root bottleneck: on a torus it must trail DFSSSP clearly
/// (the limitation the paper cites for path-restricting schemes).
#[test]
fn updown_bottlenecks_on_torus() {
    let net = dfsssp::topo::torus(&[5, 5], 1);
    let df = ebb(
        &net,
        &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    let ud = ebb(
        &net,
        &UpDown::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
    );
    assert!(df > ud, "DFSSSP {df:.3} must beat Up*/Down* {ud:.3}");
}

/// Degradation sensitivity: DFSSSP keeps more of its bandwidth than the
/// tree-specialized engine when cables fail (the §I motivation).
#[test]
fn dfsssp_degrades_gracefully() {
    let pristine = dfsssp::topo::kary_ntree(4, 3);
    let (degraded, removed) = dfsssp::fabric::degrade::fail_random_cables(&pristine, 16, 4);
    assert!(removed >= 8);
    let before = ebb(
        &pristine,
        &DfSssp::new()
            .route_in(&pristine, &ComputeCtx::seq())
            .unwrap(),
    );
    let after = ebb(
        &degraded,
        &DfSssp::new()
            .route_in(&degraded, &ComputeCtx::seq())
            .unwrap(),
    );
    assert!(
        after > 0.5 * before,
        "DFSSSP lost too much: {before:.3} -> {after:.3}"
    );
    // And it still guarantees deadlock freedom there — vet-clean under
    // the strict default configuration.
    let routes = DfSssp::new()
        .route_in(&degraded, &ComputeCtx::seq())
        .unwrap();
    dfsssp::verify::verify_deadlock_free(&degraded, &routes).unwrap();
    assert!(vet::analyze(&degraded, &routes).clean());
}
