//! Property tests on the channel-dependency-graph machinery: the
//! resumable cycle search against its from-scratch counterpart, and the
//! interchange formats against generated networks.

use dfsssp::core::cdg::{Cdg, CycleSearch};
use dfsssp::core::dfsssp::{assign_layers_offline, assign_layers_offline_restart};
use dfsssp::core::paths::PathSet;
use dfsssp::prelude::*;
use proptest::prelude::*;

/// Random digraph as an edge list over `n` nodes.
fn arb_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..16).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_filter("no self-loops", |(a, b)| a != b);
        proptest::collection::vec(edge, 0..40).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Draining cycles with the resumable search always terminates with an
    /// acyclic graph, and it never reports a cycle containing dead edges.
    #[test]
    fn resumable_search_drains_arbitrary_digraphs((n, edges) in arb_digraph()) {
        let mut cdg = Cdg::new(n);
        for &(a, b) in &edges {
            cdg.add_dependency(a, b);
        }
        let mut search = CycleSearch::new(n);
        let mut rounds = 0;
        while let Some(cycle) = search.next_cycle(&cdg) {
            rounds += 1;
            prop_assert!(rounds <= edges.len() + 1, "non-termination");
            prop_assert!(!cycle.is_empty());
            // The reported cycle chains and is live.
            for w in cycle.windows(2) {
                prop_assert_eq!(cdg.edge(w[0]).to, cdg.edge(w[1]).from);
            }
            let first = cdg.edge(cycle[0]).from;
            let last = cdg.edge(*cycle.last().unwrap()).to;
            prop_assert_eq!(first, last);
            for &e in &cycle {
                prop_assert!(cdg.edge(e).count > 0, "dead edge in reported cycle");
            }
            // Break the cycle like the offline algorithm would: kill one
            // edge entirely.
            let victim = cycle[0];
            cdg.remove_edge(victim);
        }
        prop_assert!(cdg.is_acyclic());
    }

    /// Resumable and restart-based offline assignment agree on validity
    /// (both produce covers) for SSSP paths on random topologies.
    #[test]
    fn offline_variants_both_produce_covers(
        switches in 4usize..10,
        seed in any::<u64>(),
    ) {
        let spec = dfsssp::topo::RandomTopoSpec {
            switches,
            radix: 16,
            terminals_per_switch: 2,
            interswitch_links: (switches * 3 / 2).min(switches * (switches - 1) / 2),
        };
        let net = dfsssp::topo::random_topology(&spec, seed);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        for assignment in [
            assign_layers_offline(&ps, CycleBreakHeuristic::WeakestEdge, 32, false).unwrap().0,
            assign_layers_offline_restart(&ps, CycleBreakHeuristic::WeakestEdge, 32).unwrap().0,
        ] {
            let mut r = routes.clone();
            for p in ps.ids() {
                let (s, d) = ps.pair(p);
                r.set_layer(s as usize, d as usize, assignment[p as usize]);
            }
            r.recompute_num_layers();
            prop_assert!(dfsssp::verify::verify_deadlock_free(&net, &r).is_ok());
        }
    }

    /// The ibnetdiscover writer/parser round-trips random topologies with
    /// exact port preservation.
    #[test]
    fn ibnetdiscover_round_trips(switches in 3usize..8, seed in any::<u64>()) {
        let spec = dfsssp::topo::RandomTopoSpec {
            switches,
            radix: 12,
            terminals_per_switch: 2,
            interswitch_links: (switches - 1).max(switches).min(switches * (switches - 1) / 2),
        };
        let net = dfsssp::topo::random_topology(&spec, seed);
        let dump = dfsssp::fabric::format::write_ibnetdiscover(&net);
        let back = dfsssp::fabric::format::parse_ibnetdiscover(&dump).unwrap();
        prop_assert_eq!(back.num_nodes(), net.num_nodes());
        prop_assert_eq!(back.num_cables(), net.num_cables());
        back.validate().map_err(TestCaseError::fail)?;
        // Routing the reparsed fabric behaves identically.
        let a = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let b = DfSssp::new().route_in(&back, &ComputeCtx::seq()).unwrap();
        prop_assert_eq!(a.num_layers(), b.num_layers());
    }
}
