//! Bit-for-bit equivalence of the incremental reroute path against full
//! recompute, swept across topology families × seeded random failures.
//!
//! The delta engine's contract is exact: for any event sequence, routing
//! the degraded fabric through a warm [`DeltaEngine`] must produce the
//! *identical* `Routes` artifact — next-hops, layers, engine tag — that a
//! cold `DfSssp` full sweep produces at the same snapshot context. These
//! tests sweep that claim over torus / fat-tree / dragonfly fabrics,
//! chained cable failures, whole-switch failures (which change the node
//! roster and must fall back), and both sides of the dirty-fraction
//! fallback boundary.

use dfsssp::prelude::*;
use fabric::{degrade, topo, Network};

/// The snapshot compute context the delta path requires: a single chunk
/// spanning every terminal, i.e. all destination trees swept against one
/// uniform weight snapshot.
fn snap_cx(net: &Network) -> ComputeCtx {
    ComputeCtx {
        threads: 1,
        chunk: net.num_terminals().max(1),
    }
}

fn families() -> Vec<(&'static str, Network)> {
    vec![
        ("torus-3x3", topo::torus(&[3, 3], 1)),
        ("fat-tree-2-3", topo::kary_ntree(2, 3)),
        ("dragonfly-3-2-2", topo::dragonfly(3, 2, 2)),
    ]
}

/// An eager delta engine: never trips the dirty-fraction fallback, so
/// every eligible event exercises the incremental path.
fn eager() -> DeltaEngine {
    DeltaEngine::with_delta_config(
        DfSssp::new(),
        DeltaConfig {
            max_dirty_fraction: 1.0,
        },
    )
}

/// Route `net` through the warm delta engine and a cold full recompute
/// at the same snapshot context; assert bit-for-bit agreement. Returns
/// `false` when both paths refused (e.g. the fabric disconnected) —
/// refusal must also agree.
fn assert_equivalent(warm: &DeltaEngine, net: &Network, label: &str) -> bool {
    let cx = snap_cx(net);
    let incremental = warm.route_in(net, &cx);
    let full = DfSssp::new().route_in(net, &cx);
    match (incremental, full) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "{label}: delta and full recompute disagree");
            true
        }
        (Err(_), Err(_)) => false,
        (a, b) => panic!(
            "{label}: paths disagree on viability: delta ok={} full ok={}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

#[test]
fn delta_matches_full_across_families_and_failure_chains() {
    let mut delta_hits = 0usize;
    for (name, base) in families() {
        for seed in 0..4u64 {
            let engine = eager();
            let mut net = base.clone();
            assert!(assert_equivalent(&engine, &net, name), "{name}: base fabric must route");
            for step in 0..3u64 {
                let (degraded, removed) = degrade::fail_random_cables(&net, 1, seed * 31 + step);
                if removed == 0 {
                    break;
                }
                net = degraded;
                let label = format!("{name} seed={seed} step={step}");
                if !assert_equivalent(&engine, &net, &label) {
                    break; // disconnected: both paths refused identically
                }
                if engine.last_outcome().is_some_and(|o| o.delta) {
                    delta_hits += 1;
                }
            }
        }
    }
    assert!(
        delta_hits > 0,
        "sweep never exercised the incremental path; the equivalence claim was vacuous"
    );
}

#[test]
fn switch_failures_change_the_roster_and_fall_back_identically() {
    for (name, base) in families() {
        let engine = eager();
        assert!(assert_equivalent(&engine, &base, name));
        let Some(degraded) = degrade::fail_random_switch(&base, 7) else {
            continue;
        };
        if assert_equivalent(&engine, &degraded, name) {
            let outcome = engine.last_outcome().expect("route recorded an outcome");
            assert!(
                !outcome.delta,
                "{name}: a roster change can never take the delta path"
            );
        }
    }
}

#[test]
fn dirty_fraction_boundary_forces_fallback_yet_stays_identical() {
    // threshold 0.0: any dirtied destination trips the fallback, the
    // engine full-recomputes. threshold 1.0: the gate can never trip
    // (it is strict), the engine must patch. Both sides of the boundary
    // must be bit-for-bit identical to the cold sweep.
    let base = topo::torus(&[3, 3], 1);
    for (threshold, expect_delta) in [(0.0, false), (1.0, true)] {
        let engine = DeltaEngine::with_delta_config(
            DfSssp::new(),
            DeltaConfig {
                max_dirty_fraction: threshold,
            },
        );
        assert!(assert_equivalent(&engine, &base, "warmup"));
        let (net, removed) = degrade::fail_random_cables(&base, 1, 5);
        assert_eq!(removed, 1, "seed 5 must fail exactly one cable");
        if assert_equivalent(&engine, &net, "post-failure") {
            let outcome = engine.last_outcome().expect("route recorded an outcome");
            assert_eq!(
                outcome.delta, expect_delta,
                "threshold {threshold} on the wrong side of the fallback boundary"
            );
        }
    }
}

#[test]
fn cable_recovery_is_equivalent_too() {
    // Degrade then restore: the re-added cable exercises the
    // added-channel dirty rule rather than the removal rule.
    let base = topo::kary_ntree(2, 3);
    let engine = eager();
    assert!(assert_equivalent(&engine, &base, "base"));
    let (degraded, removed) = degrade::fail_random_cables(&base, 1, 11);
    assert_eq!(removed, 1);
    if assert_equivalent(&engine, &degraded, "degraded") {
        // Recovery: route the original fabric again with the warm cache
        // built on the degraded epoch.
        assert!(assert_equivalent(&engine, &base, "recovered"));
    }
}
