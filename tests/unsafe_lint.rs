//! Repo lint: every `unsafe` keyword in the tree must live in an allowlisted
//! file and be justified by a nearby `SAFETY` comment (or a `# Safety` doc
//! section for `unsafe fn` declarations, whose obligation sits on callers).
//!
//! This is the textual backstop behind the workspace-wide
//! `#![deny(unsafe_op_in_unsafe_fn)]`: the compiler proves each unsafe
//! *operation* is acknowledged, this test proves each acknowledgement is
//! *argued* — and that unsafe code cannot quietly spread to new files.
//! Growing the allowlist is a deliberate, reviewed act: add the file here
//! with a one-line reason.
//!
//! The scanner is deliberately dumb — line-based, strips `//` comments and
//! string literals before looking for the `unsafe` token — because the repo
//! style keeps one unsafe site per line. If it misfires on exotic
//! formatting, reformat the site rather than teaching the scanner tricks.

use std::fs;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe`, with why. Everything else must be
/// 100% safe Rust.
const ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/serve/src/swap.rs",
        "Arc::into_raw/from_raw slot ring — the lock-free hot-swap core",
    ),
    (
        "crates/serve/src/models.rs",
        "seeded-fault replicas of Swap for the weave mutation tests",
    ),
    (
        "crates/telemetry/src/json.rs",
        "from_utf8_unchecked on a tail that is valid UTF-8 by construction",
    ),
    (
        "crates/weave/src/sync.rs",
        "tracked Arc: raw-pointer round trips mirroring std::sync::Arc's API",
    ),
    (
        "crates/weave/src/sched.rs",
        "type-erased keep-alive pointers released by the explorer",
    ),
    (
        "crates/weave/tests/self_check.rs",
        "deliberate use-after-free schedules the checker must detect",
    ),
];

/// How far above an `unsafe` site a `SAFETY` comment may sit.
const SAFETY_WINDOW: usize = 6;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == ".stubs" {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Strip string literals and `//` comments so `"unsafe states"` in a format
/// string or prose in a doc comment does not count as code.
fn code_only(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        if in_char {
            match c {
                '\\' => {
                    chars.next();
                }
                '\'' => in_char = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            // Only treat a quote as a char literal when it closes within a
            // couple of characters; lifetimes (`'a`) never do.
            '\'' => {
                let mut look = chars.clone();
                let mut n = 0;
                let mut closes = false;
                while let Some(lc) = look.next() {
                    n += 1;
                    if lc == '\\' {
                        look.next();
                        n += 1;
                        continue;
                    }
                    if lc == '\'' {
                        closes = true;
                        break;
                    }
                    if n > 3 {
                        break;
                    }
                }
                if closes {
                    in_char = true;
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find("unsafe") {
        let start = from + i;
        let end = start + "unsafe".len();
        let pre_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            // `unsafe fn(` / `unsafe extern` in *type* position is a
            // signature fact, not an operation; nothing to justify.
            let rest = code[end..].trim_start();
            let is_fn_ptr_type = rest.starts_with("fn(") || rest.starts_with("extern");
            if !is_fn_ptr_type {
                return true;
            }
        }
        from = end;
    }
    false
}

fn justified(lines: &[&str], idx: usize) -> bool {
    // Same line (e.g. `unsafe { ... } // SAFETY: ...` keeps the comment).
    if lines[idx].contains("SAFETY") {
        return true;
    }
    // `unsafe fn` declarations may discharge via a `# Safety` doc section.
    let decl = code_only(lines[idx]);
    let is_decl = decl.contains("unsafe fn") && !decl.trim_start().starts_with("let");
    let lo = idx.saturating_sub(if is_decl { 16 } else { SAFETY_WINDOW });
    lines[lo..idx]
        .iter()
        .any(|l| l.contains("SAFETY") || (is_decl && l.contains("# Safety")))
}

#[test]
fn unsafe_is_allowlisted_and_justified() {
    let root = repo_root();
    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    rust_sources(&root.join("src"), &mut sources);
    rust_sources(&root.join("tests"), &mut sources);
    rust_sources(&root.join("examples"), &mut sources);
    sources.sort();

    let this = root.join("tests/unsafe_lint.rs");
    let mut violations = Vec::new();
    for path in sources {
        if path == this {
            continue;
        }
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let lines: Vec<&str> = text.lines().collect();
        let allowed = ALLOWLIST.iter().any(|(f, _)| *f == rel);
        let mut any_unsafe = false;
        for (i, raw) in lines.iter().enumerate() {
            let code = code_only(raw);
            if !has_unsafe_token(&code) {
                continue;
            }
            any_unsafe = true;
            if !allowed {
                violations.push(format!(
                    "{rel}:{}: `unsafe` outside the allowlist — add the file to \
                     tests/unsafe_lint.rs with a reason, or write it safely",
                    i + 1
                ));
                break;
            }
            if !justified(&lines, i) {
                violations.push(format!(
                    "{rel}:{}: `unsafe` without a `SAFETY:` comment within {} \
                     lines (or `# Safety` docs for an unsafe fn)",
                    i + 1,
                    SAFETY_WINDOW
                ));
            }
        }
        // Keep the allowlist honest: entries must still contain unsafe.
        if allowed && !any_unsafe {
            violations.push(format!(
                "{rel}: allowlisted but contains no `unsafe` — remove it from \
                 tests/unsafe_lint.rs"
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "unsafe hygiene violations:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn scanner_ignores_strings_and_comments() {
    assert!(!has_unsafe_token(&code_only(
        r#"println!("unsafe states: {}", n);"#
    )));
    assert!(!has_unsafe_token(&code_only("// unsafe in prose")));
    assert!(!has_unsafe_token(&code_only("/// docs about unsafe code")));
    assert!(!has_unsafe_token(&code_only(
        "dropper: unsafe fn(*const ())"
    )));
    assert!(has_unsafe_token(&code_only("let x = unsafe { *p };")));
    assert!(has_unsafe_token(&code_only(
        "unsafe impl<T> Send for Swap<T> {}"
    )));
    assert!(has_unsafe_token(&code_only("pub unsafe fn from_raw() {}")));
    assert!(!has_unsafe_token(&code_only("let unsafely = 3;")));
    assert!(!has_unsafe_token(&code_only(
        r#"let c = '"'; unsafe_marker"#
    )));
}
