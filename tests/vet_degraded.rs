//! Vet on degraded fabrics: the paper's motivating scenario is a machine
//! that lost cables or a switch. Re-routing the degraded network must
//! produce a vet-clean artifact; *stale* tables from before the failure
//! must be flagged, not silently accepted.

use dfsssp::prelude::*;
use fabric::degrade::{fail_random_cables, fail_random_switch};
use fabric::topo;
use vet::{LintCode, Witness};

#[test]
fn rerouting_after_cable_failures_is_vet_clean() {
    let net = topo::torus(&[4, 4], 2);
    let (degraded, removed) = fail_random_cables(&net, 4, 7);
    assert!(removed > 0, "a torus has removable cables");
    assert!(degraded.is_strongly_connected());
    let routes = DfSssp::new()
        .route_in(&degraded, &ComputeCtx::seq())
        .unwrap();
    let report = vet::analyze(&degraded, &routes);
    assert_eq!(
        report.num_errors(),
        0,
        "re-routed degraded fabric must be clean: {:?}",
        report.diagnostics
    );
    assert!(!report.has(LintCode::CdgCycle));
    assert_eq!(report.stats.pairs_routed, report.stats.pairs);
}

#[test]
fn rerouting_after_switch_failure_is_vet_clean() {
    // Terminals sit on every torus switch, so removal candidates need a
    // fabric with terminal-free switches: a fat tree's spine qualifies.
    let net = topo::kary_ntree(4, 2);
    let degraded = fail_random_switch(&net, 3).expect("a spine switch can fail");
    assert!(degraded.num_switches() < net.num_switches());
    assert!(degraded.is_strongly_connected());
    let routes = DfSssp::new()
        .route_in(&degraded, &ComputeCtx::seq())
        .unwrap();
    let report = vet::analyze(&degraded, &routes);
    assert_eq!(report.num_errors(), 0, "{:?}", report.diagnostics);
}

#[test]
fn stale_tables_after_cable_failure_are_flagged() {
    // Route the healthy fabric, then lose cables. Node counts still match
    // (only channels were renumbered), so this is exactly the trap a
    // structural shape check cannot catch — the walk has to.
    let net = topo::torus(&[4, 4], 2);
    let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let (degraded, removed) = fail_random_cables(&net, 4, 7);
    assert!(removed > 0);
    assert_eq!(degraded.num_nodes(), net.num_nodes());
    let report = vet::analyze(&degraded, &routes);
    assert!(
        report.num_errors() > 0,
        "stale tables must not pass vet: {:?}",
        report.stats
    );
    assert!(
        report.has(LintCode::InvalidNextHop) || report.has(LintCode::ForwardingLoop),
        "channel renumbering surfaces as V003 (or V001): {:?}",
        report.diagnostics
    );
}

#[test]
fn stale_tables_after_switch_failure_are_a_shape_mismatch() {
    let net = topo::kary_ntree(4, 2);
    let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let degraded = fail_random_switch(&net, 3).expect("a spine switch can fail");
    let report = vet::analyze(&degraded, &routes);
    assert_eq!(report.count(LintCode::InvalidNextHop), 1);
    assert!(report.num_errors() > 0);
    assert!(matches!(
        report.diagnostics[0].witness,
        Witness::Shape { .. }
    ));
}
