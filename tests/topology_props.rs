//! Property-based tests on the topology generators: structural
//! invariants every network family must satisfy.

use dfsssp::prelude::*;
use proptest::prelude::*;

fn check_basics(net: &Network) -> Result<(), TestCaseError> {
    net.validate().map_err(TestCaseError::fail)?;
    prop_assert!(net.is_strongly_connected(), "{} disconnected", net.label());
    // Every terminal has at least one attachment and at most 2 ports.
    for &t in net.terminals() {
        prop_assert!(!net.out_channels(t).is_empty());
    }
    // Channel endpoints consistent with num_cables.
    prop_assert!(net.num_cables() * 2 >= net.num_channels());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rings_are_sound(n in 3usize..24, t in 1usize..4) {
        let net = dfsssp::topo::ring(n, t);
        check_basics(&net)?;
        prop_assert_eq!(net.num_switches(), n);
        prop_assert_eq!(net.num_terminals(), n * t);
        // Ring diameter: floor(n/2) switch hops + 2 terminal hops.
        prop_assert_eq!(net.diameter(), Some(n / 2 + 2));
    }

    #[test]
    fn tori_are_sound(a in 2u16..6, b in 2u16..6, t in 1usize..3) {
        let net = dfsssp::topo::torus(&[a, b], t);
        check_basics(&net)?;
        prop_assert_eq!(net.num_switches(), (a * b) as usize);
        // Torus switch diameter: sum of per-dim half-extents.
        let d = (a / 2 + b / 2) as usize + 2;
        prop_assert_eq!(net.diameter(), Some(d));
    }

    #[test]
    fn meshes_are_sound(a in 2u16..6, b in 2u16..6) {
        let net = dfsssp::topo::mesh(&[a, b], 1);
        check_basics(&net)?;
        let d = (a + b - 2) as usize + 2;
        prop_assert_eq!(net.diameter(), Some(d));
    }

    #[test]
    fn kary_ntrees_are_sound(k in 2usize..6, n in 1usize..4) {
        let net = dfsssp::topo::kary_ntree(k, n);
        check_basics(&net)?;
        prop_assert_eq!(net.num_terminals(), k.pow(n as u32));
        prop_assert_eq!(net.num_switches(), n * k.pow((n - 1) as u32));
    }

    #[test]
    fn xgfts_are_sound(
        m1 in 2usize..6, m2 in 2usize..6,
        w1 in 1usize..3, w2 in 1usize..3,
    ) {
        let net = dfsssp::topo::xgft(2, &[m1, m2], &[w1, w2]);
        check_basics(&net)?;
        prop_assert_eq!(net.num_terminals(), m1 * m2);
        // Terminals have exactly w1 attachments.
        for &t in net.terminals() {
            prop_assert_eq!(net.out_channels(t).len(), w1);
        }
    }

    #[test]
    fn kautz_graphs_are_sound(b in 2usize..5, n in 1usize..4, bidir in any::<bool>()) {
        let terms = (b + 1) * b.pow(n as u32); // one per switch
        let net = dfsssp::topo::kautz(b, n, terms, bidir);
        check_basics(&net)?;
        prop_assert_eq!(net.num_switches(), (b + 1) * b.pow(n as u32));
        prop_assert_eq!(net.num_terminals(), terms);
    }

    #[test]
    fn dragonflies_are_sound(a in 2usize..5, p in 1usize..3, h in 1usize..3) {
        let net = dfsssp::topo::dragonfly(a, p, h);
        check_basics(&net)?;
        let g = a * h + 1;
        prop_assert_eq!(net.num_switches(), g * a);
        prop_assert_eq!(net.num_terminals(), g * a * p);
        // Dragonfly diameter <= 2 (terminal) + local+global+local.
        prop_assert!(net.diameter().unwrap() <= 5 + 2);
    }

    #[test]
    fn degradation_preserves_what_it_claims(
        a in 3u16..6, b in 3u16..6, cuts in 1usize..8, seed in any::<u64>(),
    ) {
        let net = dfsssp::topo::torus(&[a, b], 1);
        let (degraded, removed) =
            dfsssp::fabric::degrade::fail_random_cables(&net, cuts, seed);
        prop_assert!(removed <= cuts);
        prop_assert!(degraded.is_strongly_connected());
        prop_assert_eq!(degraded.num_terminals(), net.num_terminals());
        prop_assert_eq!(degraded.num_cables(), net.num_cables() - removed);
        degraded.validate().map_err(TestCaseError::fail)?;
        // The degraded network is still routable deadlock-free.
        let routes = DfSssp::new().route_in(&degraded, &ComputeCtx::seq()).unwrap();
        dfsssp::verify::verify_deadlock_free(&degraded, &routes).unwrap();
    }

    #[test]
    fn text_format_round_trips_random_networks(
        switches in 3usize..10, t in 1usize..3, seed in any::<u64>(),
    ) {
        let spec = dfsssp::topo::RandomTopoSpec {
            switches,
            radix: 16,
            terminals_per_switch: t,
            interswitch_links: (switches - 1).max(switches * 3 / 2)
                .min(switches * (switches - 1) / 2),
        };
        let net = dfsssp::topo::random_topology(&spec, seed);
        let text = dfsssp::fabric::format::write_network(&net);
        let back = dfsssp::fabric::format::parse_network(&text).unwrap();
        prop_assert_eq!(back.num_nodes(), net.num_nodes());
        prop_assert_eq!(back.num_channels(), net.num_channels());
        let json = dfsssp::fabric::format::network_to_json(&net);
        let back2 = dfsssp::fabric::format::network_from_json(&json).unwrap();
        prop_assert_eq!(back2.num_cables(), net.num_cables());
    }
}
