//! Cross-crate integration: every engine against every topology family,
//! checking the paper's claimed properties of each combination.

use dfsssp::prelude::*;
use dfsssp::verify::{deadlock_report, verify_minimal};

fn topologies() -> Vec<Network> {
    vec![
        dfsssp::topo::ring(6, 2),
        dfsssp::topo::torus(&[4, 4], 1),
        dfsssp::topo::torus(&[5, 5], 1),
        dfsssp::topo::mesh(&[4, 3], 2),
        dfsssp::topo::hypercube(4, 1),
        dfsssp::topo::kary_ntree(4, 2),
        dfsssp::topo::xgft(2, &[6, 6], &[3, 3]),
        dfsssp::topo::kautz(2, 2, 24, true),
        dfsssp::topo::dragonfly(4, 2, 2),
        dfsssp::topo::random_topology(
            &dfsssp::topo::RandomTopoSpec {
                switches: 16,
                radix: 16,
                terminals_per_switch: 3,
                interswitch_links: 28,
            },
            99,
        ),
    ]
}

/// Engines that must route EVERY strongly connected topology.
fn universal_engines() -> Vec<Box<dyn RoutingEngine>> {
    vec![
        Box::new(MinHop::new()),
        Box::new(UpDown::new()),
        Box::new(Lash::new()),
        Box::new(Sssp::new()),
        Box::new(DfSssp::new()),
    ]
}

#[test]
fn universal_engines_connect_every_pair_everywhere() {
    for net in topologies() {
        for engine in universal_engines() {
            let routes = engine
                .route_in(&net, &ComputeCtx::seq())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", engine.name(), net.label()));
            let nt = net.num_terminals();
            assert_eq!(
                routes.validate_connectivity(&net).unwrap(),
                nt * (nt - 1),
                "{} on {}",
                engine.name(),
                net.label()
            );
        }
    }
}

/// Post-routing static analysis: every engine's artifact must survive the
/// vet walk (no loops, no missing entries, no invalid hops); engines that
/// claim deadlock freedom must additionally be V004-clean under the
/// default (strict) configuration.
#[test]
fn every_artifact_passes_vet() {
    // Cyclic CDGs and detours are engine design choices, not table bugs;
    // tolerate them for the non-deadlock-free, non-minimal baselines.
    let lenient = vet::Config {
        deadlock_error: false,
        check_minimal: false,
        ..vet::Config::default()
    };
    for net in topologies() {
        for engine in universal_engines() {
            let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
            let report = vet::analyze_with(&net, &routes, &lenient);
            assert_eq!(
                report.num_errors(),
                0,
                "{} on {}: {:?}",
                engine.name(),
                net.label(),
                report.diagnostics
            );
            if engine.deadlock_free() {
                let strict = vet::analyze(&net, &routes);
                assert!(
                    strict.clean(),
                    "{} on {}: {:?}",
                    engine.name(),
                    net.label(),
                    strict.diagnostics
                );
            }
        }
    }
}

#[test]
fn deadlock_free_claims_hold() {
    for net in topologies() {
        for engine in universal_engines() {
            if !engine.deadlock_free() {
                continue;
            }
            let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
            let report = deadlock_report(&net, &routes).unwrap();
            assert!(
                report.is_deadlock_free(),
                "{} claims deadlock-freedom but is cyclic on {} (layers {:?})",
                engine.name(),
                net.label(),
                report.cyclic_layers
            );
        }
    }
}

#[test]
fn minimal_engines_are_minimal() {
    for net in topologies() {
        for engine in [
            Box::new(MinHop::new()) as Box<dyn RoutingEngine>,
            Box::new(Sssp::new()),
            Box::new(DfSssp::new()),
            Box::new(Lash::new()),
        ] {
            let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
            verify_minimal(&net, &routes).unwrap_or_else(|(s, d)| {
                panic!(
                    "{} non-minimal on {} for {s:?}->{d:?}",
                    engine.name(),
                    net.label()
                )
            });
        }
    }
}

#[test]
fn dfsssp_matches_sssp_paths_exactly() {
    // DFSSSP only adds layers; the forwarding tables are SSSP's.
    for net in topologies() {
        let sssp = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let dfsssp = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    sssp.path_channels(&net, src, dst).unwrap(),
                    dfsssp.path_channels(&net, src, dst).unwrap(),
                    "paths differ on {}",
                    net.label()
                );
            }
        }
    }
}

#[test]
fn dfsssp_respects_hardware_layer_budget() {
    for net in topologies() {
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        assert!(routes.num_layers() <= 8, "{}", net.label());
    }
}

#[test]
fn dor_agrees_with_dfsssp_on_mesh_connectivity() {
    let net = dfsssp::topo::mesh(&[4, 4], 1);
    let dor = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let nt = net.num_terminals();
    assert_eq!(dor.validate_connectivity(&net).unwrap(), nt * (nt - 1));
    // DOR on a mesh is deadlock-free even though the engine cannot
    // promise it for tori.
    assert!(deadlock_report(&net, &dor).unwrap().is_deadlock_free());
}

#[test]
fn deadlock_free_wrapper_upgrades_any_engine() {
    // DOR on a torus is the canonical cyclic routing (Dally & Seitz);
    // wrapping it with the APP machinery fixes it. Same for MinHop on a
    // ring.
    let torus = dfsssp::topo::torus(&[4, 4], 1);
    let plain = Dor::new().route_in(&torus, &ComputeCtx::seq()).unwrap();
    assert!(!deadlock_report(&torus, &plain).unwrap().is_deadlock_free());
    let wrapped = DeadlockFree::new(Dor::new())
        .route_in(&torus, &ComputeCtx::seq())
        .unwrap();
    assert!(deadlock_report(&torus, &wrapped)
        .unwrap()
        .is_deadlock_free());
    // The wrapper only adds layers: forwarding is still pure DOR.
    for &src in torus.terminals() {
        for &dst in torus.terminals() {
            if src == dst {
                continue;
            }
            assert_eq!(
                plain.path_channels(&torus, src, dst).unwrap(),
                wrapped.path_channels(&torus, src, dst).unwrap()
            );
        }
    }

    let ring = dfsssp::topo::ring(7, 1);
    let wrapped = DeadlockFree::new(MinHop::new())
        .route_in(&ring, &ComputeCtx::seq())
        .unwrap();
    assert!(deadlock_report(&ring, &wrapped).unwrap().is_deadlock_free());
    assert_eq!(wrapped.engine(), "DF-MinHop");
}

#[test]
fn fattree_engine_matches_tree_claims() {
    let net = dfsssp::topo::kary_ntree(4, 3);
    let routes = FatTree::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    verify_minimal(&net, &routes).unwrap();
    assert!(deadlock_report(&net, &routes).unwrap().is_deadlock_free());
}
