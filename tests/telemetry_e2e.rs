//! End-to-end checks of the telemetry layer: the zero-cost-when-disabled
//! property, phase coverage of a recorded DFSSSP run, manifest schema
//! stability, and the bench report round-trip.

use dfsssp::prelude::*;
use dfsssp::telemetry::{self, hists, phases};
use std::sync::Arc;

/// Routing with the no-op recorder and with a collector attached must
/// produce byte-identical tables: the recorder only observes.
#[test]
fn recording_does_not_change_routes() {
    let net = dfsssp::topo::torus(&[4, 4], 1);
    let plain = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let collector = Arc::new(Collector::new());
    let config = EngineConfig::new().recorder(collector.clone());
    let recorded = Recorded::new(DfSssp::new().with_config(config), collector.clone())
        .route_in(&net, &ComputeCtx::seq())
        .unwrap();
    assert_eq!(plain, recorded);
    assert!(!collector.snapshot().phases.is_empty());
}

/// A recorded DFSSSP run reports all five algorithm phases plus the
/// wrapper's `route_total`, and the standard route-quality histograms.
#[test]
fn dfsssp_run_covers_all_phases_and_histograms() {
    let net = dfsssp::topo::torus(&[4, 4], 1);
    let collector = Arc::new(Collector::new());
    let config = EngineConfig::new().recorder(collector.clone());
    let engine = Recorded::new(DfSssp::new().with_config(config), collector.clone());
    engine.route_in(&net, &ComputeCtx::seq()).unwrap();
    let snap = collector.snapshot();
    for phase in [
        phases::SSSP,
        phases::CDG_BUILD,
        phases::CYCLE_SEARCH,
        phases::LAYER_ASSIGN,
        phases::BALANCE,
        phases::ROUTE_TOTAL,
    ] {
        assert!(snap.phases.contains_key(phase), "missing phase {phase}");
    }
    for hist in [hists::PATH_LENGTH, hists::VL_CHANNELS, hists::EDGE_LOAD] {
        assert!(snap.histograms.contains_key(hist), "missing hist {hist}");
    }
    let nt = net.num_terminals() as u64;
    assert_eq!(snap.counters["paths_routed"], nt * (nt - 1));
    assert!(snap.counters["vls_used"] >= 2, "torus needs >= 2 VLs");
    // Every ordered pair contributed one path-length observation.
    assert_eq!(snap.histograms[hists::PATH_LENGTH].count, nt * (nt - 1));
}

/// The collector aggregates across engines: routing twice doubles the
/// pair counters.
#[test]
fn collector_aggregates_across_runs() {
    let net = dfsssp::topo::kary_ntree(2, 2);
    let collector = Arc::new(Collector::new());
    let engine = Recorded::new(Sssp::new(), collector.clone());
    engine.route_in(&net, &ComputeCtx::seq()).unwrap();
    let once = collector.snapshot().counters["paths_routed"];
    engine.route_in(&net, &ComputeCtx::seq()).unwrap();
    assert_eq!(collector.snapshot().counters["paths_routed"], 2 * once);
    assert_eq!(collector.snapshot().phases[phases::ROUTE_TOTAL].count, 2);
}

/// A manifest built from a real run survives the JSON round trip and
/// keeps its v1 shape.
#[test]
fn manifest_round_trips_from_a_real_run() {
    let net = dfsssp::topo::ring(6, 1);
    let collector = Arc::new(Collector::new());
    let config = EngineConfig::new().recorder(collector.clone());
    Recorded::new(DfSssp::new().with_config(config), collector.clone())
        .route_in(&net, &ComputeCtx::seq())
        .unwrap();
    let manifest = RunManifest::new("telemetry_e2e")
        .engine("DFSSSP")
        .seed(42)
        .metrics(collector.snapshot());
    let text = manifest.to_json();
    let back = RunManifest::from_json(&text).unwrap();
    assert_eq!(manifest, back);
    assert_eq!(back.schema, telemetry::SCHEMA);
    assert_eq!(back.seed, Some(42));
}

/// The recorded eBB sweep reports the same summary as the plain one and
/// fills the pattern histogram.
#[test]
fn recorded_ebb_matches_plain_ebb() {
    let net = dfsssp::topo::kary_ntree(4, 2);
    let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let opts = EbbOptions {
        patterns: 50,
        ..Default::default()
    };
    let plain = effective_bisection_bandwidth(&net, &routes, &opts).unwrap();
    let collector = Arc::new(Collector::new());
    let recorded = dfsssp::orcs::effective_bisection_bandwidth_recorded(
        &net,
        &routes,
        &opts,
        collector.as_ref(),
    )
    .unwrap();
    assert_eq!(plain.mean, recorded.mean);
    let snap = collector.snapshot();
    assert_eq!(snap.counters["patterns_simulated"], 50);
    assert_eq!(snap.histograms["pattern_bw_milli"].count, 50);
    assert_eq!(snap.phases[phases::EBB].count, 1);
}

/// The bench sweep's report round-trips and its DFSSSP cells embed full
/// per-phase manifests.
#[test]
fn bench_quick_report_round_trips() {
    let report = repro::bench::run(true, 3);
    assert_eq!(report.schema, repro::bench::SCHEMA);
    let back = repro::bench::BenchReport::from_json(&report.to_json()).unwrap();
    assert_eq!(report, back);
    let df = back
        .cases
        .iter()
        .find(|c| c.engine == "DFSSSP" && c.ok)
        .expect("a successful DFSSSP cell");
    assert!(df.manifest.metrics.phases.contains_key(phases::SSSP));
}

/// The subnet-manager loop reports reroute latency and rung counters.
#[test]
fn sm_loop_reroutes_report_telemetry() {
    let net = dfsssp::topo::kary_ntree(2, 2);
    let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();
    let collector = Arc::new(Collector::new());
    sm.set_recorder(collector.clone());
    // Killing a leaf switch strands its terminals: the quarantine rung
    // fires and the reroute is measured.
    let leaf = *net
        .switches()
        .iter()
        .find(|&&s| net.node(s).level == Some(0))
        .unwrap();
    sm.handle(FabricEvent::SwitchDown(leaf)).unwrap();
    let snap = collector.snapshot();
    assert_eq!(snap.counters["reroutes"], 1);
    assert_eq!(snap.counters["rung_quarantine"], 1);
    assert_eq!(snap.phases[phases::REROUTE].count, 1);
    assert_eq!(snap.histograms["reroute_us"].count, 1);
}
