//! Update windows × the V007 existence lint.
//!
//! `plan_update` stages drain-and-swap transitions using
//! [`vet::union_cycles`] / [`vet::dependency_edges`]; V007 answers a
//! different question — whether the *fabric* still admits any single-layer
//! deadlock-free routing at all. These tests pin their interaction down:
//! on a certified fabric every stage of a staged plan is clean, and on a
//! refuted fabric the update machinery keeps working (layering is the one
//! escape hatch the theorem leaves open) while single-layer artifacts are
//! condemned outright.

use dfsssp::prelude::*;
use fabric::degrade::fail_random_cables;
use fabric::topo;
use subnet::{plan_update, remap_routes};
use vet::{Existence, LintCode, Severity};

/// Switches cabled clockwise-only: strongly connected, but every
/// switch-to-switch pair has exactly one path and the forced dependencies
/// close the ring — V007 refutes single-layer existence.
fn unidirectional_ring(n: usize) -> Network {
    let mut b = NetworkBuilder::new();
    let s: Vec<_> = (0..n).map(|i| b.add_switch(format!("s{i}"), 4)).collect();
    let t: Vec<_> = (0..n).map(|i| b.add_terminal(format!("t{i}"))).collect();
    for i in 0..n {
        b.add_channel(s[i], s[(i + 1) % n]).unwrap();
        b.link(t[i], s[i]).unwrap();
    }
    b.build()
}

#[test]
fn staged_update_on_a_certified_fabric_is_clean_at_every_stage() {
    let net = topo::torus(&[4, 4], 1);
    let old = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();

    // Lose some cables, re-express the stale tables against the survivor
    // fabric, and re-route. The degraded fabric still certifies.
    let (degraded, removed) = fail_random_cables(&net, 4, 11);
    assert!(removed > 0);
    let stale = remap_routes(&net, &old, &degraded);
    let fresh = DfSssp::new()
        .route_in(&degraded, &ComputeCtx::seq())
        .unwrap();
    assert!(
        matches!(vet::existence(&degraded), Existence::Exists { .. }),
        "losing {removed} cables must not refute existence on a torus"
    );

    let plan = plan_update(&degraded, Some(&stale), &fresh, 8);
    assert!(
        !plan.stages.is_empty(),
        "stale tables must need reprogramming"
    );
    assert!(
        plan.all_vetted(),
        "every drain-and-swap stage must pass the analyzer: {}",
        plan.describe()
    );

    // If the planner staged the window, the hazards it cites must be real:
    // each union cycle's consecutive edges exist in the merged per-layer
    // dependency edges of the two endpoint artifacts.
    if !plan.direct {
        let cycles = vet::union_cycles(&degraded, &[&stale, &fresh]);
        assert!(!cycles.is_empty(), "staged plans exist only under hazards");
        assert_eq!(
            plan.hazard_layers,
            cycles.iter().map(|(l, _)| *l).collect::<Vec<_>>()
        );
        let a = vet::dependency_edges(&degraded, &stale);
        let b = vet::dependency_edges(&degraded, &fresh);
        for (layer, cycle) in &cycles {
            let l = *layer as usize;
            for w in cycle.windows(2) {
                let edge = (w[0].0, w[1].0);
                assert!(
                    a.get(l).is_some_and(|s| s.contains(&edge))
                        || b.get(l).is_some_and(|s| s.contains(&edge)),
                    "cited hazard edge {edge:?} is in neither artifact"
                );
            }
        }
    }

    // Both endpoints of the window carry the certificate in their report.
    for artifact in [&stale, &fresh] {
        let report = vet::analyze(&degraded, artifact);
        assert!(!report.has(LintCode::DeadlockExistence));
        assert!(
            report
                .stats
                .existence
                .as_deref()
                .is_some_and(|p| p.starts_with("certified")),
            "expected a certificate, got {:?}",
            report.stats.existence
        );
    }
}

#[test]
fn refuted_fabric_condemns_single_layer_but_not_layered_artifacts() {
    let net = unidirectional_ring(4);
    assert!(matches!(vet::existence(&net), Existence::NotExists(_)));

    // A single-layer routing on this fabric is impossible to make
    // deadlock-free — V007 is an *error* for it.
    let flat = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let report = vet::analyze(&net, &flat);
    let diag = report
        .diagnostics_for(LintCode::DeadlockExistence)
        .next()
        .expect("V007 must fire on a refuted fabric");
    assert_eq!(diag.severity, Severity::Error);

    // A layered routing took the only escape hatch: V007 downgrades to a
    // warning citing that the layers are provably necessary.
    let layered = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    assert!(layered.num_layers() > 1, "the ring needs layers");
    let report = vet::analyze(&net, &layered);
    let diag = report
        .diagnostics_for(LintCode::DeadlockExistence)
        .next()
        .expect("V007 still reports the refutation");
    assert_eq!(diag.severity, Severity::Warning);
    assert!(
        diag.message.contains("provably necessary"),
        "{}",
        diag.message
    );
    assert_eq!(report.num_errors(), 0, "{:?}", report.diagnostics);

    // And the update machinery keeps working above the refuted fabric:
    // bring-up (no old tables) plans direct and fully vetted.
    let plan = plan_update(&net, None, &layered, 8);
    assert!(plan.direct && plan.all_vetted());
}
