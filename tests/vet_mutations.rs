//! Mutation tests for the `vet` static analyzer.
//!
//! Two angles: (1) DFSSSP artifacts on every topology generator must come
//! back clean — the analyzer has no false positives on correct tables;
//! (2) deliberately corrupted tables must trigger the matching lint code —
//! the analyzer has no false negatives for the defect classes it claims
//! to catch. The proptest block at the bottom repeats the corruptions at
//! random positions on random topologies.

use dfsssp::prelude::*;
use fabric::topo::realworld::RealSystem;
use fabric::topo::{self, RandomTopoSpec};
use fabric::{ChannelId, Network, NodeId};
use vet::{LintCode, Severity, Witness};

fn df(net: &Network) -> fabric::Routes {
    DfSssp::new()
        .route_in(net, &ComputeCtx::seq())
        .expect("DFSSSP routes")
}

/// The channels of the routed path `src -> dst`, plus dst's terminal index.
fn routed_path(
    net: &Network,
    routes: &fabric::Routes,
    src: NodeId,
    dst: NodeId,
) -> (Vec<ChannelId>, usize) {
    let path = routes.path_channels(net, src, dst).expect("walkable path");
    (path, net.terminal_index(dst).unwrap())
}

// ---------------------------------------------------------------------------
// No false positives: DFSSSP is vet-clean on every generator.
// ---------------------------------------------------------------------------

#[test]
fn dfsssp_is_vet_clean_on_every_generator() {
    let mut nets: Vec<(String, Network)> = vec![
        ("ring".into(), topo::ring(6, 2)),
        ("star".into(), topo::star(6)),
        ("fully_connected".into(), topo::fully_connected(4, 2)),
        ("mesh".into(), topo::mesh(&[4, 3], 2)),
        ("torus".into(), topo::torus(&[4, 4], 1)),
        ("hypercube".into(), topo::hypercube(4, 1)),
        ("kary_ntree".into(), topo::kary_ntree(4, 2)),
        ("xgft".into(), topo::xgft(2, &[6, 6], &[3, 3])),
        ("clos2".into(), topo::clos2(24, 4, 6, 3, 3)),
        ("kautz".into(), topo::kautz(2, 2, 24, true)),
        ("dragonfly".into(), topo::dragonfly(4, 2, 2)),
        (
            "random".into(),
            topo::random_topology(
                &RandomTopoSpec {
                    switches: 16,
                    radix: 16,
                    terminals_per_switch: 3,
                    interswitch_links: 28,
                },
                99,
            ),
        ),
    ];
    for sys in RealSystem::ALL {
        nets.push((format!("realworld/{}", sys.name()), sys.build(0.1)));
    }
    for (name, net) in &nets {
        let report = vet::analyze(net, &df(net));
        assert_eq!(
            report.num_errors(),
            0,
            "{name}: DFSSSP artifact has error findings: {:?}",
            report.diagnostics
        );
        assert!(
            !report.has(LintCode::CdgCycle),
            "{name}: DFSSSP produced a cyclic layer"
        );
        assert_eq!(
            report.stats.pairs_routed, report.stats.pairs,
            "{name}: not every pair routed"
        );
    }
}

// ---------------------------------------------------------------------------
// The acceptance witness: SSSP on a ring must yield a concrete cycle.
// ---------------------------------------------------------------------------

#[test]
fn sssp_on_ring_yields_nonempty_chained_cycle_witness() {
    let net = topo::ring(5, 1);
    let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let report = vet::analyze(&net, &routes);
    assert!(report.has(LintCode::CdgCycle));
    assert!(!report.clean(), "a cyclic CDG is an error by default");
    let d = report.diagnostics_for(LintCode::CdgCycle).next().unwrap();
    let Witness::CdgCycle { layer, channels } = &d.witness else {
        panic!("V004 must carry a CdgCycle witness, got {:?}", d.witness);
    };
    assert_eq!(*layer, 0);
    assert!(!channels.is_empty(), "cycle witness must not be empty");
    // Consecutive dependencies chain through shared switches, and the
    // last channel feeds the first: a genuine cycle, not a fragment.
    for w in channels.windows(2) {
        assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
    }
    assert_eq!(
        net.channel(*channels.last().unwrap()).dst,
        net.channel(channels[0]).src
    );
}

// ---------------------------------------------------------------------------
// No false negatives: each corruption triggers its lint code.
// ---------------------------------------------------------------------------

#[test]
fn dropping_a_used_entry_is_v002() {
    let net = topo::torus(&[4, 4], 1);
    let mut routes = df(&net);
    let (src, dst) = (net.terminals()[0], net.terminals()[5]);
    let (path, dst_t) = routed_path(&net, &routes, src, dst);
    let first_switch = net.channel(path[0]).dst;
    routes.clear_next(first_switch, dst_t);
    let report = vet::analyze(&net, &routes);
    assert!(report.has(LintCode::MissingEntry));
    assert!(report.num_errors() > 0, "a used entry is missing: error");
    assert!(report.stats.pairs_broken >= 1);
    assert!(
        report.stats.broken_pairs.contains(&(src, dst)),
        "the broken pair must be sampled: {:?}",
        report.stats.broken_pairs
    );
}

#[test]
fn redirecting_into_a_ping_pong_is_v001() {
    let net = topo::torus(&[4, 4], 1);
    let mut routes = df(&net);
    let (src, dst) = (net.terminals()[0], net.terminals()[5]);
    let (path, dst_t) = routed_path(&net, &routes, src, dst);
    assert!(path.len() >= 3, "need a switch-to-switch hop to corrupt");
    // path[1] is sA -> sB; point sB back at sA. sA still forwards to sB,
    // so the walk ping-pongs forever.
    let hop = net.channel(path[1]);
    let back = net.channel_between(hop.dst, hop.src).unwrap();
    routes.set_next(hop.dst, dst_t, back);
    let report = vet::analyze(&net, &routes);
    assert!(report.has(LintCode::ForwardingLoop));
    assert!(report.num_errors() > 0);
    let d = report
        .diagnostics_for(LintCode::ForwardingLoop)
        .next()
        .unwrap();
    let Witness::TableLoop { channels, .. } = &d.witness else {
        panic!("V001 must carry a TableLoop witness");
    };
    assert_eq!(channels.len(), 2, "the loop is the 2-channel ping-pong");
}

#[test]
fn out_of_range_channel_is_v003() {
    let net = topo::torus(&[4, 4], 1);
    let mut routes = df(&net);
    let (src, dst) = (net.terminals()[0], net.terminals()[5]);
    let (path, dst_t) = routed_path(&net, &routes, src, dst);
    let first_switch = net.channel(path[0]).dst;
    routes.set_next(
        first_switch,
        dst_t,
        ChannelId(net.num_channels() as u32 + 7),
    );
    let report = vet::analyze(&net, &routes);
    assert!(report.has(LintCode::InvalidNextHop));
    assert!(report.num_errors() > 0);
}

#[test]
fn foreign_origin_channel_is_v003() {
    let net = topo::torus(&[4, 4], 1);
    let mut routes = df(&net);
    let (src, dst) = (net.terminals()[0], net.terminals()[5]);
    let (path, dst_t) = routed_path(&net, &routes, src, dst);
    let first_switch = net.channel(path[0]).dst;
    // A perfectly valid channel — that leaves the source terminal, not
    // this switch.
    routes.set_next(first_switch, dst_t, path[0]);
    let report = vet::analyze(&net, &routes);
    let d = report
        .diagnostics_for(LintCode::InvalidNextHop)
        .next()
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(matches!(d.witness, Witness::NextHop { node, .. } if node == first_switch));
}

#[test]
fn stale_tables_for_another_network_are_a_single_v003() {
    let small = topo::ring(5, 1);
    let routes = df(&small);
    let big = topo::ring(6, 1);
    let report = vet::analyze(&big, &routes);
    assert_eq!(report.count(LintCode::InvalidNextHop), 1);
    assert!(report.num_errors() > 0);
    assert!(matches!(
        report.diagnostics[0].witness,
        Witness::Shape { .. }
    ));
}

#[test]
fn layer_overflow_and_imbalance_are_v005() {
    // DFSSSP needs >= 2 layers on a torus; a 1-VL switch cannot hold that.
    let net = topo::torus(&[4, 4], 1);
    let routes = df(&net);
    assert!(routes.num_layers() >= 2);
    let tight = vet::Config {
        hw_vls: Some(1),
        ..vet::Config::default()
    };
    let report = vet::analyze_with(&net, &routes, &tight);
    assert!(report.has(LintCode::VlOutOfRange));
    assert!(report.num_errors() > 0);
    // With enough VLs the same artifact passes.
    let roomy = vet::Config {
        hw_vls: Some(routes.num_layers()),
        ..vet::Config::default()
    };
    assert!(vet::analyze_with(&net, &routes, &roomy).clean());

    // Bumping one pair onto layer 7 of an otherwise single-layer artifact
    // leaves layers 1..=6 empty: gross imbalance, flagged as a warning.
    let tree = topo::kary_ntree(2, 2);
    let mut routes = Sssp::new().route_in(&tree, &ComputeCtx::seq()).unwrap();
    assert_eq!(routes.num_layers(), 1, "SSSP never adds layers");
    routes.set_layer(0, 1, 7);
    let report = vet::analyze(&tree, &routes);
    assert!(report.has(LintCode::VlOutOfRange));
    assert!(report.num_warnings() > 0);
    let d = report
        .diagnostics_for(LintCode::VlOutOfRange)
        .next()
        .unwrap();
    assert!(matches!(d.witness, Witness::LayerHistogram { .. }));
}

#[test]
fn detour_is_v006_with_stretch() {
    // ring(5): s0's minimal route to t2 goes s0 -> s1 -> s2 (4 hops
    // terminal to terminal). Send it the long way round instead.
    let net = topo::ring(5, 1);
    let mut routes = df(&net);
    let (s, t) = (net.switches(), net.terminals());
    let long_way = net.channel_between(s[0], s[4]).unwrap();
    routes.set_next(s[0], 2, long_way);
    let report = vet::analyze(&net, &routes);
    assert!(report.has(LintCode::NonMinimalPath));
    let d = report
        .diagnostics_for(LintCode::NonMinimalPath)
        .next()
        .unwrap();
    let Witness::Stretch {
        src,
        dst,
        hops,
        minimal,
    } = d.witness
    else {
        panic!("V006 must carry a Stretch witness");
    };
    assert_eq!((src, dst), (t[0], t[2]));
    assert_eq!((hops, minimal), (5, 4));
    // A detour alone is a warning; the artifact still walks and is
    // deadlock-free, so the report stays clean.
    assert!(report.clean());
    // Engines that are non-minimal by design can opt out.
    let cfg = vet::Config {
        check_minimal: false,
        ..vet::Config::default()
    };
    assert!(!vet::analyze_with(&net, &routes, &cfg).has(LintCode::NonMinimalPath));
}

// ---------------------------------------------------------------------------
// Randomized mutation properties (satellite: property tests).
// ---------------------------------------------------------------------------

mod random_mutations {
    use super::*;
    use proptest::prelude::*;

    fn small_random(seed: u64) -> Network {
        topo::random_topology(
            &RandomTopoSpec {
                switches: 10,
                radix: 10,
                terminals_per_switch: 2,
                interswitch_links: 16,
            },
            seed,
        )
    }

    /// Pick a distinct ordered terminal pair from an arbitrary index.
    fn pick_pair(net: &Network, pick: usize) -> (NodeId, NodeId) {
        let ts = net.terminals();
        let n = ts.len();
        let src = ts[pick % n];
        let step = 1 + (pick / n) % (n - 1);
        (src, ts[(pick % n + step) % n])
    }

    /// The pair picker must never alias src and dst, whatever the index.
    #[test]
    fn pick_pair_is_always_distinct() {
        let net = small_random(3);
        for pick in 0..200 {
            let (src, dst) = pick_pair(&net, pick);
            assert_ne!(src, dst);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn dfsssp_on_random_topologies_is_clean(seed in 0u64..64) {
            let net = small_random(seed);
            let report = vet::analyze(&net, &df(&net));
            prop_assert_eq!(report.num_errors(), 0);
            prop_assert!(!report.has(LintCode::CdgCycle));
        }

        #[test]
        fn dropping_any_used_entry_is_caught(seed in 0u64..64, pick in 0usize..10_000) {
            let net = small_random(seed);
            let mut routes = df(&net);
            let (src, dst) = pick_pair(&net, pick);
            let (path, dst_t) = routed_path(&net, &routes, src, dst);
            routes.clear_next(net.channel(path[0]).dst, dst_t);
            let report = vet::analyze(&net, &routes);
            prop_assert!(report.has(LintCode::MissingEntry));
            prop_assert!(report.num_errors() > 0);
            prop_assert!(report.stats.pairs_broken >= 1);
        }

        #[test]
        fn any_garbage_next_hop_is_caught(seed in 0u64..64, pick in 0usize..10_000) {
            let net = small_random(seed);
            let mut routes = df(&net);
            let (src, dst) = pick_pair(&net, pick);
            let (path, dst_t) = routed_path(&net, &routes, src, dst);
            let garbage = ChannelId((net.num_channels() + 1 + pick % 100) as u32);
            routes.set_next(net.channel(path[0]).dst, dst_t, garbage);
            let report = vet::analyze(&net, &routes);
            prop_assert!(report.has(LintCode::InvalidNextHop));
            prop_assert!(report.num_errors() > 0);
        }

        #[test]
        fn any_induced_ping_pong_is_caught(seed in 0u64..64, pick in 0usize..10_000) {
            let net = small_random(seed);
            let mut routes = df(&net);
            let (src, dst) = pick_pair(&net, pick);
            let (path, dst_t) = routed_path(&net, &routes, src, dst);
            // Need a switch-to-switch hop to reverse; direct neighbors
            // (terminal -> switch -> terminal) have none.
            prop_assume!(path.len() >= 3);
            let hop = net.channel(path[1]);
            let back = net.channel_between(hop.dst, hop.src).unwrap();
            routes.set_next(hop.dst, dst_t, back);
            let report = vet::analyze(&net, &routes);
            prop_assert!(report.has(LintCode::ForwardingLoop));
            prop_assert!(report.num_errors() > 0);
        }

        #[test]
        fn any_single_detour_is_at_worst_a_warning(seed in 0u64..32) {
            // Rerouting one pair over a longer (loop-free) path must never
            // produce an *error*: vet separates "broken" from "wasteful".
            let net = small_random(seed);
            let mut routes = df(&net);
            let (src, dst) = pick_pair(&net, seed as usize);
            let (path, dst_t) = routed_path(&net, &routes, src, dst);
            let first_switch = net.channel(path[0]).dst;
            // Choose a sideways neighbor: same or larger distance to dst,
            // whose own route does not come back through first_switch.
            let hops = net.hops_to(dst);
            let detour = net.out_channels(first_switch).iter().copied().find(|&c| {
                let ch = net.channel(c);
                if !net.is_switch(ch.dst) || hops[ch.dst.idx()] != hops[first_switch.idx()] {
                    return false;
                }
                // The neighbor's existing path must avoid first_switch.
                let mut at = ch.dst;
                loop {
                    match routes.next_hop(at, dst_t) {
                        Some(n) => at = net.channel(n).dst,
                        None => return false,
                    }
                    if at == first_switch {
                        return false;
                    }
                    if at == dst {
                        return true;
                    }
                }
            });
            prop_assume!(detour.is_some());
            routes.set_next(first_switch, dst_t, detour.unwrap());
            let report = vet::analyze(&net, &routes);
            prop_assert!(report.has(LintCode::NonMinimalPath));
            prop_assert_eq!(
                report
                    .diagnostics_for(LintCode::NonMinimalPath)
                    .filter(|d| d.severity == Severity::Error)
                    .count(),
                0
            );
        }
    }
}
