//! The parser robustness contract: every input either parses or fails
//! with a typed [`ParseError`] — no panics, no overflows, no hangs.
//!
//! Deterministic exhaustive single-byte mutations run on every corpus
//! seed (they always run, even under the offline proptest stand-in);
//! a proptest block covers random multi-byte damage where the real
//! crate is available; and the committed regression corpus — inputs
//! that once crashed (or would have crashed) a parser — is replayed
//! unmutated on every test run.

use fabric::format::{self, ParseError};
use proptest::prelude::*;
use repro::fuzz::{self, FuzzConfig, Kind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

fn quiet_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// Parse `input` with the parser for `kind`; `Err(())` = panic.
fn parse_no_panic(kind: Kind, input: &str) -> Result<Result<(), ParseError>, ()> {
    catch_unwind(AssertUnwindSafe(|| match kind {
        Kind::Text => format::parse_network(input).map(|_| ()),
        Kind::Ibnetdiscover => format::parse_ibnetdiscover(input).map(|_| ()),
        Kind::NetworkJson => format::network_from_json(input).map(|_| ()),
        Kind::RoutesJson => format::routes_from_json(input).map(|_| ()),
    }))
    .map_err(|_| ())
}

#[test]
fn corpus_seeds_parse_clean() {
    let seeds = fuzz::load_corpus(Path::new("tests/corpus")).unwrap();
    assert!(seeds.len() >= 5, "corpus shrank to {}", seeds.len());
    for seed in &seeds {
        let input = String::from_utf8(seed.data.clone()).unwrap();
        let result = parse_no_panic(seed.kind, &input).unwrap();
        assert!(
            result.is_ok(),
            "{} must parse: {:?}",
            seed.path.display(),
            result
        );
    }
}

#[test]
fn every_single_byte_mutation_parses_or_rejects_typed() {
    quiet_panics();
    let seeds = fuzz::load_corpus(Path::new("tests/corpus")).unwrap();
    let mut tried = 0usize;
    for seed in &seeds {
        for i in 0..seed.data.len() {
            // Three deterministic damage patterns per position: bit
            // flip, digit substitution, and structural byte.
            for replacement in [seed.data[i] ^ 0xFF, b'9', b'{'] {
                let mut mutated = seed.data.clone();
                mutated[i] = replacement;
                let input = String::from_utf8_lossy(&mutated);
                assert!(
                    parse_no_panic(seed.kind, &input).is_ok(),
                    "PANIC on {} byte {} -> {:#04x}",
                    seed.path.display(),
                    i,
                    replacement
                );
                tried += 1;
            }
        }
    }
    assert!(tried > 1_000, "mutation coverage collapsed: {tried}");
}

#[test]
fn truncation_at_every_point_is_safe() {
    quiet_panics();
    let seeds = fuzz::load_corpus(Path::new("tests/corpus")).unwrap();
    for seed in &seeds {
        for len in 0..seed.data.len() {
            let input = String::from_utf8_lossy(&seed.data[..len]);
            assert!(
                parse_no_panic(seed.kind, &input).is_ok(),
                "PANIC on {} truncated to {}",
                seed.path.display(),
                len
            );
        }
    }
}

#[test]
fn regression_corpus_stays_fixed() {
    quiet_panics();
    let report = fuzz::replay(
        Path::new("tests/corpus/regressions"),
        &FuzzConfig {
            crashers_dir: None,
            ..FuzzConfig::default()
        },
    )
    .unwrap();
    assert!(report.iterations >= 7, "regression corpus shrank");
    assert_eq!(report.panics, 0, "{}", report.summary());
    assert_eq!(
        report.parse_ok,
        0,
        "every regression input is malformed and must be rejected: {}",
        report.summary()
    );
}

#[test]
fn seeded_mutation_campaign_smoke() {
    quiet_panics();
    let seeds = fuzz::load_corpus(Path::new("tests/corpus")).unwrap();
    let report = fuzz::run(
        &seeds,
        &FuzzConfig {
            iters: 500,
            seed: 0xC0FFEE,
            crashers_dir: None,
            route_budget: None,
        },
    );
    assert_eq!(report.panics, 0, "{}", report.summary());
    assert_eq!(report.parse_ok + report.parse_err, 500);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-byte damage on the text format (runs under the
    /// real proptest; the offline stand-in compiles it away — the
    /// deterministic exhaustive test above keeps coverage either way).
    #[test]
    fn random_byte_damage_is_typed(pos in 0usize..1024, byte in any::<u8>()) {
        let seeds = fuzz::load_corpus(Path::new("tests/corpus")).unwrap();
        for seed in &seeds {
            let mut data = seed.data.clone();
            let i = pos % data.len();
            data[i] = byte;
            let input = String::from_utf8_lossy(&data).into_owned();
            prop_assert!(parse_no_panic(seed.kind, &input).is_ok());
        }
    }
}
