//! Chaos campaigns end-to-end: seeded failure/recovery schedules
//! against the fault-tolerance runtime, asserting that every
//! intermediate programmed state is vet-clean and that the fabric
//! returns to full strength when the faults heal.

use dfsssp::prelude::*;
use dfsssp::subnet::{run_campaign, schedule, CampaignSpec};
use dfsssp::topo;
use proptest::prelude::*;

/// Run the default campaign and assert the acceptance conditions: every
/// intermediate programmed state vet-clean, the flap burst coalesced
/// into a single reroute, and zero quarantined terminals at quiescence.
fn assert_campaign(net: fabric::Network, seed: u64) {
    let spec = CampaignSpec {
        seed,
        ..CampaignSpec::default()
    };
    let batches = schedule(&net, &spec);
    let total: usize = batches.iter().map(|b| b.events.len()).sum();
    assert!(total >= 10, "campaign must have at least 10 events");
    let report = run_campaign(DfSssp::new(), &net, &batches, seed).unwrap();
    assert!(
        report.ok(),
        "unsafe intermediate state or leftover quarantine:\n{}",
        report.render_human()
    );
    for r in &report.records {
        assert_eq!(r.vet_errors, 0, "state after '{}' not vet-clean", r.label);
    }
    assert_eq!(report.final_quarantined, 0);
    // The flap burst is one record: five events, at most one reroute.
    let flaps: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.label == "flap-burst")
        .collect();
    assert_eq!(flaps.len(), 1, "exactly one flap-burst batch");
    assert_eq!(flaps[0].events, 5, "flap burst coalesces 5 events");
}

#[test]
fn torus_campaign_is_safe_throughout() {
    assert_campaign(topo::torus(&[4, 4], 1), 7);
}

#[test]
fn fat_tree_campaign_is_safe_throughout() {
    assert_campaign(topo::kary_ntree(4, 2), 7);
}

#[test]
fn quarantined_terminal_reconnects_after_matching_cable_up() {
    // A ring of 3 switches with a pendant switch: cutting the pendant's
    // only cable strands its terminal; repairing it reconnects.
    let mut b = NetworkBuilder::new();
    let s0 = b.add_switch("s0", 8);
    let s1 = b.add_switch("s1", 8);
    let s2 = b.add_switch("s2", 8);
    b.link(s0, s1).unwrap();
    b.link(s1, s2).unwrap();
    b.link(s2, s0).unwrap();
    let pendant = b.add_switch("pendant", 4);
    let (bridge, _) = b.link(pendant, s0).unwrap();
    for (i, &s) in [s0, s1, s2, pendant].iter().enumerate() {
        let t = b.add_terminal(format!("t{i}"));
        b.link(t, s).unwrap();
    }
    let net = b.build();
    let mut sm = SmLoop::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();

    let outcome = sm.handle(FabricEvent::CableDown(bridge)).unwrap();
    assert!(matches!(outcome.resolved_by(), Rung::Quarantine { .. }));
    assert_eq!(outcome.quarantined.len(), 1);
    assert_eq!(sm.network().num_terminals(), 3);

    let outcome = sm.handle(FabricEvent::CableUp(bridge)).unwrap();
    assert!(outcome.quarantined.is_empty(), "repair must un-quarantine");
    assert_eq!(sm.network().num_terminals(), 4);
    let nt = 4;
    assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
}

#[test]
fn vl_starved_bring_up_escalates_on_a_torus() {
    // Budget 1 cannot route a torus deadlock-free; the ladder must widen
    // the budget rather than fail.
    let net = topo::torus(&[4, 4], 1);
    let engine = DfSssp {
        max_layers: 1,
        ..DfSssp::new()
    };
    let sm = SmLoop::bring_up(engine, net.clone(), net.terminals()[0]).unwrap();
    assert!(matches!(
        sm.outcome().resolved_by(),
        Rung::WidenedVls { .. }
    ));
    let nt = net.num_terminals();
    assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed's campaign keeps every intermediate state vet-clean and
    /// ends with no quarantined terminals.
    #[test]
    fn campaigns_are_safe_for_any_seed(seed in 0u64..1_000) {
        let net = topo::torus(&[3, 3], 1);
        let spec = CampaignSpec { seed, ..CampaignSpec::default() };
        let batches = schedule(&net, &spec);
        let report = run_campaign(DfSssp::new(), &net, &batches, seed).unwrap();
        prop_assert!(
            report.ok(),
            "seed {} produced an unsafe campaign:\n{}",
            seed,
            report.render_human()
        );
    }
}
