//! Panic containment end to end: a crashing routing engine must never
//! take the subnet-manager loop down. The loop catches the panic,
//! retries deterministically, trips the circuit breaker, and keeps the
//! fabric served from the deadlock-free fallback — with tables that
//! pass the static analyzer.

use dfsssp::prelude::*;
use dfsssp::subnet::{BreakerState, CircuitBreaker, RetryPolicy};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

/// Silence the default panic hook once per process: every panic in this
/// binary's engines is *meant* to be caught.
fn quiet_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// An engine that always panics — the worst-behaved plugin possible.
struct PanickingEngine;

impl RoutingEngine for PanickingEngine {
    fn name(&self) -> &'static str {
        "Panicky"
    }
    fn route_in(
        &self,
        _net: &Network,
        _cx: &ComputeCtx,
    ) -> Result<Routes, dfsssp::core::RouteError> {
        panic!("injected engine bug")
    }
    fn deadlock_free(&self) -> bool {
        true
    }
}

/// An engine that panics while its shared failure budget is positive,
/// then behaves. The `Rc<Cell<_>>` handle lets a test refill the budget
/// after the loop has taken ownership of the engine.
struct FlakyEngine {
    fails: Rc<Cell<usize>>,
    inner: DfSssp,
}

impl FlakyEngine {
    fn new(fails: usize) -> (Self, Rc<Cell<usize>>) {
        let handle = Rc::new(Cell::new(fails));
        (
            FlakyEngine {
                fails: handle.clone(),
                inner: DfSssp::new(),
            },
            handle,
        )
    }
}

impl RoutingEngine for FlakyEngine {
    fn name(&self) -> &'static str {
        "Flaky"
    }
    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, dfsssp::core::RouteError> {
        let left = self.fails.get();
        if left > 0 {
            self.fails.set(left - 1);
            panic!("flaky engine crash ({left} left)");
        }
        self.inner.route_in(net, cx)
    }
    fn deadlock_free(&self) -> bool {
        true
    }
}

fn vet_clean(net: &Network, routes: &fabric::Routes) {
    let cfg = vet::Config {
        hw_vls: Some(8),
        deadlock_error: true,
        check_minimal: false,
        ..vet::Config::default()
    };
    let report = vet::analyze_with(net, routes, &cfg);
    assert!(
        report.clean(),
        "fallback tables must vet clean:\n{report:?}"
    );
}

#[test]
fn panicking_engine_is_contained_and_fallback_serves() {
    quiet_panics();
    let net = dfsssp::topo::kary_ntree(4, 2);
    let sm = SmLoop::bring_up(PanickingEngine, net.clone(), net.terminals()[0]).unwrap();

    // The loop survived: retries were spent, then the fallback served.
    let outcome = sm.outcome();
    assert!(outcome.rerouted);
    assert_eq!(
        outcome.retries,
        sm.retry_policy().max_retries,
        "every configured retry is spent before falling back"
    );
    assert!(matches!(outcome.resolved_by(), Rung::Fallback { .. }));
    assert_eq!(sm.programmed().routes.engine(), "Up*/Down*");

    // 1 initial + 2 retries = 3 consecutive panics: breaker is open.
    assert_eq!(sm.breaker().state(), BreakerState::Open);

    // The full fabric still works, and the tables are deployable.
    let nt = net.num_terminals();
    assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    vet_clean(sm.network(), &sm.programmed().routes);
}

#[test]
fn open_breaker_skips_the_primary_until_a_probe() {
    quiet_panics();
    let net = dfsssp::topo::kary_ntree(4, 2);
    let collector = Arc::new(Collector::new());
    let mut sm = SmLoop::bring_up(PanickingEngine, net.clone(), net.terminals()[0]).unwrap();
    sm.set_recorder(collector.clone());
    assert_eq!(sm.breaker().state(), BreakerState::Open);

    // Find a redundant switch-switch cable to flap.
    let cable = net
        .channels()
        .find(|(_, ch)| net.is_switch(ch.src) && net.is_switch(ch.dst))
        .map(|(id, _)| id)
        .unwrap();

    // Cooldown is 2 reroutes. First event: breaker refuses the primary,
    // the fallback serves directly, no retries are burned.
    let outcome = sm.handle(FabricEvent::CableDown(cable)).unwrap();
    assert_eq!(outcome.retries, 0, "open breaker skips the primary");
    assert!(matches!(outcome.resolved_by(), Rung::Fallback { .. }));

    // Second event exhausts the cooldown: the probe runs the primary,
    // which panics again, burns its retries, and re-opens the breaker.
    let outcome = sm.handle(FabricEvent::CableUp(cable)).unwrap();
    assert_eq!(outcome.retries, sm.retry_policy().max_retries);
    assert_eq!(sm.breaker().state(), BreakerState::Open);

    let counters = collector.snapshot().counters;
    assert_eq!(counters.get("breaker_probes"), Some(&1));
    assert!(counters.get("engine_panics").copied().unwrap_or(0) >= 3);
    assert!(counters.get("breaker_opens").copied().unwrap_or(0) >= 1);
    assert!(counters.get("engine_retries").copied().unwrap_or(0) >= 2);

    // Throughout all of it the fabric stayed served.
    let nt = sm.network().num_terminals();
    assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    vet_clean(sm.network(), &sm.programmed().routes);
}

#[test]
fn transient_panic_recovers_without_fallback() {
    quiet_panics();
    let net = dfsssp::topo::kary_ntree(4, 2);
    let (engine, _) = FlakyEngine::new(1);
    let sm = SmLoop::bring_up(engine, net.clone(), net.terminals()[0]).unwrap();
    let outcome = sm.outcome();
    assert_eq!(outcome.retries, 1, "one crash, one retry, then success");
    assert_eq!(outcome.resolved_by(), Rung::Baseline);
    assert_eq!(sm.programmed().routes.engine(), "DFSSSP");
    assert_eq!(
        sm.breaker().state(),
        BreakerState::Closed,
        "a success closes the breaker"
    );
    vet_clean(sm.network(), &sm.programmed().routes);
}

#[test]
fn panic_with_armor_disarmed_is_a_typed_error_and_rolls_back() {
    quiet_panics();
    // Bring up healthily, then disarm the armor (no fallback, no
    // retries, a breaker that never trips) and make the engine crash
    // forever via its shared failure budget. The panic must come back
    // as SmError::EnginePanicked — a value, not an unwind — and the
    // failed event must roll back cleanly.
    let net = dfsssp::topo::kary_ntree(4, 2);
    let (engine, fails) = FlakyEngine::new(0);
    let mut sm = SmLoop::bring_up(engine, net.clone(), net.terminals()[0]).unwrap();
    sm.set_fallback(None);
    sm.set_retry_policy(RetryPolicy {
        max_retries: 0,
        ..RetryPolicy::default()
    });
    sm.set_breaker(CircuitBreaker::new(usize::MAX, 1));
    fails.set(usize::MAX);

    let cable = net
        .channels()
        .find(|(_, ch)| net.is_switch(ch.src) && net.is_switch(ch.dst))
        .map(|(id, _)| id)
        .unwrap();
    let err = sm.handle(FabricEvent::CableDown(cable)).unwrap_err();
    match err {
        dfsssp::subnet::SmError::EnginePanicked(msg) => {
            assert!(msg.contains("flaky engine crash"), "message: {msg}")
        }
        other => panic!("expected EnginePanicked, got {other}"),
    }

    // Rollback: the failed event left the serving state intact, and a
    // healed engine handles the same event afterwards.
    let nt = sm.network().num_terminals();
    assert_eq!(sm.light_sweep().unwrap(), nt * (nt - 1));
    fails.set(0);
    let outcome = sm.handle(FabricEvent::CableDown(cable)).unwrap();
    assert!(outcome.rerouted);
    assert_eq!(outcome.retries, 0);
}

#[test]
fn backoff_sequence_is_deterministic_per_seed() {
    let policy = RetryPolicy {
        seed: 0xA5A5,
        ..RetryPolicy::default()
    };
    let a: Vec<_> = (1..=3).map(|i| policy.backoff(i)).collect();
    let b: Vec<_> = (1..=3).map(|i| policy.backoff(i)).collect();
    assert_eq!(a, b, "replaying the same seed yields the same waits");
    assert!(a[0] <= a[1] && a[1] <= a[2], "backoff grows: {a:?}");
}
