//! The versioned run manifest: what `--metrics <out.json>` writes.
//!
//! Schema stability contract (`dfsssp-metrics/v1`): the top-level keys
//! `schema`, `binary`, `topology`, `engine`, `seed`, `metrics` and the
//! shape of `metrics.{phases,counters,histograms}` never change within
//! a major schema version; *names* inside those maps may come and go as
//! instrumentation evolves. Consumers must key on names, not positions
//! (maps serialize ordered — `BTreeMap` — so diffs stay readable).
//!
//! Serialization is hand-rolled on [`crate::json`] — the workspace's
//! serde is a non-functional offline stand-in, so derive would produce
//! placeholders, not manifests.

use crate::hist::Hist;
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Manifest schema identifier; bump only on breaking shape changes.
pub const SCHEMA: &str = "dfsssp-metrics/v1";

/// Accumulated wall-clock time of one phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total nanoseconds across all spans.
    pub nanos: u64,
    /// Number of spans reported.
    pub count: u64,
}

impl PhaseStat {
    /// Total seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Everything a [`crate::Collector`] aggregated, in stable order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Phase timings by name.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Hist>,
}

/// The topology a run was measured against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologySummary {
    /// Human-readable topology label (e.g. `torus(4x4)`).
    pub label: String,
    /// Total nodes.
    pub nodes: usize,
    /// Switch count.
    pub switches: usize,
    /// Terminal count.
    pub terminals: usize,
    /// Directed channel count.
    pub channels: usize,
}

/// A versioned, self-describing record of one measured run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Always [`SCHEMA`] for manifests this crate writes.
    pub schema: String,
    /// The binary or harness that produced the run.
    pub binary: String,
    /// Topology routed/simulated, when one was in play.
    pub topology: Option<TopologySummary>,
    /// Routing engine name, when one was in play.
    pub engine: Option<String>,
    /// RNG seed, when the run was seeded.
    pub seed: Option<u64>,
    /// The measured values.
    pub metrics: Snapshot,
}

impl RunManifest {
    /// An empty manifest for `binary` under the current schema.
    pub fn new(binary: impl Into<String>) -> Self {
        RunManifest {
            schema: SCHEMA.to_string(),
            binary: binary.into(),
            topology: None,
            engine: None,
            seed: None,
            metrics: Snapshot::default(),
        }
    }

    /// Attach a topology summary.
    pub fn topology(mut self, t: TopologySummary) -> Self {
        self.topology = Some(t);
        self
    }

    /// Attach the engine name.
    pub fn engine(mut self, name: impl Into<String>) -> Self {
        self.engine = Some(name.into());
        self
    }

    /// Attach the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attach the measured values.
    pub fn metrics(mut self, snapshot: Snapshot) -> Self {
        self.metrics = snapshot;
        self
    }

    /// Serialize (pretty, trailing newline — artifact-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": ");
        json::write_str(&mut s, &self.schema);
        s.push_str(",\n  \"binary\": ");
        json::write_str(&mut s, &self.binary);
        s.push_str(",\n  \"topology\": ");
        match &self.topology {
            None => s.push_str("null"),
            Some(t) => {
                s.push_str("{\n    \"label\": ");
                json::write_str(&mut s, &t.label);
                let _ = write!(
                    s,
                    ",\n    \"nodes\": {},\n    \"switches\": {},\n    \"terminals\": {},\n    \"channels\": {}\n  }}",
                    t.nodes, t.switches, t.terminals, t.channels
                );
            }
        }
        s.push_str(",\n  \"engine\": ");
        match &self.engine {
            None => s.push_str("null"),
            Some(e) => json::write_str(&mut s, e),
        }
        s.push_str(",\n  \"seed\": ");
        match self.seed {
            None => s.push_str("null"),
            Some(seed) => {
                let _ = write!(s, "{seed}");
            }
        }
        s.push_str(",\n  \"metrics\": {\n    \"phases\": {");
        for (i, (name, p)) in self.metrics.phases.iter().enumerate() {
            s.push_str(if i == 0 { "\n      " } else { ",\n      " });
            json::write_str(&mut s, name);
            let _ = write!(s, ": {{\"nanos\": {}, \"count\": {}}}", p.nanos, p.count);
        }
        if !self.metrics.phases.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("},\n    \"counters\": {");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n      " } else { ",\n      " });
            json::write_str(&mut s, name);
            let _ = write!(s, ": {v}");
        }
        if !self.metrics.counters.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("},\n    \"histograms\": {");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            s.push_str(if i == 0 { "\n      " } else { ",\n      " });
            json::write_str(&mut s, name);
            s.push_str(": ");
            h.write_json(&mut s);
        }
        if !self.metrics.histograms.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("}\n  }\n}\n");
        s
    }

    /// Parse a manifest back, verifying the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// [`RunManifest::from_json`] for an already-parsed [`Value`] (e.g.
    /// a manifest embedded inside a larger document, as the bench report
    /// does).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("manifest: missing schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file says {schema:?}, this build expects {SCHEMA:?}"
            ));
        }
        let binary = v
            .get("binary")
            .and_then(Value::as_str)
            .ok_or("manifest: missing binary")?
            .to_string();
        let topology = match v.get("topology") {
            None | Some(Value::Null) => None,
            Some(t) => {
                let dim = |name: &str| -> Result<usize, String> {
                    t.get(name)
                        .and_then(Value::as_u64)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("manifest: bad topology.{name}"))
                };
                Some(TopologySummary {
                    label: t
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or("manifest: bad topology.label")?
                        .to_string(),
                    nodes: dim("nodes")?,
                    switches: dim("switches")?,
                    terminals: dim("terminals")?,
                    channels: dim("channels")?,
                })
            }
        };
        let engine = match v.get("engine") {
            None | Some(Value::Null) => None,
            Some(e) => Some(e.as_str().ok_or("manifest: bad engine")?.to_string()),
        };
        let seed = match v.get("seed") {
            None | Some(Value::Null) => None,
            Some(s) => Some(s.as_u64().ok_or("manifest: bad seed")?),
        };
        let metrics = v.get("metrics").ok_or("manifest: missing metrics")?;
        let mut snap = Snapshot::default();
        if let Some(phases) = metrics.get("phases").and_then(Value::as_obj) {
            for (name, p) in phases {
                let stat = PhaseStat {
                    nanos: p
                        .get("nanos")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("manifest: bad phases.{name}.nanos"))?,
                    count: p
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("manifest: bad phases.{name}.count"))?,
                };
                snap.phases.insert(name.clone(), stat);
            }
        } else {
            return Err("manifest: missing metrics.phases".into());
        }
        if let Some(counters) = metrics.get("counters").and_then(Value::as_obj) {
            for (name, c) in counters {
                let n = c
                    .as_u64()
                    .ok_or_else(|| format!("manifest: bad counters.{name}"))?;
                snap.counters.insert(name.clone(), n);
            }
        } else {
            return Err("manifest: missing metrics.counters".into());
        }
        if let Some(hists) = metrics.get("histograms").and_then(Value::as_obj) {
            for (name, h) in hists {
                let hist = Hist::from_value(h).map_err(|e| format!("{name}: {e}"))?;
                snap.histograms.insert(name.clone(), hist);
            }
        } else {
            return Err("manifest: missing metrics.histograms".into());
        }
        Ok(RunManifest {
            schema: schema.to_string(),
            binary,
            topology,
            engine,
            seed,
            metrics: snap,
        })
    }

    /// Write to `path` as JSON.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Recorder};

    fn sample() -> RunManifest {
        let c = Collector::new();
        c.phase("sssp", 1_000);
        c.add("paths_routed", 72);
        c.observe("path_length", 3);
        RunManifest::new("test")
            .topology(TopologySummary {
                label: "torus(4x4)".into(),
                nodes: 32,
                switches: 16,
                terminals: 16,
                channels: 96,
            })
            .engine("DFSSSP")
            .seed(7)
            .metrics(c.snapshot())
    }

    #[test]
    fn round_trips_through_json() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn optional_fields_round_trip_as_null() {
        let m = RunManifest::new("bare");
        let text = m.to_json();
        assert!(text.contains("\"topology\": null"), "{text}");
        assert!(text.contains("\"seed\": null"), "{text}");
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut m = sample();
        m.schema = "dfsssp-metrics/v0".into();
        let err = RunManifest::from_json(&m.to_json()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn schema_shape_is_stable() {
        // The v1 contract: these exact top-level keys, these exact
        // metric sub-keys. A failure here means SCHEMA must be bumped.
        let v = json::parse(&sample().to_json()).unwrap();
        let obj = v.as_obj().unwrap();
        for key in ["schema", "binary", "topology", "engine", "seed", "metrics"] {
            assert!(obj.contains_key(key), "missing top-level key {key}");
        }
        assert_eq!(obj.len(), 6, "unexpected extra top-level keys");
        let metrics = obj["metrics"].as_obj().unwrap();
        for key in ["phases", "counters", "histograms"] {
            assert!(metrics.contains_key(key), "missing metrics key {key}");
        }
        let phase = metrics["phases"].get("sssp").unwrap().as_obj().unwrap();
        assert!(phase.contains_key("nanos") && phase.contains_key("count"));
        let hist = metrics["histograms"]
            .get("path_length")
            .unwrap()
            .as_obj()
            .unwrap();
        for key in ["count", "sum", "min", "max", "log2_buckets"] {
            assert!(hist.contains_key(key), "missing histogram key {key}");
        }
    }

    #[test]
    fn phase_seconds_convert() {
        let p = PhaseStat {
            nanos: 2_500_000_000,
            count: 2,
        };
        assert!((p.seconds() - 2.5).abs() < 1e-12);
    }
}
