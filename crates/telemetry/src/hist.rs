//! A fixed-shape log₂ histogram.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b)`. 65 buckets cover the whole `u64` range, so the
//! shape — and therefore the manifest schema — never depends on the
//! data. Exact `count`/`sum`/`min`/`max` ride along; quantiles are
//! bucket-resolution estimates, which is plenty for the skew questions
//! the paper's figures ask (is the edge-load tail long? are path
//! lengths flat?).

use crate::json::Value;

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Bucket counts, trailing zeros trimmed (see [`NUM_BUCKETS`]).
    pub log2_buckets: Vec<u64>,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            log2_buckets: Vec::new(),
        }
    }
}

/// Bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let b = bucket_of(value);
        if b >= self.log2_buckets.len() {
            self.log2_buckets.resize(b + 1, 0);
        }
        self.log2_buckets[b] += 1;
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observed value, `None` when empty (the serialized `min`
    /// field is `u64::MAX` for an empty histogram).
    pub fn min_value(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Bucket-resolution quantile estimate: the *upper edge* of the
    /// bucket holding the `q`-quantile observation, clamped to the true
    /// `max`. `q` is clamped to `[0, 1]`; returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.log2_buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Append this histogram as a one-line JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"log2_buckets\": [",
            self.count, self.sum, self.min, self.max
        );
        for (i, n) in self.log2_buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("]}");
    }

    /// Rebuild from a parsed JSON object (inverse of [`Hist::write_json`]).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram: bad or missing field {name:?}"))
        };
        let buckets = v
            .get("log2_buckets")
            .and_then(Value::as_arr)
            .ok_or("histogram: missing log2_buckets")?;
        if buckets.len() > NUM_BUCKETS {
            return Err(format!(
                "histogram: {} buckets > {NUM_BUCKETS}",
                buckets.len()
            ));
        }
        Ok(Hist {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            log2_buckets: buckets
                .iter()
                .map(|b| {
                    b.as_u64()
                        .ok_or("histogram: non-integer bucket".to_string())
                })
                .collect::<Result<_, _>>()?,
        })
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if other.log2_buckets.len() > self.log2_buckets.len() {
            self.log2_buckets.resize(other.log2_buckets.len(), 0);
        }
        for (b, &n) in other.log2_buckets.iter().enumerate() {
            self.log2_buckets[b] += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Hist::new();
        for v in [0u64, 1, 5, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 111);
        assert_eq!(h.min_value(), Some(0));
        assert_eq!(h.max, 100);
        assert!((h.mean() - 22.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // The median 500 lives in bucket [256, 512); upper edge 511.
        assert_eq!(p50, 511);
        assert_eq!(h.quantile(1.0).unwrap(), 1000);
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        assert!(Hist::new().quantile(0.5).is_none());
    }

    #[test]
    fn merge_is_sum() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in [1u64, 2, 3] {
            a.observe(v);
        }
        for v in [10u64, 20] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 36);
        assert_eq!(a.max, 20);
        assert_eq!(a.min_value(), Some(1));
    }

    #[test]
    fn json_round_trip() {
        let mut h = Hist::new();
        for v in [0u64, 7, 7, 4096] {
            h.observe(v);
        }
        let mut out = String::new();
        h.write_json(&mut out);
        let back = Hist::from_value(&json::parse(&out).unwrap()).unwrap();
        assert_eq!(h, back);
        // Empty histograms round-trip too (min is the u64::MAX sentinel).
        let empty = Hist::new();
        let mut out = String::new();
        empty.write_json(&mut out);
        let back = Hist::from_value(&json::parse(&out).unwrap()).unwrap();
        assert_eq!(empty, back);
    }
}
