//! A minimal JSON reader/writer.
//!
//! The workspace pins its serialization to hand-rolled JSON (the
//! build's serde is a non-functional offline stand-in — see
//! DESIGN.md §4), so the manifest schema needs a real parser it can
//! rely on in tests and CI. This is a strict-enough subset parser:
//! objects, arrays, strings (with escapes), integers, floats, bools,
//! null. Duplicate object keys keep the last value, like serde_json.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers survive exactly up to 2⁶⁴; see
    /// [`Value::as_u64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-ordered.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Containers may nest at most this deep; beyond it [`parse`] errors
/// instead of overflowing the stack on hostile input like `[[[[…`.
pub const MAX_DEPTH: usize = 128;

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Value, String>,
    ) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // SAFETY: `self.bytes` came from a `&str` and `self.pos`
                    // only ever advances past complete scalars (ASCII matches
                    // above, `len_utf8` here), so the tail is valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON float literal: finite values as shortest round-trip decimal,
/// non-finite as `null` (JSON has no NaN/Inf).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_usual_shapes() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn u64_precision_guard() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "got {err}");
        // The cap itself is usable: depth exactly MAX_DEPTH parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse(r#""café ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("café ✓"));
    }
}
