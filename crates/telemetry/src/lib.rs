//! Instrumentation for routing engines and simulators: phase timers,
//! counters, histograms, and versioned run manifests.
//!
//! The paper's evaluation is quantitative — routing runtime (Figs 7–8),
//! virtual-layer consumption (Figs 9–10), edge-load balance (Figs 4–6) —
//! and OpenSM's DFSSSP integration reports per-phase timings for exactly
//! this reason: the counters are the contract between a routing engine
//! and its operators. This crate is that contract for the workspace.
//!
//! Three pieces:
//!
//! * [`Recorder`] — the sink trait every hot path talks to. The default
//!   is [`Noop`], whose methods are empty and whose [`Recorder::enabled`]
//!   gate lets call sites skip even the `Instant::now()` when nobody is
//!   listening (the zero-cost-when-disabled property the overhead test
//!   in `tests/telemetry_e2e.rs` pins down).
//! * [`Collector`] — a thread-safe in-memory aggregator whose
//!   [`Collector::snapshot`] turns into the `metrics` section of a
//!   [`RunManifest`]; [`JsonlSink`] streams raw events to a writer
//!   instead, one JSON object per line.
//! * [`RunManifest`] — the versioned JSON artifact (`dfsssp-metrics/v1`)
//!   the `--metrics <out.json>` flag of every reproduction binary emits:
//!   topology, engine, seed, phase timings, counters, histograms.
//!
//! Naming is by convention, not by enum, so downstream crates can add
//! phases without touching this crate; the well-known names live in
//! [`phases`], [`counters`] and [`hists`].

pub mod collector;
pub mod hist;
pub mod json;
pub mod manifest;

pub use collector::{Collector, JsonlSink};
pub use hist::Hist;
pub use manifest::{PhaseStat, RunManifest, Snapshot, TopologySummary, SCHEMA};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Well-known phase names. A phase is a wall-clock span; the same name
/// may be reported several times per run (the collector accumulates).
pub mod phases {
    /// Algorithm 1: balanced shortest-path table construction.
    pub const SSSP: &str = "sssp";
    /// Path extraction + channel-dependency-graph population.
    pub const CDG_BUILD: &str = "cdg_build";
    /// Time inside the (resumable) cycle search.
    pub const CYCLE_SEARCH: &str = "cycle_search";
    /// Moving paths between layers, incremental acyclicity checks,
    /// compaction — everything in layer assignment that is not search.
    pub const LAYER_ASSIGN: &str = "layer_assign";
    /// Spreading used layers over the remaining VL budget.
    pub const BALANCE: &str = "balance";
    /// One full `RoutingEngine::route` call (any engine).
    pub const ROUTE_TOTAL: &str = "route_total";
    /// The wrapped inner engine of a `DeadlockFree<E>` run.
    pub const INNER_ROUTE: &str = "inner_route";
    /// One subnet-manager reroute (event handling or bring-up).
    pub const REROUTE: &str = "reroute";
    /// One effective-bisection-bandwidth simulation.
    pub const EBB: &str = "ebb";
    /// One buffer-level simulation.
    pub const FLITSIM: &str = "flitsim";
    /// Whole-binary wall clock (recorded by the repro CLI harness).
    pub const TOTAL: &str = "total";
    /// One snapshot publish: vet gate + snapshot construction.
    pub const SERVE_PUBLISH: &str = "serve_publish";
    /// The atomic swap installing a published snapshot (the only part
    /// of a publish concurrent readers can even theoretically notice).
    pub const EPOCH_SWAP: &str = "epoch_swap";
    /// One drained query batch answered by a serve worker.
    pub const SERVE_BATCH: &str = "serve_batch";
    /// Delta reroute: dirty-set extraction + dirty-destination re-sweep.
    pub const DELTA_DIRTY: &str = "delta_dirty";
    /// Delta reroute: incremental CDG patch + scoped re-verification.
    pub const DELTA_PATCH: &str = "delta_patch";
}

/// Well-known counter names.
pub mod counters {
    /// Ordered terminal pairs routed.
    pub const PATHS_ROUTED: &str = "paths_routed";
    /// Virtual layers the final routing uses.
    pub const VLS_USED: &str = "vls_used";
    /// Channels whose balancing weight grew during SSSP.
    pub const EDGES_WEIGHTED: &str = "edges_weighted";
    /// CDG cycles discovered and broken.
    pub const CYCLES_BROKEN: &str = "cycles_broken";
    /// Paths moved between layers during assignment.
    pub const PATHS_MOVED: &str = "paths_moved";
    /// Subnet-manager reroutes performed.
    pub const REROUTES: &str = "reroutes";
    /// Fabric events coalesced into reroutes.
    pub const EVENTS_COALESCED: &str = "events_coalesced";
    /// Escalation rungs, by kind.
    pub const RUNG_QUARANTINE: &str = "rung_quarantine";
    /// See [`RUNG_QUARANTINE`].
    pub const RUNG_WIDENED_VLS: &str = "rung_widened_vls";
    /// See [`RUNG_QUARANTINE`].
    pub const RUNG_FALLBACK: &str = "rung_fallback";
    /// See [`RUNG_QUARANTINE`] — fired when V007 proves the degraded
    /// view needs multiple virtual layers (existence refuted).
    pub const RUNG_MULTI_LAYER_FORCED: &str = "rung_multi_layer_forced";
    /// Traffic patterns simulated (ORCS).
    pub const PATTERNS_SIMULATED: &str = "patterns_simulated";
    /// Packets delivered (flit simulator).
    pub const PACKETS_DELIVERED: &str = "packets_delivered";
    /// Cycles simulated (flit simulator).
    pub const SIM_CYCLES: &str = "sim_cycles";
    /// Routing runs aborted because a budget axis ran out.
    pub const BUDGET_TRIPS: &str = "budget_trips";
    /// Engine panics caught and contained by the subnet manager.
    pub const ENGINE_PANICS: &str = "engine_panics";
    /// Circuit-breaker transitions to the open state.
    pub const BREAKER_OPENS: &str = "breaker_opens";
    /// Half-open probe calls let through an open breaker.
    pub const BREAKER_PROBES: &str = "breaker_probes";
    /// Bounded retries of a panicking primary engine.
    pub const ENGINE_RETRIES: &str = "engine_retries";
    /// Path queries answered by the serve workers.
    pub const QUERIES_SERVED: &str = "queries_served";
    /// Queries that attached to an identical in-flight query.
    pub const QUERIES_COALESCED: &str = "queries_coalesced";
    /// Queries refused by admission control (budget or overload).
    pub const QUERIES_REJECTED: &str = "queries_rejected";
    /// Snapshot epochs published to readers.
    pub const EPOCHS_PUBLISHED: &str = "epochs_published";
    /// Snapshot publishes the vet gate refused.
    pub const PUBLISH_REJECTED: &str = "publish_rejected";
    /// Queries answered from an epoch older than the newest published
    /// one (consistent, but one swap behind).
    pub const STALE_READS: &str = "stale_reads";
    /// Queries whose class deadline passed while they sat in a shard
    /// queue; dropped before a snapshot read was paid for them.
    pub const QUERIES_EXPIRED: &str = "queries_expired";
    /// Best-effort queries refused by the adaptive shed controller
    /// (AIMD admitted-rate gate, not a queue cap).
    pub const QUERIES_SHED: &str = "queries_shed";
    /// See [`RUNG_QUARANTINE`] — a reroute published while the serving
    /// path was actively shedding best-effort load.
    pub const RUNG_OVERLOAD_SHED: &str = "rung_overload_shed";
    /// Items fanned across the work-stealing compute pool (parallel SSSP
    /// destinations + CDG path ranges).
    pub const PAR_TASKS: &str = "par_tasks";
    /// Items a pool worker claimed from another worker's deque.
    pub const STEAL_COUNT: &str = "steal_count";
    /// Destinations dirtied (re-swept) by delta reroutes.
    pub const DELTA_DIRTY_DSTS: &str = "delta_dirty_dsts";
    /// Delta reroutes that fell back to a full recompute.
    pub const DELTA_FALLBACKS: &str = "delta_fallbacks";
}

/// Well-known histogram names.
pub mod hists {
    /// Channels per terminal-to-terminal path.
    pub const PATH_LENGTH: &str = "path_length";
    /// Distinct channels used per virtual layer.
    pub const VL_CHANNELS: &str = "vl_channels";
    /// Routed paths per channel (the Fig 4–6 balance evidence).
    pub const EDGE_LOAD: &str = "edge_load";
    /// Per-event reroute latency, microseconds.
    pub const REROUTE_US: &str = "reroute_us";
    /// Per-event reroute latency, nanoseconds, measured from the event's
    /// own arrival timestamp (so coalesced bursts attribute latency to
    /// the triggering event, not the collapsed singleton).
    pub const REROUTE_NS: &str = "reroute_ns";
    /// Per-pattern mean flow bandwidth, milli-units (ORCS).
    pub const PATTERN_BW_MILLI: &str = "pattern_bw_milli";
    /// Reader-visible pause per epoch swap, microseconds.
    pub const SWAP_PAUSE_US: &str = "swap_pause_us";
    /// Queries drained per serve-worker batch.
    pub const SERVE_BATCH_SIZE: &str = "serve_batch_size";
    /// Worst in-queue wait of a drained batch, microseconds (the signal
    /// the adaptive shed controller keys its EWMA off).
    pub const QUEUE_DELAY_US: &str = "queue_delay_us";
    /// Admitted-rate setting (permille) each time the AIMD controller
    /// adjusts it; min shows the deepest shed, max the recovery.
    pub const ADMITTED_PERMILLE: &str = "admitted_permille";
    /// Submit-to-redeem latency of interactive queries, microseconds
    /// (the histogram per-class SLO verdicts are judged from).
    pub const WAIT_US_INTERACTIVE: &str = "wait_us_interactive";
    /// See [`WAIT_US_INTERACTIVE`]; the bulk class.
    pub const WAIT_US_BULK: &str = "wait_us_bulk";
    /// Per-worker wall time inside one parallel compute phase,
    /// microseconds; the spread shows how well stealing balanced the
    /// sweep.
    pub const PAR_WORKER_US: &str = "par_worker_us";
}

/// A metrics sink. Implementations must be cheap to call; hot paths
/// additionally gate any *measurement-only* work (clock reads, metric
/// computation) behind [`Recorder::enabled`].
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether anybody is listening. `false` lets call sites skip clock
    /// reads and metric computation entirely.
    fn enabled(&self) -> bool;

    /// Report one span of `nanos` nanoseconds spent in phase `name`.
    fn phase(&self, name: &'static str, nanos: u64);

    /// Add `delta` to counter `name`.
    fn add(&self, name: &'static str, delta: u64);

    /// Record one observation of histogram `name`.
    fn observe(&self, name: &'static str, value: u64);
}

/// A shared, cloneable recorder handle (the form engine configs carry).
pub type RecorderHandle = Arc<dyn Recorder>;

/// The default recorder: drops everything, reports disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Recorder for Noop {
    fn enabled(&self) -> bool {
        false
    }
    fn phase(&self, _name: &'static str, _nanos: u64) {}
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
}

/// The shared no-op handle (one allocation per process).
pub fn noop() -> RecorderHandle {
    static NOOP: OnceLock<RecorderHandle> = OnceLock::new();
    NOOP.get_or_init(|| Arc::new(Noop)).clone()
}

/// Time `f` and report it as one span of `name`. When the recorder is
/// disabled the clock is never read.
pub fn timed<T>(rec: &dyn Recorder, name: &'static str, f: impl FnOnce() -> T) -> T {
    if !rec.enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    rec.phase(name, start.elapsed().as_nanos() as u64);
    out
}

/// An RAII phase span: reports the elapsed time on drop. Does not read
/// the clock when the recorder is disabled.
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Open a span of phase `name`.
    pub fn enter(rec: &'a dyn Recorder, name: &'static str) -> Self {
        let start = rec.enabled().then(Instant::now);
        Span { rec, name, start }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec.phase(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Accumulates many short intervals into one phase report — for timing
/// the inside of tight loops (e.g. the cycle search inside layer
/// assignment) without one `phase` call per iteration. Reports on drop
/// even when zero intervals were measured, so the phase is present in
/// the manifest whenever a recorder is attached.
pub struct Acc<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
    nanos: u64,
    enabled: bool,
}

impl<'a> Acc<'a> {
    /// A fresh accumulator for phase `name`.
    pub fn new(rec: &'a dyn Recorder, name: &'static str) -> Self {
        Acc {
            rec,
            name,
            nanos: 0,
            enabled: rec.enabled(),
        }
    }

    /// Run `f`, adding its duration to the accumulator.
    #[inline]
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.nanos += start.elapsed().as_nanos() as u64;
        out
    }
}

impl Drop for Acc<'_> {
    fn drop(&mut self) {
        if self.enabled {
            self.rec.phase(self.name, self.nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let n = noop();
        assert!(!n.enabled());
        n.phase("x", 1);
        n.add("x", 1);
        n.observe("x", 1);
    }

    #[test]
    fn noop_handle_is_shared() {
        assert!(Arc::ptr_eq(&noop(), &noop()));
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed(&Noop, "x", || 42), 42);
        let c = Collector::default();
        assert_eq!(timed(&c, "x", || 42), 42);
        assert_eq!(c.snapshot().phases["x"].count, 1);
    }

    #[test]
    fn span_reports_on_drop() {
        let c = Collector::default();
        {
            let _s = Span::enter(&c, "p");
        }
        let snap = c.snapshot();
        assert_eq!(snap.phases["p"].count, 1);
    }

    #[test]
    fn acc_reports_once_even_when_empty() {
        let c = Collector::default();
        {
            let mut a = Acc::new(&c, "loop");
            for _ in 0..10 {
                a.measure(|| ());
            }
        }
        {
            let _empty = Acc::new(&c, "empty");
        }
        let snap = c.snapshot();
        assert_eq!(snap.phases["loop"].count, 1);
        assert_eq!(snap.phases["empty"].count, 1);
    }
}
