//! Recorder implementations: the in-memory [`Collector`] and the
//! streaming [`JsonlSink`].

use crate::hist::Hist;
use crate::manifest::{PhaseStat, Snapshot};
use crate::Recorder;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct Inner {
    phases: FxHashMap<&'static str, PhaseStat>,
    counters: FxHashMap<&'static str, u64>,
    histograms: FxHashMap<&'static str, Hist>,
}

/// A thread-safe in-memory aggregator. One mutex guards everything —
/// hot paths report aggregates (an accumulated phase, a batch counter),
/// not per-iteration events, so contention is not a concern; the
/// rayon-parallel simulators report per work item and stay well under
/// the lock's capacity.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// An aggregated, ordered copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            phases: inner
                .phases
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect::<BTreeMap<_, _>>(),
            counters: inner
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect::<BTreeMap<_, _>>(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect::<BTreeMap<_, _>>(),
        }
    }

    /// Drop everything recorded so far.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = Inner::default();
    }
}

impl Recorder for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn phase(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().unwrap();
        let stat = inner.phases.entry(name).or_default();
        stat.nanos += nanos;
        stat.count += 1;
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name).or_default().observe(value);
    }
}

/// Streams every event as one JSON object per line — the raw-trace
/// alternative to aggregation, for piping into external tooling.
/// Lines look like `{"t":"phase","name":"sssp","nanos":1234}`.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Stream to an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Stream to a file at `path` (truncates).
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    fn emit(&self, kind: &str, name: &str, field: &str, value: u64) {
        let mut out = self.out.lock().unwrap();
        // Names are workspace-internal identifiers (no quoting needed).
        let _ = writeln!(
            out,
            "{{\"t\":\"{kind}\",\"name\":\"{name}\",\"{field}\":{value}}}"
        );
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl Recorder for JsonlSink {
    fn enabled(&self) -> bool {
        true
    }

    fn phase(&self, name: &'static str, nanos: u64) {
        self.emit("phase", name, "nanos", nanos);
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.emit("count", name, "delta", delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.emit("observe", name, "value", value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn collector_aggregates_phases_counters_hists() {
        let c = Collector::new();
        c.phase("sssp", 100);
        c.phase("sssp", 50);
        c.phase("balance", 7);
        c.add("paths_routed", 10);
        c.add("paths_routed", 5);
        c.observe("path_length", 3);
        c.observe("path_length", 4);
        let snap = c.snapshot();
        assert_eq!(snap.phases["sssp"].nanos, 150);
        assert_eq!(snap.phases["sssp"].count, 2);
        assert_eq!(snap.phases["balance"].count, 1);
        assert_eq!(snap.counters["paths_routed"], 15);
        assert_eq!(snap.histograms["path_length"].count, 2);
        assert_eq!(snap.histograms["path_length"].sum, 7);
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        // Compile-time contract: every piece the serving path moves
        // across threads really is Send + Sync — recorder impls, the
        // shared handle, and the sink-carrying engine config.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Collector>();
        assert_send_sync::<JsonlSink>();
        assert_send_sync::<crate::Noop>();
        assert_send_sync::<crate::RecorderHandle>();

        // Borrowed sharing, no Arc: scoped threads hammer one collector.
        let c = Collector::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().counters["n"], 4000);
    }

    #[test]
    fn reset_clears_everything() {
        let c = Collector::new();
        c.add("n", 1);
        c.reset();
        assert!(c.snapshot().counters.is_empty());
    }

    #[test]
    fn jsonl_sink_emits_valid_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.phase("sssp", 42);
        sink.add("paths_routed", 7);
        sink.observe("path_length", 3);
        sink.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("t").is_some() && v.get("name").is_some());
        }
        assert_eq!(lines[0], r#"{"t":"phase","name":"sssp","nanos":42}"#);
    }
}
