//! Routing-engine runtime (the measurement behind Figs 7 and 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsssp_core::{ComputeCtx, RoutingEngine};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let nets = vec![
        ("6-ary 2-tree", fabric::topo::kary_ntree(6, 2)),
        ("10-ary 2-tree", fabric::topo::kary_ntree(10, 2)),
        ("torus 6x6", fabric::topo::torus(&[6, 6], 2)),
        ("kautz(3,2)x72", fabric::topo::kautz(3, 2, 72, true)),
    ];
    let mut group = c.benchmark_group("routing_runtime");
    group.sample_size(10);
    for (label, net) in &nets {
        for engine in baselines::all_engines() {
            if engine.route_in(net, &ComputeCtx::seq()).is_err() {
                continue; // unsupported combination (e.g. DOR off-grid)
            }
            group.bench_with_input(
                BenchmarkId::new(engine.name().replace('/', "-"), label),
                net,
                |b, net| b.iter(|| black_box(engine.route_in(net, &ComputeCtx::seq()).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
