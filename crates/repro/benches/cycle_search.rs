//! CDG machinery: offline (one resumable search per layer) vs online
//! (one search per path) layer assignment — the §IV design decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsssp_core::dfsssp::{
    assign_layers_offline, assign_layers_offline_restart, assign_layers_online,
};
use dfsssp_core::paths::PathSet;
use dfsssp_core::{ComputeCtx, CycleBreakHeuristic, RoutingEngine, Sssp};
use std::hint::black_box;

fn bench_assignment(c: &mut Criterion) {
    let nets = vec![
        ("torus 4x4", fabric::topo::torus(&[4, 4], 2)),
        ("torus 6x6", fabric::topo::torus(&[6, 6], 2)),
        ("ring 16", fabric::topo::ring(16, 2)),
    ];
    let mut group = c.benchmark_group("layer_assignment");
    group.sample_size(10);
    for (label, net) in &nets {
        let routes = Sssp::new().route_in(net, &ComputeCtx::seq()).unwrap();
        let ps = PathSet::extract(net, &routes).unwrap();
        group.bench_with_input(BenchmarkId::new("offline", label), &ps, |b, ps| {
            b.iter(|| {
                black_box(
                    assign_layers_offline(ps, CycleBreakHeuristic::WeakestEdge, 16, false).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("online", label), &ps, |b, ps| {
            b.iter(|| black_box(assign_layers_online(ps, 16).unwrap()))
        });
        // Ablation: same offline algorithm, but the cycle search restarts
        // from scratch after every break (what the paper's resumable
        // search avoids).
        group.bench_with_input(BenchmarkId::new("offline-restart", label), &ps, |b, ps| {
            b.iter(|| {
                black_box(
                    assign_layers_offline_restart(ps, CycleBreakHeuristic::WeakestEdge, 16)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
