//! Cycle-break heuristic ablation: runtime and (reported via the sec4
//! binary) layer counts of the three §IV heuristics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsssp_core::dfsssp::assign_layers_offline;
use dfsssp_core::paths::PathSet;
use dfsssp_core::{ComputeCtx, CycleBreakHeuristic, RoutingEngine, Sssp};
use fabric::topo::{random_topology, RandomTopoSpec};
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let spec = RandomTopoSpec {
        switches: 24,
        radix: 24,
        terminals_per_switch: 6,
        interswitch_links: 48,
    };
    let net = random_topology(&spec, 7);
    let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
    let ps = PathSet::extract(&net, &routes).unwrap();
    let mut group = c.benchmark_group("cycle_break_heuristic");
    group.sample_size(10);
    for h in CycleBreakHeuristic::ALL {
        group.bench_with_input(BenchmarkId::new(h.name(), "random24"), &ps, |b, ps| {
            b.iter(|| black_box(assign_layers_offline(ps, h, 32, false).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
