//! Congestion-simulator throughput: patterns per second drive how many
//! eBB samples the reproduction binaries can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
use orcs::{flow_bandwidths, Pattern};
use std::hint::black_box;

fn bench_orcs(c: &mut Criterion) {
    let nets = vec![
        ("kary 4-2 (16t)", fabric::topo::kary_ntree(4, 2)),
        ("kary 8-2 (64t)", fabric::topo::kary_ntree(8, 2)),
        (
            "xgft 16x16 (256t)",
            fabric::topo::xgft(2, &[16, 16], &[8, 8]),
        ),
    ];
    let mut group = c.benchmark_group("orcs_pattern");
    for (label, net) in &nets {
        let routes = DfSssp::new().route_in(net, &ComputeCtx::seq()).unwrap();
        group.bench_with_input(BenchmarkId::new("bisection", label), net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let p = Pattern::random_bisection(net.num_terminals(), seed);
                black_box(flow_bandwidths(net, &routes, &p).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orcs);
criterion_main!(benches);
