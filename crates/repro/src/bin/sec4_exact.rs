//! Sec III/IV: heuristics vs the exact APP optimum on networks small
//! enough for the exponential solver (the paper proves finding the
//! optimum is NP-complete — Theorem 1 — which is exactly why it ships
//! heuristics; this binary quantifies how far the heuristics land from
//! optimal on tractable instances).

use dfsssp_core::app::{from_pathset, lower_bound_layers};
use dfsssp_core::dfsssp::assign_layers_offline;
use dfsssp_core::paths::PathSet;
use dfsssp_core::{CycleBreakHeuristic, RoutingEngine, Sssp};

fn main() {
    let cli = repro::Cli::parse("sec4_exact");
    let cx = cli.ctx();
    println!("Sec III/IV: heuristic layers vs exact APP minimum (tiny networks)\n");
    let nets = vec![
        fabric::topo::ring(4, 1),
        fabric::topo::ring(5, 1),
        fabric::topo::ring(6, 1),
        fabric::topo::torus(&[3, 3], 1),
        fabric::topo::kautz(2, 1, 6, true),
    ];
    let mut rows = Vec::new();
    for net in nets {
        let routes = Sssp::new().route_in(&net, &cx).unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let (generator, _) = from_pathset(&ps);
        let lb = lower_bound_layers(&generator);
        let exact = generator
            .min_cover(8)
            .map(|(k, _)| k.to_string())
            .unwrap_or_else(|| "-".into());
        let mut row = vec![
            net.label().to_string(),
            generator.len().to_string(),
            lb.to_string(),
            exact,
        ];
        for h in CycleBreakHeuristic::ALL {
            let layers = assign_layers_offline(&ps, h, 64, false)
                .map(|(_, s)| s.layers_used.to_string())
                .unwrap_or_else(|_| ">64".into());
            row.push(layers);
        }
        rows.push(row);
        eprintln!("  done: {}", net.label());
    }
    cli.table(
        &[
            "network",
            "paths",
            "lower bound",
            "exact",
            "weakest",
            "heaviest",
            "first",
        ],
        &rows,
    );
    println!("\nNP-completeness (Theorem 1) is why 'exact' only exists for toys;");
    println!("the lower bound comes from mutually conflicting path cliques.");
    cli.finish().expect("write metrics");
}
