//! `route_cli` — an `opensm -R <engine>`-flavored command line: load a
//! topology file, run a routing engine, verify, report, and optionally
//! export tables and a metrics manifest.
//!
//! ```text
//! route_cli --topo fabric.topo [--format text|ibnetdiscover|json]
//!           [--engine dfsssp]           minhop|updown|dor|lash|fattree|sssp|dfsssp
//!           [--max-vls 8] [--heuristic weakest|heaviest|first|random:<seed>]
//!           [--no-balance] [--no-compact] [--ebb <patterns>]
//!           [--out-routes routes.json] [--metrics metrics.json]
//! ```

use dfsssp_core::quality::route_quality;
use dfsssp_core::verify::deadlock_report;
use dfsssp_core::{CycleBreakHeuristic, DfSssp, EngineConfig};
use fabric::{format, TopologyStats};
use std::process::ExitCode;

const EXTRA_USAGE: &str = " [--max-vls N] \
    [--heuristic weakest|heaviest|first|random:<seed>] [--no-balance] \
    [--no-compact] [--ebb <patterns>] [--quality] [--out-routes <file>]";

fn main() -> ExitCode {
    let mut max_vls = 8usize;
    let mut heuristic = CycleBreakHeuristic::WeakestEdge;
    let mut balance = true;
    let mut compact = true;
    let mut ebb: Option<usize> = None;
    let mut quality = false;
    let mut out_routes: Option<String> = None;
    let mut bad = false;
    let mut cli = repro::Cli::parse_with("route_cli", EXTRA_USAGE, |flag, val| match flag {
        "--max-vls" => {
            max_vls = val().parse().unwrap_or_else(|_| {
                bad = true;
                0
            });
            true
        }
        "--heuristic" => {
            let v = val();
            heuristic = match v.as_str() {
                "weakest" => CycleBreakHeuristic::WeakestEdge,
                "heaviest" => CycleBreakHeuristic::HeaviestEdge,
                "first" => CycleBreakHeuristic::FirstEdge,
                other => match other.strip_prefix("random:").and_then(|s| s.parse().ok()) {
                    Some(seed) => CycleBreakHeuristic::RandomEdge(seed),
                    None => {
                        bad = true;
                        CycleBreakHeuristic::WeakestEdge
                    }
                },
            };
            true
        }
        "--no-balance" => {
            balance = false;
            true
        }
        "--no-compact" => {
            compact = false;
            true
        }
        "--ebb" => {
            ebb = val().parse().ok().or_else(|| {
                bad = true;
                None
            });
            true
        }
        "--quality" => {
            quality = true;
            true
        }
        "--out-routes" => {
            out_routes = Some(val());
            true
        }
        _ => false,
    });
    if bad || cli.topo.is_none() {
        eprintln!("route_cli: bad or missing arguments (see --help)");
        return ExitCode::FAILURE;
    }

    let net = match cli.network() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("fabric: {}", TopologyStats::of(&net));

    let config = EngineConfig::new().max_layers(max_vls).balance(balance);
    let engine = match cli.engine_with(config, |d| DfSssp {
        heuristic,
        compact,
        ..d
    }) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = std::time::Instant::now();
    let routes = match engine.route_in(&net, &cli.ctx()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("routing failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "routed by {} in {:.3}s: {} virtual layer(s)",
        routes.engine(),
        t.elapsed().as_secs_f64(),
        routes.num_layers()
    );

    match deadlock_report(&net, &routes) {
        Ok(report) if report.is_deadlock_free() => {
            println!("deadlock check: PASS (all layers acyclic)");
        }
        Ok(report) => {
            println!(
                "deadlock check: HAZARD — cyclic dependency layers {:?}",
                report.cyclic_layers
            );
        }
        Err(e) => {
            eprintln!("deadlock check failed to run: {e}");
            return ExitCode::FAILURE;
        }
    }
    let nt = net.num_terminals();
    match routes.validate_connectivity(&net) {
        Ok(pairs) => println!("connectivity: {pairs}/{} ordered pairs", nt * (nt - 1)),
        Err(e) => {
            eprintln!("connectivity check failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if quality {
        match route_quality(&net, &routes) {
            Ok(q) => println!("quality: {q}"),
            Err(e) => eprintln!("quality report failed: {e}"),
        }
    }

    if let Some(patterns) = ebb {
        let opts = orcs::EbbOptions {
            patterns,
            seed: cli.seed.unwrap_or(orcs::EbbOptions::default().seed),
            ..Default::default()
        };
        let rec = cli.recorder();
        match orcs::effective_bisection_bandwidth_recorded(&net, &routes, &opts, &*rec) {
            Ok(s) => println!("effective bisection bandwidth: {s}"),
            Err(e) => eprintln!("eBB simulation failed: {e}"),
        }
    }

    if let Some(path) = &out_routes {
        let json = format::routes_to_json(&routes);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("routes written to {path}");
    }
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
