//! `route_cli` — an `opensm -R <engine>`-flavored command line: load a
//! topology file, run a routing engine, verify, report, and optionally
//! export tables.
//!
//! ```text
//! route_cli --topo fabric.topo [--format text|ibnetdiscover|json]
//!           [--engine dfsssp]           minhop|updown|dor|lash|fattree|sssp|dfsssp
//!           [--max-vls 8] [--heuristic weakest|heaviest|first|random:<seed>]
//!           [--no-balance] [--no-compact] [--ebb <patterns>]
//!           [--out-routes routes.json]
//! ```

use baselines::{Dor, FatTree, Lash, MinHop, UpDown};
use dfsssp_core::quality::route_quality;
use dfsssp_core::verify::deadlock_report;
use dfsssp_core::{CycleBreakHeuristic, DfSssp, RoutingEngine, Sssp};
use fabric::{format, Network, TopologyStats};
use std::process::ExitCode;

struct Args {
    topo: String,
    format: String,
    engine: String,
    max_vls: usize,
    heuristic: CycleBreakHeuristic,
    balance: bool,
    compact: bool,
    ebb: Option<usize>,
    quality: bool,
    out_routes: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: route_cli --topo <file> [--format text|ibnetdiscover|json] \
         [--engine minhop|updown|dor|lash|fattree|sssp|dfsssp] [--max-vls N] \
         [--heuristic weakest|heaviest|first|random:<seed>] [--no-balance] \
         [--no-compact] [--ebb <patterns>] [--quality] [--out-routes <file>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        topo: String::new(),
        format: "text".into(),
        engine: "dfsssp".into(),
        max_vls: 8,
        heuristic: CycleBreakHeuristic::WeakestEdge,
        balance: true,
        compact: true,
        ebb: None,
        quality: false,
        out_routes: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--topo" => args.topo = val(),
            "--format" => args.format = val(),
            "--engine" => args.engine = val().to_lowercase(),
            "--max-vls" => args.max_vls = val().parse().unwrap_or_else(|_| usage()),
            "--heuristic" => {
                let v = val();
                args.heuristic = match v.as_str() {
                    "weakest" => CycleBreakHeuristic::WeakestEdge,
                    "heaviest" => CycleBreakHeuristic::HeaviestEdge,
                    "first" => CycleBreakHeuristic::FirstEdge,
                    other => match other.strip_prefix("random:") {
                        Some(seed) => CycleBreakHeuristic::RandomEdge(
                            seed.parse().unwrap_or_else(|_| usage()),
                        ),
                        None => usage(),
                    },
                };
            }
            "--no-balance" => args.balance = false,
            "--no-compact" => args.compact = false,
            "--ebb" => args.ebb = Some(val().parse().unwrap_or_else(|_| usage())),
            "--quality" => args.quality = true,
            "--out-routes" => args.out_routes = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.topo.is_empty() {
        usage();
    }
    args
}

fn load(args: &Args) -> Result<Network, String> {
    let input = std::fs::read_to_string(&args.topo)
        .map_err(|e| format!("cannot read {}: {e}", args.topo))?;
    let net = match args.format.as_str() {
        "text" => format::parse_network(&input).map_err(|e| e.to_string())?,
        "ibnetdiscover" => format::parse_ibnetdiscover(&input).map_err(|e| e.to_string())?,
        "json" => format::network_from_json(&input)?,
        other => return Err(format!("unknown format {other}")),
    };
    net.validate()?;
    Ok(net)
}

fn engine_of(args: &Args) -> Box<dyn RoutingEngine> {
    match args.engine.as_str() {
        "minhop" => Box::new(MinHop::new()),
        "updown" => Box::new(UpDown::new()),
        "dor" => Box::new(Dor::new()),
        "lash" => Box::new(Lash {
            max_layers: args.max_vls,
        }),
        "fattree" => Box::new(FatTree::new()),
        "sssp" => Box::new(Sssp::new()),
        "dfsssp" => Box::new(DfSssp {
            heuristic: args.heuristic,
            max_layers: args.max_vls,
            balance: args.balance,
            compact: args.compact,
            ..DfSssp::new()
        }),
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let net = match load(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("fabric: {}", TopologyStats::of(&net));

    let engine = engine_of(&args);
    let t = std::time::Instant::now();
    let routes = match engine.route(&net) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("routing failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "routed by {} in {:.3}s: {} virtual layer(s)",
        routes.engine(),
        t.elapsed().as_secs_f64(),
        routes.num_layers()
    );

    match deadlock_report(&net, &routes) {
        Ok(report) if report.is_deadlock_free() => {
            println!("deadlock check: PASS (all layers acyclic)");
        }
        Ok(report) => {
            println!(
                "deadlock check: HAZARD — cyclic dependency layers {:?}",
                report.cyclic_layers
            );
        }
        Err(e) => {
            eprintln!("deadlock check failed to run: {e}");
            return ExitCode::FAILURE;
        }
    }
    let nt = net.num_terminals();
    match routes.validate_connectivity(&net) {
        Ok(pairs) => println!("connectivity: {pairs}/{} ordered pairs", nt * (nt - 1)),
        Err(e) => {
            eprintln!("connectivity check failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.quality {
        match route_quality(&net, &routes) {
            Ok(q) => println!("quality: {q}"),
            Err(e) => eprintln!("quality report failed: {e}"),
        }
    }

    if let Some(patterns) = args.ebb {
        let opts = orcs::EbbOptions {
            patterns,
            ..Default::default()
        };
        match orcs::effective_bisection_bandwidth(&net, &routes, &opts) {
            Ok(s) => println!("effective bisection bandwidth: {s}"),
            Err(e) => eprintln!("eBB simulation failed: {e}"),
        }
    }

    if let Some(path) = &args.out_routes {
        let json = format::routes_to_json(&routes);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("routes written to {path}");
    }
    ExitCode::SUCCESS
}
