//! Fig 6: effective bisection bandwidth on Kautz networks.

fn main() {
    let cli = repro::Cli::parse("fig06_kautz_ebb");
    let rec = cli.recorder();
    println!(
        "Figure 6: eBB on Kautz graphs ({} patterns, cap {})\n",
        repro::patterns(),
        repro::max_endpoints()
    );
    let engines = cli.engines();
    let mut headers = vec!["endpoints", "topology"];
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for (n, net) in repro::kautz_series() {
        let mut row = vec![n.to_string(), net.label().to_string()];
        for engine in &engines {
            row.push(repro::ebb_cell_recorded(engine.as_ref(), &net, &*rec));
        }
        rows.push(row);
        eprintln!("  done: {n}");
    }
    cli.table(&headers, &rows);
    cli.finish().expect("write metrics");
}
