//! Table II: all NAS kernels at the largest core count, MinHop vs
//! DFSSSP improvement.

use appsim::{Allocation, NasBenchmark};
use baselines::MinHop;
use dfsssp_core::{DfSssp, RoutingEngine};
use fabric::topo::realworld::RealSystem;

fn main() {
    let mut cli = repro::Cli::parse("table2_nas_1024");
    let cx = cli.ctx();
    let scale = repro::scale();
    let net = RealSystem::Deimos.build(scale);
    cli.note_topology(&net);
    let cores = 1024.min(net.num_terminals() / 4 * 4);
    println!("Table II: NAS models at {cores} cores on Deimos (scale={scale})\n");
    let minhop = MinHop::new().route_in(&net, &cx).unwrap();
    let dfsssp = DfSssp::new().route_in(&net, &cx).unwrap();
    let mut rows = Vec::new();
    for bench in NasBenchmark::ALL {
        let a = bench.run(&net, &minhop, cores, Allocation::Spread).unwrap();
        let b = bench.run(&net, &dfsssp, cores, Allocation::Spread).unwrap();
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.2}", a.gflops_total),
            format!("{:.2}", b.gflops_total),
            format!("{:+.1}%", (b.gflops_total / a.gflops_total - 1.0) * 100.0),
        ]);
    }
    cli.table(
        &[
            "benchmark",
            "MinHop Gflop/s",
            "DFSSSP Gflop/s",
            "improvement",
        ],
        &rows,
    );
    cli.finish().expect("write metrics");
}
