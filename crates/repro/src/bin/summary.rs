//! One-shot summary: a fast battery of the paper's headline claims,
//! suitable for CI and for a first look after building. Each section
//! names the figure/table it corresponds to; the full-size runs live in
//! the dedicated per-figure binaries.

use appsim::{netgauge_ebb, Allocation};
use baselines::{Lash, MinHop};
use dfsssp_core::{DfSssp, RoutingEngine, Sssp};
use fabric::topo::realworld::RealSystem;
use flitsim::{simulate_recorded, SimConfig, Workload};
use orcs::{effective_bisection_bandwidth_recorded, EbbOptions};

fn main() {
    let cli = repro::Cli::parse("summary");
    let cx = cli.ctx();
    let rec = cli.recorder();
    println!("DFSSSP reproduction summary\n===========================\n");

    // 1. Fig 2: the ring deadlock, live.
    let ring = fabric::topo::ring(5, 1);
    let config = SimConfig {
        buffer_capacity: 1,
        max_cycles: 100_000,
        ..SimConfig::default()
    };
    let w = Workload::shift(5, 2, 8);
    let sssp = Sssp::new().route_in(&ring, &cx).unwrap();
    let dfsssp = DfSssp::new().route_in(&ring, &cx).unwrap();
    println!(
        "[Fig 2] 5-ring shift pattern: SSSP {} | DFSSSP ({} VLs) {}",
        if simulate_recorded(&ring, &sssp, &w, &config, &*rec).deadlocked() {
            "DEADLOCKS"
        } else {
            "survives?!"
        },
        dfsssp.num_layers(),
        if simulate_recorded(&ring, &dfsssp, &w, &config, &*rec).completed() {
            "completes"
        } else {
            "fails?!"
        },
    );

    // 2. Fig 5 flavor: eBB on an oversubscribed XGFT.
    let xgft = fabric::topo::xgft(2, &[16, 16], &[8, 8]);
    let opts = EbbOptions {
        patterns: 100,
        ..Default::default()
    };
    let mh = MinHop::new().route_in(&xgft, &cx).unwrap();
    let df = DfSssp::new().route_in(&xgft, &cx).unwrap();
    let lash = Lash::new().route_in(&xgft, &cx).unwrap();
    let e = |r| {
        effective_bisection_bandwidth_recorded(&xgft, r, &opts, &*rec)
            .unwrap()
            .mean
    };
    println!(
        "[Fig 5] XGFT(2;16,16;8,8) eBB: MinHop {:.3} | LASH {:.3} | DFSSSP {:.3}",
        e(&mh),
        e(&lash),
        e(&df)
    );

    // 3. Fig 10 flavor: VLs on the Deimos reconstruction.
    let deimos = RealSystem::Deimos.build(0.1);
    let vls = DfSssp {
        balance: false,
        compact: false,
        max_layers: 64,
        ..DfSssp::new()
    };
    let (_, stats) = vls.route_with_stats(&deimos).unwrap();
    let (_, lash_vls) = Lash {
        max_layers: 64,
        ..Lash::new()
    }
    .route_with_layers(&deimos)
    .unwrap();
    println!(
        "[Fig 10] Deimos(x0.1) virtual layers: DFSSSP {} | LASH {}",
        stats.layers_used, lash_vls
    );

    // 4. Fig 12 flavor: Netgauge eBB on Deimos.
    let dmh = MinHop::new().route_in(&deimos, &cx).unwrap();
    let ddf = DfSssp::new().route_in(&deimos, &cx).unwrap();
    let cores = 64.min(deimos.num_terminals());
    let a = netgauge_ebb(&deimos, &dmh, cores, Allocation::Spread, 100, 946.0, 1).unwrap();
    let b = netgauge_ebb(&deimos, &ddf, cores, Allocation::Spread, 100, 946.0, 1).unwrap();
    println!(
        "[Fig 12] Deimos(x0.1) {cores}-core Netgauge eBB: MinHop {:.0} MiB/s | DFSSSP {:.0} MiB/s ({:+.0}%)",
        a.mean,
        b.mean,
        (b.mean / a.mean - 1.0) * 100.0
    );

    println!("\nAll headline mechanisms verified. See DESIGN.md / EXPERIMENTS.md.");
    cli.finish().expect("write metrics");
}
