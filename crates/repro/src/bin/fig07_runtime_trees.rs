//! Fig 7: routing runtime on k-ary n-trees (wall clock per engine).

use std::time::Instant;

fn main() {
    let cli = repro::Cli::parse("fig07_runtime_trees");
    let cx = cli.ctx();
    println!("Figure 7: routing runtime on k-ary n-trees (seconds)\n");
    let engines = cli.engines();
    let mut headers = vec!["endpoints", "topology"];
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for (n, net) in repro::tree_series() {
        let mut row = vec![n.to_string(), net.label().to_string()];
        for engine in &engines {
            let t = Instant::now();
            let res = engine.route_in(&net, &cx);
            let dt = t.elapsed().as_secs_f64();
            row.push(match res {
                Ok(_) => format!("{dt:.3}"),
                Err(e) => repro::failure_label(&e),
            });
        }
        rows.push(row);
        eprintln!("  done: {n}");
    }
    cli.table(&headers, &rows);
    cli.finish().expect("write metrics");
}
