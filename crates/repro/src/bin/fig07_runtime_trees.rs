//! Fig 7: routing runtime on k-ary n-trees (wall clock per engine).

use std::time::Instant;

fn main() {
    println!("Figure 7: routing runtime on k-ary n-trees (seconds)\n");
    let engines = repro::engines();
    let mut headers = vec!["endpoints", "topology"];
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for (n, net) in repro::tree_series() {
        let mut row = vec![n.to_string(), net.label().to_string()];
        for engine in &engines {
            let t = Instant::now();
            let res = engine.route(&net);
            let dt = t.elapsed().as_secs_f64();
            row.push(match res {
                Ok(_) => format!("{dt:.3}"),
                Err(e) => repro::failure_label(&e),
            });
        }
        rows.push(row);
        eprintln!("  done: {n}");
    }
    repro::print_table(&headers, &rows);
}
