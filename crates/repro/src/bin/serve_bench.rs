//! `serve_bench` — the route-serving benchmark: closed-loop query
//! throughput scaling over client threads, latency percentiles, and a
//! chaos phase publishing epochs under reader load, written as a
//! versioned `dfsssp-serve-bench/v1` report (CI's serve-smoke artifact).
//!
//! ```text
//! serve_bench --topo examples/grown-cluster.topo [--quick] \
//!             [--threads 8] [--out BENCH_pr5.json] [--seed 7]
//! serve_bench --validate BENCH_pr5.json    # parse + schema check only
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_pr5.json".to_string();
    let mut threads = 8usize;
    let mut validate: Option<String> = None;
    let mut cli = repro::Cli::parse_with(
        "serve_bench",
        " [--quick] [--threads <N>] [--out <file>] [--validate <file>]",
        |flag, val| match flag {
            "--quick" => {
                quick = true;
                true
            }
            "--threads" => {
                threads = val().parse().unwrap_or(8).clamp(1, 64);
                true
            }
            "--out" => {
                out = val();
                true
            }
            "--validate" => {
                validate = Some(val());
                true
            }
            _ => false,
        },
    );

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match repro::serve_bench::ServeBenchReport::from_json(&text) {
            Ok(report) => {
                println!(
                    "{path}: valid {} report, {} points, {} chaos epochs, {} failed queries",
                    report.schema,
                    report.points.len(),
                    report.chaos.epochs,
                    report.chaos.failed,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let net = match cli.network() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let seed = cli.seed.unwrap_or(7);
    cli.seed = Some(seed);
    let report = repro::serve_bench::run(&net, quick, seed, threads);
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for p in &report.points {
        println!(
            "serve_bench: {:>2} thread(s)  {:>9} qps  p50 {:>5} us  p99 {:>5} us",
            p.threads, p.qps, p.p50_us, p.p99_us
        );
    }
    println!(
        "serve_bench: scaling {:.2}x on {} core(s), chaos {} epochs / {} queries / {} failed \
         (max swap pause {} us) -> {out}",
        report.scaling_milli as f64 / 1_000.0,
        report.cores,
        report.chaos.epochs,
        report.chaos.queries,
        report.chaos.failed,
        report.chaos.max_swap_pause_us,
    );
    if report.chaos.failed > 0 {
        eprintln!("serve_bench: FAILED queries under chaos");
        return ExitCode::FAILURE;
    }
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
