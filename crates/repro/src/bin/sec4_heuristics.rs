//! Sec IV: cycle-break heuristic comparison on random topologies
//! (64 switches, 1024 terminals, 128 inter-switch links): layer counts
//! per heuristic (paper: weakest 3-5, first-edge 4-8, heaviest 4-16).

use dfsssp_core::{CycleBreakHeuristic, DfSssp};
use fabric::topo::{random_topology, RandomTopoSpec};
use rayon::prelude::*;

fn main() {
    let cli = repro::Cli::parse("sec4_heuristics");
    let seeds = repro::seeds();
    println!("Sec IV: heuristic comparison ({seeds} random topologies)\n");
    let spec = RandomTopoSpec::heuristic_study();
    let mut rows = Vec::new();
    for h in CycleBreakHeuristic::ALL {
        let layers: Vec<usize> = (0..seeds as u64)
            .into_par_iter()
            .map(|seed| {
                let net = random_topology(&spec, seed);
                let engine = DfSssp {
                    heuristic: h,
                    max_layers: 64,
                    balance: false,
                    compact: false, // raw heuristic quality
                    ..DfSssp::new()
                };
                engine
                    .route_with_stats(&net)
                    .map(|(_, s)| s.layers_used)
                    .unwrap_or(64)
            })
            .collect();
        let min = *layers.iter().min().unwrap();
        let max = *layers.iter().max().unwrap();
        let avg = layers.iter().sum::<usize>() as f64 / layers.len() as f64;
        rows.push(vec![
            h.name().to_string(),
            min.to_string(),
            format!("{avg:.2}"),
            max.to_string(),
        ]);
        eprintln!("  done: {}", h.name());
    }
    cli.table(&["heuristic", "min VLs", "avg VLs", "max VLs"], &rows);
    cli.finish().expect("write metrics");
}
