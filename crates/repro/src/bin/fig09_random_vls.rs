//! Fig 9: virtual layers needed on random topologies (128 32-port
//! switches, 16 terminals each) as the inter-switch link count varies,
//! LASH vs DFSSSP, min/avg/max over seeds.

use baselines::Lash;
use dfsssp_core::DfSssp;
use fabric::topo::{random_topology, RandomTopoSpec};
use rayon::prelude::*;

fn main() {
    let cli = repro::Cli::parse("fig09_random_vls");
    let seeds = repro::seeds();
    println!("Figure 9: #virtual layers on random topologies ({seeds} seeds per point)\n");
    let mut rows = Vec::new();
    for links in [130usize, 140, 150, 175, 200, 225, 250, 275, 300] {
        let spec = RandomTopoSpec::fig9(links);
        let results: Vec<(usize, usize)> = (0..seeds as u64)
            .into_par_iter()
            .map(|seed| {
                let net = random_topology(&spec, seed);
                let dfsssp = DfSssp {
                    max_layers: 64,
                    balance: false,
                    compact: false, // measure the unmodified Algorithm 2
                    ..DfSssp::new()
                };
                let df = dfsssp
                    .route_with_stats(&net)
                    .map(|(_, s)| s.layers_used)
                    .unwrap_or(64);
                let lash = Lash {
                    max_layers: 64,
                    ..Lash::new()
                }
                .route_with_layers(&net)
                .map(|(_, l)| l)
                .unwrap_or(64);
                (df, lash)
            })
            .collect();
        let stats = |xs: Vec<usize>| {
            let min = *xs.iter().min().unwrap();
            let max = *xs.iter().max().unwrap();
            let avg = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
            format!("{min}/{avg:.2}/{max}")
        };
        rows.push(vec![
            links.to_string(),
            stats(results.iter().map(|r| r.0).collect()),
            stats(results.iter().map(|r| r.1).collect()),
        ]);
        eprintln!("  done: {links} links");
    }
    cli.table(&["links", "DFSSSP min/avg/max", "LASH min/avg/max"], &rows);
    cli.finish().expect("write metrics");
}
