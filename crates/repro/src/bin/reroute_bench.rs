//! `reroute_bench` — the incremental-reroute benchmark: warm
//! `DeltaEngine` epoch recompute versus a cold full sweep across seeded
//! single-cable failures, with a bit-for-bit identity gate on every
//! cell, written as a versioned `dfsssp-reroute/v1` report (CI's
//! reroute-smoke artifact).
//!
//! ```text
//! reroute_bench --topo examples/grown-cluster.topo [--quick] \
//!               [--out BENCH_pr10.json] [--seed 7]
//! reroute_bench --validate BENCH_pr10.json    # parse + schema check only
//! ```
//!
//! Exit is non-zero when any cell's delta routes diverge from the cold
//! sweep (always checked — the hardware-independent gate), or — full
//! runs only — when no delta-path cell reaches a 10x reroute speedup
//! (the scale suite contains path-diverse fabrics where O(change)
//! must beat O(fabric) by at least that much; `--quick` measures only
//! the provided fabric, whose ratio is topology-dependent, so quick
//! runs gate on identity alone).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_pr10.json".to_string();
    let mut validate: Option<String> = None;
    let mut cli = repro::Cli::parse_with(
        "reroute_bench",
        " [--quick] [--out <file>] [--validate <file>]",
        |flag, val| match flag {
            "--quick" => {
                quick = true;
                true
            }
            "--out" => {
                out = val();
                true
            }
            "--validate" => {
                validate = Some(val());
                true
            }
            _ => false,
        },
    );

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match repro::reroute_bench::RerouteBenchReport::from_json(&text) {
            Ok(report) => {
                println!(
                    "{path}: valid {} report, {} cells on {} core(s), identical: {}",
                    report.schema,
                    report.cells.len(),
                    report.host_cores,
                    report.identical(),
                );
                if report.identical() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("{path}: a recorded cell diverged from the cold sweep");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let net = match cli.network() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let seed = cli.seed.unwrap_or(7);
    cli.seed = Some(seed);
    let report = repro::reroute_bench::run(&net, quick, seed);
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for c in &report.cells {
        println!(
            "reroute_bench: {:<24} {:<8} {:>4} dests dirty  full {:>12} ns  delta {:>12} ns  \
             {:>7.2}x  fellback: {}  identical: {}",
            c.topo,
            c.event,
            c.dirty_dests,
            c.full_ns,
            c.delta_ns,
            c.ratio_milli as f64 / 1_000.0,
            c.fellback,
            c.identical_to_full,
        );
    }
    println!(
        "reroute_bench: {} cells on {} core(s) -> {out}",
        report.cells.len(),
        report.host_cores,
    );

    // The hardware-independent gate: the warm reroute must produce the
    // cold sweep's artifact, everywhere, always.
    if !report.identical() {
        eprintln!("reroute_bench: FAILED — delta routes diverged from the cold sweep");
        return ExitCode::FAILURE;
    }
    // The scale gate: full runs include fabrics engineered to expose
    // the O(change)/O(fabric) gap; at least one delta cell must hit 10x.
    if !quick {
        let best = report.max_delta_ratio_milli().unwrap_or(0);
        if best < 10_000 {
            eprintln!(
                "reroute_bench: FAILED — best delta speedup {:.2}x < 10x across the scale suite",
                best as f64 / 1_000.0,
            );
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
