//! Fig 5: effective bisection bandwidth on extended generalized fat
//! trees, 64..4096 endpoints.

fn main() {
    let cli = repro::Cli::parse("fig05_xgft_ebb");
    println!(
        "Figure 5: eBB on XGFTs ({} patterns, cap {})\n",
        repro::patterns(),
        repro::max_endpoints()
    );
    sweep(&cli, repro::xgft_series());
    cli.finish().expect("write metrics");
}

fn sweep(cli: &repro::Cli, series: Vec<(usize, fabric::Network)>) {
    let rec = cli.recorder();
    let engines = cli.engines();
    let mut headers = vec!["endpoints", "topology"];
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for (n, net) in series {
        let mut row = vec![n.to_string(), net.label().to_string()];
        for engine in &engines {
            row.push(repro::ebb_cell_recorded(engine.as_ref(), &net, &*rec));
        }
        rows.push(row);
        eprintln!("  done: {n}");
    }
    cli.table(&headers, &rows);
}
