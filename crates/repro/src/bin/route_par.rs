//! `route_par` — the parallel route-compute benchmark: per-topology
//! route latency at 1/2/4 compute workers plus a bit-for-bit
//! determinism gate against the single-worker tables, written as a
//! versioned `dfsssp-route-par/v1` report (CI's parallel-smoke
//! artifact).
//!
//! ```text
//! route_par [--quick] [--out BENCH_pr8.json]
//! route_par --validate BENCH_pr8.json    # parse + schema check only
//! ```
//!
//! Exit is non-zero when any cell's routes diverge from the
//! single-worker run (always checked), or — only on a multi-core
//! host — when the 2-worker speedup falls below 1.1x on every suite
//! topology (a scheduling-regression tripwire; the paper-grade 1.7x/3x
//! targets live in the committed report, not the gate, because CI
//! runners vary too much to pin them).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_pr8.json".to_string();
    let mut validate: Option<String> = None;
    let cli = repro::Cli::parse_with(
        "route_par",
        " [--quick] [--out <file>] [--validate <file>]",
        |flag, val| match flag {
            "--quick" => {
                quick = true;
                true
            }
            "--out" => {
                out = val();
                true
            }
            "--validate" => {
                validate = Some(val());
                true
            }
            _ => false,
        },
    );

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match repro::route_par::RouteParReport::from_json(&text) {
            Ok(report) => {
                println!(
                    "{path}: valid {} report, {} cells on {} core(s), deterministic: {}",
                    report.schema,
                    report.cells.len(),
                    report.host_cores,
                    report.deterministic(),
                );
                if report.deterministic() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("{path}: a recorded cell diverged from its single-worker run");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = repro::route_par::run(quick);
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for c in &report.cells {
        println!(
            "route_par: {:<24} {} worker(s)  {:>12} ns  {:>5.2}x  identical: {}",
            c.topo,
            c.threads,
            c.route_ns,
            c.speedup_milli as f64 / 1_000.0,
            c.identical_to_seq,
        );
    }
    println!(
        "route_par: {} cells on {} core(s) -> {out}",
        report.cells.len(),
        report.host_cores,
    );

    // The hardware-independent gate: parallel output must be the
    // sequential output, everywhere, always.
    if !report.deterministic() {
        eprintln!("route_par: FAILED — parallel routes diverged from the single-worker run");
        return ExitCode::FAILURE;
    }
    // The hardware-dependent tripwire: only meaningful with >= 2 cores.
    if report.host_cores >= 2 {
        if let Some(best2) = report
            .cells
            .iter()
            .filter(|c| c.threads == 2)
            .map(|c| c.speedup_milli)
            .max()
        {
            if best2 < 1_100 {
                eprintln!(
                    "route_par: FAILED — best 2-worker speedup {:.2}x < 1.1x on a {}-core host",
                    best2 as f64 / 1_000.0,
                    report.host_cores,
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
