//! Fig 10: virtual layers needed to route the real-world systems
//! deadlock-free, LASH vs DFSSSP.

use baselines::Lash;
use dfsssp_core::DfSssp;
use fabric::topo::realworld::RealSystem;

fn main() {
    let cli = repro::Cli::parse("fig10_realworld_vls");
    let scale = repro::scale();
    println!("Figure 10: #virtual layers on real systems (scale={scale})\n");
    let mut rows = Vec::new();
    for sys in RealSystem::ALL {
        let net = sys.build(scale);
        let dfsssp = DfSssp {
            max_layers: 64,
            balance: false,
            compact: false, // measure the unmodified Algorithm 2
            ..DfSssp::new()
        };
        let df = dfsssp
            .route_with_stats(&net)
            .map(|(_, s)| s.layers_used.to_string())
            .unwrap_or_else(|e| repro::failure_label(&e));
        let lash = Lash {
            max_layers: 64,
            ..Lash::new()
        }
        .route_with_layers(&net)
        .map(|(_, l)| l.to_string())
        .unwrap_or_else(|e| repro::failure_label(&e));
        rows.push(vec![
            sys.name().to_string(),
            net.num_terminals().to_string(),
            df,
            lash,
        ]);
        eprintln!("  done: {}", sys.name());
    }
    cli.table(&["system", "endpoints", "DFSSSP VLs", "LASH VLs"], &rows);
    cli.finish().expect("write metrics");
}
