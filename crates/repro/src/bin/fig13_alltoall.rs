//! Fig 13: MPI all-to-all runtime vs message size on 128 cores of the
//! Deimos reconstruction, MinHop vs DFSSSP.

use appsim::{alltoall_time, Allocation};
use baselines::MinHop;
use dfsssp_core::{DfSssp, RoutingEngine};
use fabric::topo::realworld::RealSystem;

fn main() {
    let mut cli = repro::Cli::parse("fig13_alltoall");
    let cx = cli.ctx();
    let scale = repro::scale();
    let net = RealSystem::Deimos.build(scale);
    cli.note_topology(&net);
    let cores = 128.min(net.num_terminals());
    println!("Figure 13: all-to-all runtime on Deimos, {cores} cores (milliseconds)\n");
    let minhop = MinHop::new().route_in(&net, &cx).unwrap();
    let dfsssp = DfSssp::new().route_in(&net, &cx).unwrap();
    let mut rows = Vec::new();
    for floats in [4usize, 16, 64, 256, 1024, 4096] {
        let bytes = floats * 4 * cores; // send buffer per rank -> per pair
        let per_pair = floats * 4;
        let a = alltoall_time(&net, &minhop, cores, Allocation::Spread, per_pair, 946.0).unwrap();
        let b = alltoall_time(&net, &dfsssp, cores, Allocation::Spread, per_pair, 946.0).unwrap();
        rows.push(vec![
            floats.to_string(),
            format!("{}", bytes),
            format!("{:.3}", a * 1e3),
            format!("{:.3}", b * 1e3),
            format!("{:+.1}%", (a / b - 1.0) * 100.0),
        ]);
    }
    cli.table(
        &["floats", "bytes/rank", "MinHop ms", "DFSSSP ms", "speedup"],
        &rows,
    );
    cli.finish().expect("write metrics");
}
