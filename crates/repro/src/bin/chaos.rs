//! `chaos` — replay a seeded failure/recovery campaign against a
//! topology and routing engine, vetting every intermediate programmed
//! state (see `subnet::chaos`).
//!
//! ```text
//! chaos --topo fabric.topo [--format text|ibnetdiscover|json]
//!       | --gen torus:4x4 | --gen kary:4,2 | --gen ring:5
//!       [--engine dfsssp] [--events 10] [--seed 7] [--hw-vls 8]
//!       [--no-flap] [--no-switch-bursts] [--no-heal] [--json]
//! ```
//!
//! Exit status is non-zero when any intermediate state failed vetting or
//! terminals were left quarantined at the end of the campaign.

use baselines::{Dor, FatTree, Lash, MinHop, UpDown};
use dfsssp_core::{DfSssp, RoutingEngine, Sssp};
use fabric::{format, topo, Network, TopologyStats};
use std::process::ExitCode;
use subnet::{run_campaign, schedule, CampaignSpec};

struct Args {
    topo: Option<String>,
    gen: Option<String>,
    format: String,
    engine: String,
    spec: CampaignSpec,
    hw_vls: usize,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos (--topo <file> [--format text|ibnetdiscover|json] | \
         --gen torus:<X>x<Y>|kary:<k>,<n>|ring:<N>) \
         [--engine minhop|updown|dor|lash|fattree|sssp|dfsssp] \
         [--events N] [--seed S] [--hw-vls N] \
         [--no-flap] [--no-switch-bursts] [--no-heal] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        topo: None,
        gen: None,
        format: "text".into(),
        engine: "dfsssp".into(),
        spec: CampaignSpec::default(),
        hw_vls: 8,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--topo" => args.topo = Some(val()),
            "--gen" => args.gen = Some(val()),
            "--format" => args.format = val(),
            "--engine" => args.engine = val().to_lowercase(),
            "--events" => args.spec.events = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.spec.seed = val().parse().unwrap_or_else(|_| usage()),
            "--hw-vls" => args.hw_vls = val().parse().unwrap_or_else(|_| usage()),
            "--no-flap" => args.spec.flap_burst = false,
            "--no-switch-bursts" => args.spec.switch_bursts = false,
            "--no-heal" => args.spec.heal = false,
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.topo.is_none() == args.gen.is_none() {
        usage();
    }
    args
}

fn generate(spec: &str) -> Result<Network, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("malformed --gen {spec}"))?;
    match kind {
        "torus" => {
            let dims: Result<Vec<u16>, _> = rest.split('x').map(str::parse).collect();
            let dims = dims.map_err(|_| format!("bad torus extents {rest}"))?;
            Ok(topo::torus(&dims, 1))
        }
        "kary" => {
            let (k, n) = rest
                .split_once(',')
                .ok_or_else(|| format!("bad kary spec {rest}"))?;
            let k = k.parse().map_err(|_| format!("bad k {k}"))?;
            let n = n.parse().map_err(|_| format!("bad n {n}"))?;
            Ok(topo::kary_ntree(k, n))
        }
        "ring" => {
            let n = rest.parse().map_err(|_| format!("bad ring size {rest}"))?;
            Ok(topo::ring(n, 1))
        }
        other => Err(format!("unknown generator {other}")),
    }
}

fn load(args: &Args) -> Result<Network, String> {
    if let Some(g) = &args.gen {
        return generate(g);
    }
    let path = args.topo.as_deref().expect("checked in parse_args");
    let input = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let net = match args.format.as_str() {
        "text" => format::parse_network(&input).map_err(|e| e.to_string())?,
        "ibnetdiscover" => format::parse_ibnetdiscover(&input).map_err(|e| e.to_string())?,
        "json" => format::network_from_json(&input)?,
        other => return Err(format!("unknown format {other}")),
    };
    net.validate()?;
    Ok(net)
}

fn engine_of(args: &Args) -> Box<dyn RoutingEngine> {
    match args.engine.as_str() {
        "minhop" => Box::new(MinHop::new()),
        "updown" => Box::new(UpDown::new()),
        "dor" => Box::new(Dor::new()),
        "lash" => Box::new(Lash {
            max_layers: args.hw_vls,
        }),
        "fattree" => Box::new(FatTree::new()),
        "sssp" => Box::new(Sssp::new()),
        "dfsssp" => Box::new(DfSssp {
            max_layers: args.hw_vls,
            ..DfSssp::new()
        }),
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let net = match load(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.json {
        println!("fabric: {}", TopologyStats::of(&net));
    }
    let batches = schedule(&net, &args.spec);
    let engine = engine_of(&args);
    let report = match run_campaign(engine, &net, &batches, args.spec.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
