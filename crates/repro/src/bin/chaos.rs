//! `chaos` — replay a seeded failure/recovery campaign against a
//! topology and routing engine, vetting every intermediate programmed
//! state (see `subnet::chaos`).
//!
//! ```text
//! chaos --topo fabric.topo [--format text|ibnetdiscover|json]
//!       | --gen torus:4x4 | --gen kary:4,2 | --gen ring:5
//!       [--engine dfsssp] [--events 10] [--seed 7] [--hw-vls 8]
//!       [--no-flap] [--no-switch-bursts] [--no-heal] [--json]
//!       [--metrics metrics.json]
//! ```
//!
//! Exit status is non-zero when any intermediate state failed vetting or
//! terminals were left quarantined at the end of the campaign.

use dfsssp_core::EngineConfig;
use fabric::TopologyStats;
use std::process::ExitCode;
use subnet::{run_campaign_recorded, schedule, CampaignSpec};

const EXTRA_USAGE: &str = " [--events N] [--hw-vls N] \
    [--no-flap] [--no-switch-bursts] [--no-heal]";

fn main() -> ExitCode {
    let mut spec = CampaignSpec::default();
    let mut hw_vls = 8usize;
    let mut bad = false;
    let mut cli = repro::Cli::parse_with("chaos", EXTRA_USAGE, |flag, val| match flag {
        "--events" => {
            spec.events = val().parse().unwrap_or_else(|_| {
                bad = true;
                0
            });
            true
        }
        "--hw-vls" => {
            hw_vls = val().parse().unwrap_or_else(|_| {
                bad = true;
                0
            });
            true
        }
        "--no-flap" => {
            spec.flap_burst = false;
            true
        }
        "--no-switch-bursts" => {
            spec.switch_bursts = false;
            true
        }
        "--no-heal" => {
            spec.heal = false;
            true
        }
        _ => false,
    });
    if bad {
        eprintln!("chaos: bad arguments (see --help)");
        return ExitCode::FAILURE;
    }
    if let Some(seed) = cli.seed {
        spec.seed = seed;
    } else {
        cli.seed = Some(spec.seed);
    }

    let net = match cli.network() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !cli.json {
        println!("fabric: {}", TopologyStats::of(&net));
    }
    let batches = schedule(&net, &spec);
    let engine = match cli.engine(EngineConfig::new().max_layers(hw_vls)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run_campaign_recorded(engine, &net, &batches, spec.seed, cli.recorder()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    let ok = report.ok();
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
