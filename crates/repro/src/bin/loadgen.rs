//! `loadgen` — the open-loop overload benchmark: replay a timestamped
//! traffic trace at 4x measured serving capacity, judge per-class SLOs,
//! verify every response was an epoch-consistent answer or a typed
//! shed, and gate on the robustness invariants (CI's overload-smoke
//! job). Written as a versioned `dfsssp-loadgen/v1` report.
//!
//! ```text
//! loadgen --gen kary:8,2 [--quick] [--mix flash|uniform|hotspot|nas] \
//!         [--out BENCH_pr7.json] [--seed 7]
//! loadgen --validate BENCH_pr7.json    # parse + schema check only
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_pr7.json".to_string();
    let mut mix = "flash".to_string();
    let mut validate: Option<String> = None;
    let mut cli = repro::Cli::parse_with(
        "loadgen",
        " [--quick] [--mix <name>] [--out <file>] [--validate <file>]",
        |flag, val| match flag {
            "--quick" => {
                quick = true;
                true
            }
            "--mix" => {
                mix = val();
                true
            }
            "--out" => {
                out = val();
                true
            }
            "--validate" => {
                validate = Some(val());
                true
            }
            _ => false,
        },
    );

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match repro::loadgen::LoadgenReport::from_json(&text) {
            Ok(report) => {
                println!(
                    "{path}: valid {} report, {} mix at {} qps offered / {} answered, \
                     {} chaos epochs, {} malformed",
                    report.schema,
                    report.mix,
                    report.offered_qps,
                    report.admitted_qps,
                    report.chaos_epochs,
                    report.malformed,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let net = match cli.network() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let seed = cli.seed.unwrap_or(7);
    cli.seed = Some(seed);
    let report = repro::loadgen::run(&net, &mix, quick, seed);
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for c in &report.classes {
        println!(
            "loadgen: {:<11} offered {:>7}  answered {:>7}  rejected {:>6}  expired {:>6}  \
             p50 {:>6} us  p99 {:>7} us  SLO {}us {}",
            c.class,
            c.offered,
            c.answered,
            c.rejected,
            c.expired,
            c.p50_us,
            c.p99_us,
            c.slo_target_us,
            if c.slo_met { "MET" } else { "VIOLATED" },
        );
    }
    println!(
        "loadgen: {} mix, capacity {} qps, offered {} qps (4x), answered {} qps, \
         shed floor {} permille, {} chaos epoch(s), {} malformed -> {out}",
        report.mix,
        report.capacity_qps,
        report.offered_qps,
        report.admitted_qps,
        report.min_admitted_permille,
        report.chaos_epochs,
        report.malformed,
    );
    if let Err(why) = report.gate() {
        eprintln!("loadgen: GATE FAILED: {why}");
        return ExitCode::FAILURE;
    }
    println!("loadgen: gate passed");
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
