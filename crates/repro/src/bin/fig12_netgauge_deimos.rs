//! Fig 12: Netgauge-style effective bisection bandwidth on the Deimos
//! reconstruction at 128..1024 cores, MinHop vs LASH vs DFSSSP.

use appsim::{netgauge_ebb, Allocation};
use baselines::{Lash, MinHop};
use dfsssp_core::{DfSssp, RoutingEngine};
use fabric::topo::realworld::RealSystem;

fn main() {
    let mut cli = repro::Cli::parse("fig12_netgauge_deimos");
    let cx = cli.ctx();
    let rec = cli.recorder();
    let scale = repro::scale();
    let partitions = repro::patterns();
    let net = RealSystem::Deimos.build(scale);
    let nt = net.num_terminals();
    println!(
        "Figure 12: Netgauge eBB on Deimos (scale={scale}, {nt} endpoints, {partitions} partitions, MiB/s)\n"
    );
    cli.note_topology(&net);
    let config = || dfsssp_core::EngineConfig::new().recorder(rec.clone());
    let engines: Vec<Box<dyn RoutingEngine>> = vec![
        Box::new(MinHop::new()),
        Box::new(Lash::new().with_config(config())),
        Box::new(DfSssp::new().with_config(config())),
    ];
    let routed: Vec<(String, Option<fabric::Routes>)> = engines
        .iter()
        .map(|e| (e.name().to_string(), e.route_in(&net, &cx).ok()))
        .collect();
    let mut rows = Vec::new();
    for cores in [128usize, 256, 512, 1024] {
        let cores = cores.min(nt);
        let mut row = vec![cores.to_string()];
        for (_, routes) in &routed {
            row.push(match routes {
                None => "n/a".into(),
                Some(r) => {
                    let s = netgauge_ebb(&net, r, cores, Allocation::Spread, partitions, 946.0, 42)
                        .unwrap();
                    format!("{:.1}", s.mean)
                }
            });
        }
        rows.push(row);
        eprintln!("  done: {cores} cores");
        if cores == nt {
            break;
        }
    }
    let mut headers = vec!["cores"];
    let names: Vec<String> = routed.iter().map(|(n, _)| n.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    cli.table(&headers, &rows);
    cli.finish().expect("write metrics");
}
