//! `vet` — static analysis of a routing artifact from the command line.
//!
//! Loads a topology file and a routes artifact (as written by
//! `route_cli --out-routes`), runs the [`vet`] analyzer, and prints the
//! report. Exits non-zero when any error-severity finding is present, so
//! CI can gate on it.
//!
//! ```text
//! vet --topo fabric.topo [--format text|ibnetdiscover|json]
//!     --routes routes.json [--hw-vls 8] [--allow-cycles] [--no-minimal]
//!     [--max-diags N] [--json]
//! ```

use fabric::{format, Network, Routes};
use std::process::ExitCode;

struct Args {
    topo: String,
    format: String,
    routes: String,
    config: vet::Config,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: vet --topo <file> [--format text|ibnetdiscover|json] --routes <routes.json> \
         [--hw-vls N] [--allow-cycles] [--no-minimal] [--max-diags N] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        topo: String::new(),
        format: "text".into(),
        routes: String::new(),
        config: vet::Config::default(),
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--topo" => args.topo = val(),
            "--format" => args.format = val(),
            "--routes" => args.routes = val(),
            "--hw-vls" => {
                args.config.hw_vls = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            "--allow-cycles" => args.config.deadlock_error = false,
            "--no-minimal" => args.config.check_minimal = false,
            "--max-diags" => {
                args.config.max_diagnostics_per_code = val().parse().unwrap_or_else(|_| usage());
            }
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.topo.is_empty() || args.routes.is_empty() {
        usage();
    }
    args
}

fn load(args: &Args) -> Result<(Network, Routes), String> {
    let input = std::fs::read_to_string(&args.topo)
        .map_err(|e| format!("cannot read {}: {e}", args.topo))?;
    let net = match args.format.as_str() {
        "text" => format::parse_network(&input).map_err(|e| e.to_string())?,
        "ibnetdiscover" => format::parse_ibnetdiscover(&input).map_err(|e| e.to_string())?,
        "json" => format::network_from_json(&input)?,
        other => return Err(format!("unknown format {other}")),
    };
    net.validate()?;
    let routes_json = std::fs::read_to_string(&args.routes)
        .map_err(|e| format!("cannot read {}: {e}", args.routes))?;
    let routes = format::routes_from_json(&routes_json)?;
    Ok((net, routes))
}

fn main() -> ExitCode {
    let args = parse_args();
    let (net, routes) = match load(&args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = vet::analyze_with(&net, &routes, &args.config);
    if args.json {
        match report.to_json() {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", report.render_human());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
