//! `vet` — static analysis of a routing artifact from the command line.
//!
//! Loads a topology file and a routes artifact (as written by
//! `route_cli --out-routes`), runs the [`vet`] analyzer, and prints the
//! report. Exits non-zero when any error-severity finding is present, so
//! CI can gate on it.
//!
//! ```text
//! vet --topo fabric.topo [--format text|ibnetdiscover|json]
//!     --routes routes.json [--hw-vls 8] [--allow-cycles] [--no-minimal]
//!     [--max-diags N] [--json] [--metrics metrics.json]
//! ```

use fabric::format;
use std::process::ExitCode;

const EXTRA_USAGE: &str =
    " --routes <routes.json> [--hw-vls N] [--allow-cycles] [--no-minimal] [--max-diags N]";

fn main() -> ExitCode {
    let mut routes_path = String::new();
    let mut config = vet::Config::default();
    let mut bad = false;
    let mut cli = repro::Cli::parse_with("vet", EXTRA_USAGE, |flag, val| match flag {
        "--routes" => {
            routes_path = val();
            true
        }
        "--hw-vls" => {
            config.hw_vls = val().parse().ok().or_else(|| {
                bad = true;
                None
            });
            true
        }
        "--allow-cycles" => {
            config.deadlock_error = false;
            true
        }
        "--no-minimal" => {
            config.check_minimal = false;
            true
        }
        "--max-diags" => {
            config.max_diagnostics_per_code = val().parse().unwrap_or_else(|_| {
                bad = true;
                0
            });
            true
        }
        _ => false,
    });
    if bad || cli.topo.is_none() || routes_path.is_empty() {
        eprintln!("vet: bad or missing arguments (need --topo and --routes; see --help)");
        return ExitCode::from(2);
    }

    let net = match cli.network() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let routes = match std::fs::read_to_string(&routes_path)
        .map_err(|e| format!("cannot read {routes_path}: {e}"))
        .and_then(|json| format::routes_from_json(&json).map_err(|e| e.to_string()))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = vet::analyze_with(&net, &routes, &config);
    if cli.json {
        match report.to_json() {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", report.render_human());
    }
    let clean = report.clean();
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
