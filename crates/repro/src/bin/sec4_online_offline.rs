//! Sec IV: online vs offline DFSSSP layer-assignment runtime (the paper:
//! ~170 s offline vs ~2 h online at 4096 nodes; we sweep smaller sizes).

use dfsssp_core::{DfSssp, LayerAssignMode};
use std::time::Instant;

fn main() {
    let cli = repro::Cli::parse("sec4_online_offline");
    let rec = cli.recorder();
    println!("Sec IV: online vs offline DFSSSP runtime (seconds)\n");
    let cap = repro::max_endpoints();
    let mut rows = Vec::new();
    for (n, net) in [
        (64, fabric::topo::torus(&[4, 4], 4)),
        (128, fabric::topo::torus(&[4, 8], 4)),
        (256, fabric::topo::torus(&[8, 8], 4)),
        (512, fabric::topo::torus(&[8, 16], 4)),
    ] {
        if n > cap {
            continue;
        }
        let mut row = vec![n.to_string(), net.label().to_string()];
        for mode in [LayerAssignMode::Offline, LayerAssignMode::Online] {
            let engine = DfSssp {
                mode,
                max_layers: 16, // the IB spec limit, so both modes fit
                recorder: rec.clone(),
                ..DfSssp::new()
            };
            let t = Instant::now();
            let res = engine.route_with_stats(&net);
            let dt = t.elapsed().as_secs_f64();
            row.push(match res {
                Ok((_, stats)) => format!("{dt:.3} ({} VLs)", stats.layers_used),
                Err(e) => repro::failure_label(&e),
            });
        }
        rows.push(row);
        eprintln!("  done: {n}");
    }
    cli.table(&["endpoints", "topology", "offline", "online"], &rows);
    cli.finish().expect("write metrics");
}
