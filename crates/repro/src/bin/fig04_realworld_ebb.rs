//! Fig 4: effective bisection bandwidth of all routing engines on the
//! six real-world system reconstructions ("n/a" = the engine fails on
//! the topology — the paper's missing bars).

use fabric::topo::realworld::RealSystem;

fn main() {
    let cli = repro::Cli::parse("fig04_realworld_ebb");
    let rec = cli.recorder();
    let scale = repro::scale();
    println!(
        "Figure 4: eBB on real-world reconstructions (scale={scale}, {} patterns)\n",
        repro::patterns()
    );
    let engines = cli.engines();
    let mut headers = vec!["system", "endpoints"];
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for sys in RealSystem::ALL {
        let net = sys.build(scale);
        let mut row = vec![sys.name().to_string(), net.num_terminals().to_string()];
        for engine in &engines {
            row.push(repro::ebb_cell_recorded(engine.as_ref(), &net, &*rec));
        }
        rows.push(row);
        eprintln!("  done: {}", sys.name());
    }
    cli.table(&headers, &rows);
    cli.finish().expect("write metrics");
}
