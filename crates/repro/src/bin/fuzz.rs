//! `fuzz` — deterministic structure-aware fuzzing of every parser and
//! the budgeted routing path behind them.
//!
//! Replays `<corpus>/regressions/` first (past crashers must stay
//! fixed), then mutates the committed corpus for `--iters` rounds.
//! Exits non-zero if any input panics; panicking inputs are saved to
//! `--crashers` for triage and for promotion into the regression set.
//!
//! ```text
//! fuzz [--corpus tests/corpus] [--iters 10000] [--seed N]
//!      [--crashers fuzz-crashers] [--parse-only]
//! ```

use repro::fuzz::{self, FuzzConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut corpus = PathBuf::from("tests/corpus");
    let mut cfg = FuzzConfig {
        crashers_dir: Some(PathBuf::from("fuzz-crashers")),
        ..FuzzConfig::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("fuzz: missing value for flag");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--corpus" => corpus = PathBuf::from(val()),
            "--iters" => {
                cfg.iters = match val().parse() {
                    Ok(n) => n,
                    Err(_) => return usage(),
                }
            }
            "--seed" => {
                cfg.seed = match val().parse() {
                    Ok(n) => n,
                    Err(_) => return usage(),
                }
            }
            "--crashers" => cfg.crashers_dir = Some(PathBuf::from(val())),
            "--parse-only" => cfg.route_budget = None,
            _ => return usage(),
        }
    }

    let seeds = match fuzz::load_corpus(&corpus) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Panics are expected to be *caught*; silence the default hook so a
    // campaign's output is the report, not backtrace noise.
    std::panic::set_hook(Box::new(|_| {}));

    let mut failed = false;
    let regressions = corpus.join("regressions");
    if regressions.is_dir() {
        match fuzz::replay(&regressions, &cfg) {
            Ok(report) => {
                println!("regressions: {}", report.summary());
                failed |= report.panics > 0;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = fuzz::run(&seeds, &cfg);
    println!(
        "fuzz (seed {:#x}, {} corpus seeds): {}",
        cfg.seed,
        seeds.len(),
        report.summary()
    );
    for c in &report.crashers {
        eprintln!("crasher saved: {}", c.display());
    }
    failed |= report.panics > 0;
    if failed {
        eprintln!("FUZZ FAILED: panics detected");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fuzz [--corpus <dir>] [--iters <N>] [--seed <N>] \
         [--crashers <dir>] [--parse-only]"
    );
    ExitCode::from(2)
}
