//! Figs 14-16: NAS BT / SP / FT scaling on the Deimos reconstruction,
//! MinHop vs DFSSSP (total Gflop/s of the model).

use appsim::{Allocation, NasBenchmark};
use baselines::MinHop;
use dfsssp_core::{DfSssp, RoutingEngine};
use fabric::topo::realworld::RealSystem;

fn main() {
    let mut cli = repro::Cli::parse("fig14_16_nas");
    let cx = cli.ctx();
    let scale = repro::scale();
    let net = RealSystem::Deimos.build(scale);
    cli.note_topology(&net);
    let nt = net.num_terminals();
    println!("Figures 14-16: NAS models on Deimos (scale={scale}, Gflop/s total)\n");
    let minhop = MinHop::new().route_in(&net, &cx).unwrap();
    let dfsssp = DfSssp::new().route_in(&net, &cx).unwrap();
    for bench in [NasBenchmark::BT, NasBenchmark::SP, NasBenchmark::FT] {
        println!("{}:", bench.name());
        let mut rows = Vec::new();
        // BT/SP need square rank counts; FT takes powers of two. Pick
        // the largest four that fit the reconstruction.
        let grid_counts: Vec<usize> = if bench == NasBenchmark::FT {
            (4..)
                .map(|k| 1usize << k)
                .take_while(|&c| c <= nt)
                .collect()
        } else {
            (4..).map(|k| k * k).take_while(|&c| c <= nt).collect()
        };
        let tail = grid_counts.len().saturating_sub(4);
        for &cores in &grid_counts[tail..] {
            let a = bench.run(&net, &minhop, cores, Allocation::Spread).unwrap();
            let b = bench.run(&net, &dfsssp, cores, Allocation::Spread).unwrap();
            rows.push(vec![
                cores.to_string(),
                format!("{:.2}", a.gflops_total),
                format!("{:.2}", b.gflops_total),
                format!("{:+.1}%", (b.gflops_total / a.gflops_total - 1.0) * 100.0),
                format!("{:.0}%", b.comm_fraction * 100.0),
            ]);
        }
        cli.table(
            &["cores", "MinHop", "DFSSSP", "improvement", "comm(DFSSSP)"],
            &rows,
        );
        println!();
    }
    cli.finish().expect("write metrics");
}
