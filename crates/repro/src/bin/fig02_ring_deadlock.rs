//! Fig 2: the 5-node ring whose clockwise 2-hop pattern deadlocks under
//! SSSP routing, demonstrated with the buffer-level simulator, and the
//! same workload completing under DFSSSP.

use dfsssp_core::{DfSssp, EngineConfig, RoutingEngine, Sssp};
use flitsim::{simulate_recorded, SimConfig, Workload};

fn main() {
    let mut cli = repro::Cli::parse("fig02_ring_deadlock");
    let cx = cli.ctx();
    let rec = cli.recorder();
    let net = fabric::topo::ring(5, 1);
    cli.note_topology(&net);
    let workload = Workload::shift(5, 2, 8);
    let config = SimConfig {
        buffer_capacity: 1,
        max_cycles: 100_000,
        ..SimConfig::default()
    };
    println!("Figure 2: ring(5), every node sends 8 packets 2 hops clockwise");
    println!("buffers: 1 packet per (channel, VL)\n");
    for engine in [
        Box::new(Sssp::new()) as Box<dyn RoutingEngine>,
        Box::new(DfSssp::new().with_config(EngineConfig::new().recorder(rec.clone()))),
    ] {
        let routes = engine.route_in(&net, &cx).expect("ring routes");
        let report = dfsssp_core::verify::deadlock_report(&net, &routes).unwrap();
        let outcome = simulate_recorded(&net, &routes, &workload, &config, &*rec);
        println!(
            "{:<8} layers={} cdg-cyclic={:<5} outcome={:?}",
            engine.name(),
            routes.num_layers(),
            !report.is_deadlock_free(),
            outcome
        );
        for (layer, cycle) in &report.cycles {
            let chain: Vec<String> = cycle
                .iter()
                .map(|&c| {
                    let ch = net.channel(c);
                    format!("{:?}->{:?}", ch.src, ch.dst)
                })
                .collect();
            println!("         layer {layer} witness cycle: {}", chain.join(" "));
        }
    }
    cli.finish().expect("write metrics");
}
