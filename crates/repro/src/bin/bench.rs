//! `bench` — the fixed topology × engine benchmark sweep, written as a
//! versioned `dfsssp-bench/v1` report (CI's bench-smoke artifact).
//!
//! ```text
//! bench [--quick] [--out BENCH_pr3.json] [--seed 7]
//! bench --validate BENCH_pr3.json     # parse + schema check only
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_pr3.json".to_string();
    let mut validate: Option<String> = None;
    let mut cli = repro::Cli::parse_with(
        "bench",
        " [--quick] [--out <file>] [--validate <file>]",
        |flag, val| match flag {
            "--quick" => {
                quick = true;
                true
            }
            "--out" => {
                out = val();
                true
            }
            "--validate" => {
                validate = Some(val());
                true
            }
            _ => false,
        },
    );

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match repro::bench::BenchReport::from_json(&text) {
            Ok(report) => {
                println!(
                    "{path}: valid {} report, {} cases",
                    report.schema,
                    report.cases.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let seed = cli.seed.unwrap_or(7);
    cli.seed = Some(seed);
    let report = repro::bench::run(quick, seed);
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let failures: Vec<&repro::bench::BenchCase> = report.cases.iter().filter(|c| !c.ok).collect();
    println!(
        "bench: {} cases ({} failed) -> {out}",
        report.cases.len(),
        failures.len()
    );
    for f in &failures {
        println!(
            "  FAIL {} on {}: {}",
            f.engine,
            f.topology,
            f.error.as_deref().unwrap_or("?")
        );
    }
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
