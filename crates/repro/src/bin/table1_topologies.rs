//! Table I: the topology sweeps (endpoints, switches, cables) used by
//! Figures 5-7, with this reproduction's parameter choices.

use fabric::TopologyStats;

fn main() {
    let cli = repro::Cli::parse("table1_topologies");
    println!(
        "Table I: topology parameters (REPRO_MAX_ENDPOINTS={})\n",
        repro::max_endpoints()
    );
    let mut rows = Vec::new();
    let series = repro::xgft_series()
        .into_iter()
        .chain(repro::kautz_series())
        .chain(repro::tree_series());
    for (n, net) in series {
        let st = TopologyStats::of(&net);
        rows.push(vec![
            n.to_string(),
            net.label().to_string(),
            st.switches.to_string(),
            st.cables.to_string(),
            st.interswitch_cables.to_string(),
            format!("{}..{}", st.switch_degree.0, st.switch_degree.1),
            st.diameter.map_or("-".into(), |d| d.to_string()),
        ]);
    }
    cli.table(
        &[
            "endpoints",
            "topology",
            "switches",
            "cables",
            "sw-sw cables",
            "sw degree",
            "diameter",
        ],
        &rows,
    );
    cli.finish().expect("write metrics");
}
