//! Fig 8: routing runtime on the real-world reconstructions.

use fabric::topo::realworld::RealSystem;
use std::time::Instant;

fn main() {
    let cli = repro::Cli::parse("fig08_runtime_realworld");
    let cx = cli.ctx();
    let scale = repro::scale();
    println!("Figure 8: routing runtime on real systems (seconds, scale={scale})\n");
    let engines = cli.engines();
    let mut headers = vec!["system", "endpoints"];
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for sys in RealSystem::ALL {
        let net = sys.build(scale);
        let mut row = vec![sys.name().to_string(), net.num_terminals().to_string()];
        for engine in &engines {
            let t = Instant::now();
            let res = engine.route_in(&net, &cx);
            let dt = t.elapsed().as_secs_f64();
            row.push(match res {
                Ok(_) => format!("{dt:.3}"),
                Err(e) => repro::failure_label(&e),
            });
        }
        rows.push(row);
        eprintln!("  done: {}", sys.name());
    }
    cli.table(&headers, &rows);
    cli.finish().expect("write metrics");
}
