//! The fixed benchmark sweep behind the `bench` binary and CI's
//! bench-smoke job: a small topology × engine matrix, each cell measured
//! through its own [`Collector`] into a full [`RunManifest`], the whole
//! thing serialized as a versioned `dfsssp-bench/v1` report
//! (`BENCH_pr3.json` in CI).

use baselines::{Lash, MinHop};
use dfsssp_core::{DfSssp, EngineConfig, Recorded, RoutingEngine, Sssp};
use fabric::{topo, Network};
use std::fmt::Write as _;
use std::sync::Arc;
use telemetry::json::{self, Value};
use telemetry::{Collector, RecorderHandle, RunManifest, TopologySummary};

/// Bench report schema identifier; bump only on breaking shape changes.
pub const SCHEMA: &str = "dfsssp-bench/v1";

/// One measured (topology, engine) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCase {
    /// Topology label.
    pub topology: String,
    /// Terminal count of the topology.
    pub terminals: usize,
    /// Engine name as reported by the engine.
    pub engine: String,
    /// Whether routing succeeded.
    pub ok: bool,
    /// The failure, when `!ok`.
    pub error: Option<String>,
    /// Everything the cell's collector measured.
    pub manifest: RunManifest,
}

/// The whole sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA`] for reports this module writes.
    pub schema: String,
    /// Whether the reduced CI sweep ran.
    pub quick: bool,
    /// Seed for the randomized topology point.
    pub seed: u64,
    /// One entry per (topology, engine), in sweep order.
    pub cases: Vec<BenchCase>,
}

fn topologies(quick: bool, seed: u64) -> Vec<Network> {
    let mut nets = vec![
        topo::ring(8, 1),
        topo::kary_ntree(4, 2),
        topo::torus(&[4, 4], 1),
    ];
    if !quick {
        nets.push(topo::kautz(2, 2, 64, true));
        nets.push(topo::xgft(2, &[8, 8], &[4, 4]));
        nets.push(topo::random_topology(
            &topo::RandomTopoSpec::fig9(150),
            seed,
        ));
    }
    nets
}

fn engines(rec: &RecorderHandle) -> Vec<Box<dyn RoutingEngine>> {
    let config = || EngineConfig::new().recorder(rec.clone());
    vec![
        Box::new(MinHop::new()),
        Box::new(Sssp::new()),
        Box::new(Lash::new().with_config(config())),
        Box::new(DfSssp::new().with_config(config())),
    ]
}

fn measure(net: &Network, seed: u64) -> Vec<BenchCase> {
    let summary = TopologySummary {
        label: net.label().to_string(),
        nodes: net.num_nodes(),
        switches: net.num_switches(),
        terminals: net.num_terminals(),
        channels: net.num_channels(),
    };
    let collector = Arc::new(Collector::new());
    let rec: RecorderHandle = collector.clone();
    engines(&rec)
        .into_iter()
        .map(|engine| {
            collector.reset();
            let recorded = Recorded::new(engine, rec.clone());
            let result = recorded.route_in(net, &recorded.config().compute.resolve());
            let manifest = RunManifest::new("bench")
                .topology(summary.clone())
                .engine(recorded.name())
                .seed(seed)
                .metrics(collector.snapshot());
            BenchCase {
                topology: summary.label.clone(),
                terminals: summary.terminals,
                engine: recorded.name().to_string(),
                ok: result.is_ok(),
                error: result.err().map(|e| e.to_string()),
                manifest,
            }
        })
        .collect()
}

/// Run the sweep: every engine in the lineup against every topology
/// (three small fabrics under `quick`, six otherwise). Topologies are
/// measured on worker threads — each cell has its own collector, and
/// [`serve::pool::scoped_map`] preserves sweep order, so the report is
/// identical to the sequential one modulo the timings it measures.
pub fn run(quick: bool, seed: u64) -> BenchReport {
    let cases = serve::pool::scoped_map(
        topologies(quick, seed),
        serve::pool::default_workers(),
        |net| measure(&net, seed),
    )
    .into_iter()
    .flatten()
    .collect();
    BenchReport {
        schema: SCHEMA.to_string(),
        quick,
        seed,
        cases,
    }
}

impl BenchReport {
    /// Serialize (pretty, trailing newline — artifact-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": ");
        json::write_str(&mut s, &self.schema);
        let _ = write!(
            s,
            ",\n  \"quick\": {},\n  \"seed\": {}",
            self.quick, self.seed
        );
        s.push_str(",\n  \"cases\": [");
        for (i, case) in self.cases.iter().enumerate() {
            s.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            s.push_str("\n      \"topology\": ");
            json::write_str(&mut s, &case.topology);
            let _ = write!(s, ",\n      \"terminals\": {}", case.terminals);
            s.push_str(",\n      \"engine\": ");
            json::write_str(&mut s, &case.engine);
            let _ = write!(s, ",\n      \"ok\": {}", case.ok);
            s.push_str(",\n      \"error\": ");
            match &case.error {
                None => s.push_str("null"),
                Some(e) => json::write_str(&mut s, e),
            }
            s.push_str(",\n      \"manifest\": ");
            s.push_str(indent(case.manifest.to_json().trim_end(), 6).trim_start());
            s.push_str("\n    }");
        }
        s.push_str(if self.cases.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        s
    }

    /// Parse a report back, verifying the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("bench: missing schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file says {schema:?}, this build expects {SCHEMA:?}"
            ));
        }
        let quick = v
            .get("quick")
            .and_then(Value::as_bool)
            .ok_or("bench: missing quick")?;
        let seed = v
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("bench: missing seed")?;
        let mut cases = Vec::new();
        for (i, case) in v
            .get("cases")
            .and_then(Value::as_arr)
            .ok_or("bench: missing cases")?
            .iter()
            .enumerate()
        {
            let field = |name: &str| {
                case.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("bench: bad cases[{i}].{name}"))
            };
            cases.push(BenchCase {
                topology: field("topology")?,
                terminals: case
                    .get("terminals")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("bench: bad cases[{i}].terminals"))?
                    as usize,
                engine: field("engine")?,
                ok: case
                    .get("ok")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| format!("bench: bad cases[{i}].ok"))?,
                error: match case.get("error") {
                    None | Some(Value::Null) => None,
                    Some(e) => Some(
                        e.as_str()
                            .ok_or_else(|| format!("bench: bad cases[{i}].error"))?
                            .to_string(),
                    ),
                },
                manifest: RunManifest::from_value(
                    case.get("manifest")
                        .ok_or_else(|| format!("bench: missing cases[{i}].manifest"))?,
                )
                .map_err(|e| format!("cases[{i}]: {e}"))?,
            });
        }
        Ok(BenchReport {
            schema: schema.to_string(),
            quick,
            seed,
            cases,
        })
    }
}

/// Re-indent a pretty-printed JSON block by `pad` extra spaces.
fn indent(text: &str, pad: usize) -> String {
    let prefix = " ".repeat(pad);
    let mut out = String::with_capacity(text.len() + 64);
    for (i, line) in text.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&prefix);
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_round_trips() {
        let report = run(true, 7);
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.cases.len(), 3 * 4);
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn dfsssp_cells_carry_phase_timings() {
        let report = run(true, 7);
        let df = report
            .cases
            .iter()
            .find(|c| c.engine == "DFSSSP" && c.ok)
            .expect("a successful DFSSSP cell");
        for phase in [
            "sssp",
            "cdg_build",
            "cycle_search",
            "layer_assign",
            "balance",
        ] {
            assert!(
                df.manifest.metrics.phases.contains_key(phase),
                "missing phase {phase}"
            );
        }
        assert!(df.manifest.metrics.histograms.contains_key("path_length"));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut report = run(true, 7);
        report.schema = "dfsssp-bench/v0".into();
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }
}
