//! The shared command-line surface of the reproduction binaries.
//!
//! Every binary under `src/bin/` parses the same common flags through
//! [`Cli::parse`] (or [`Cli::parse_with`] for binary-specific extras),
//! so `--topo`, `--gen`, `--format`, `--engine`, `--seed`, `--json` and
//! `--metrics` spell and behave identically everywhere:
//!
//! * `--topo <file> [--format text|ibnetdiscover|json]` / `--gen
//!   torus:<X>x<Y>|kary:<k>,<n>|ring:<N>` — the input fabric, consumed
//!   by binaries that route one topology ([`Cli::network`]). Binaries
//!   that sweep their own topology series (the figure repros) accept
//!   but do not consume these.
//! * `--engine <name>` — engine selection ([`Cli::engine`] /
//!   [`Cli::engine_with`]).
//! * `--seed <N>` — RNG seed; recorded in the manifest.
//! * `--json` — machine-readable stdout where the binary supports it
//!   ([`Cli::table`] switches the shared table printer to JSON rows).
//! * `--metrics <out.json>` — attach an in-memory [`Collector`] to
//!   everything this CLI constructs and, at [`Cli::finish`], write a
//!   versioned [`RunManifest`] (`dfsssp-metrics/v1`) including the
//!   whole-binary `total` phase.

use baselines::{Dor, FatTree, Lash, MinHop, UpDown};
use dfsssp_core::{ComputeCtx, ComputeOpts, DfSssp, EngineConfig, Recorded, RoutingEngine, Sssp};
use fabric::{format, topo, Network};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{Collector, Recorder, RecorderHandle, RunManifest, TopologySummary};

/// Parsed common flags plus the telemetry session of one binary run.
#[derive(Debug)]
pub struct Cli {
    /// `--topo <file>`: topology file to load.
    pub topo: Option<String>,
    /// `--gen <spec>`: synthesize a topology instead of loading one.
    pub gen: Option<String>,
    /// `--format text|ibnetdiscover|json` for `--topo` (default `text`).
    pub format: String,
    /// `--engine <name>`, lower-cased (default `dfsssp`).
    pub engine: String,
    /// `--seed <N>`, when given.
    pub seed: Option<u64>,
    /// `--json`: machine-readable stdout.
    pub json: bool,
    /// `--metrics <out.json>`: manifest destination, when given.
    pub metrics: Option<String>,
    /// `--threads <N>`: route-compute workers (`0` = one per core;
    /// default `1`, the sequential algorithm).
    pub threads: usize,
    /// `--chunk <N>`: balanced-sweep wavefront width (`0` = auto).
    /// Routes depend on this value, never on `--threads`.
    pub chunk: usize,
    binary: &'static str,
    start: Instant,
    collector: Option<Arc<Collector>>,
    topology: Option<TopologySummary>,
    engine_name: Option<String>,
}

fn usage(binary: &str, extra: &str) -> ! {
    eprintln!(
        "usage: {binary} [--topo <file> [--format text|ibnetdiscover|json] | \
         --gen torus:<X>x<Y>|kary:<k>,<n>|ring:<N>] \
         [--engine minhop|updown|dor|lash|fattree|sssp|dfsssp] \
         [--seed <N>] [--json] [--metrics <out.json>] \
         [--threads <N>] [--chunk <N>]{extra}"
    );
    std::process::exit(2);
}

impl Cli {
    /// Parse the common flags only; any other flag is a usage error.
    pub fn parse(binary: &'static str) -> Cli {
        Self::parse_with(binary, "", |_, _| false)
    }

    /// Parse the common flags, deferring unknown flags to `extra`: it
    /// gets the flag and a value puller, and returns whether it consumed
    /// the flag (false exits with usage, including `extra_usage`).
    pub fn parse_with(
        binary: &'static str,
        extra_usage: &str,
        mut extra: impl FnMut(&str, &mut dyn FnMut() -> String) -> bool,
    ) -> Cli {
        let mut cli = Cli {
            topo: None,
            gen: None,
            format: "text".into(),
            engine: "dfsssp".into(),
            seed: None,
            json: false,
            metrics: None,
            threads: 1,
            chunk: 0,
            binary,
            start: Instant::now(),
            collector: None,
            topology: None,
            engine_name: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_else(|| usage(binary, extra_usage));
            match flag.as_str() {
                "--topo" => cli.topo = Some(val()),
                "--gen" => cli.gen = Some(val()),
                "--format" => cli.format = val(),
                "--engine" => cli.engine = val().to_lowercase(),
                "--seed" => {
                    cli.seed = Some(val().parse().unwrap_or_else(|_| usage(binary, extra_usage)))
                }
                "--json" => cli.json = true,
                "--metrics" => cli.metrics = Some(val()),
                "--threads" => {
                    cli.threads = val().parse().unwrap_or_else(|_| usage(binary, extra_usage))
                }
                "--chunk" => {
                    cli.chunk = val().parse().unwrap_or_else(|_| usage(binary, extra_usage))
                }
                "--help" | "-h" => usage(binary, extra_usage),
                other => {
                    if !extra(other, &mut val) {
                        usage(binary, extra_usage);
                    }
                }
            }
        }
        if cli.metrics.is_some() {
            cli.collector = Some(Arc::new(Collector::new()));
        }
        cli
    }

    /// The `--threads`/`--chunk` request of this run.
    pub fn compute(&self) -> ComputeOpts {
        ComputeOpts::new().threads(self.threads).chunk(self.chunk)
    }

    /// The request resolved against this host ([`ComputeOpts::resolve`]).
    pub fn ctx(&self) -> ComputeCtx {
        self.compute().resolve()
    }

    /// The telemetry sink of this run: the `--metrics` collector, or the
    /// shared no-op when metrics are off.
    pub fn recorder(&self) -> RecorderHandle {
        match &self.collector {
            Some(c) => c.clone(),
            None => telemetry::noop(),
        }
    }

    /// Load (`--topo`) or synthesize (`--gen`) the input fabric,
    /// validate it, and remember its summary for the manifest.
    pub fn network(&mut self) -> Result<Network, String> {
        let net = match (&self.topo, &self.gen) {
            (Some(_), Some(_)) => return Err("--topo and --gen are mutually exclusive".into()),
            (None, None) => return Err("need --topo <file> or --gen <spec>".into()),
            (None, Some(g)) => generate(g)?,
            (Some(path), None) => {
                let input = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                match self.format.as_str() {
                    "text" => format::parse_network(&input).map_err(|e| e.to_string())?,
                    "ibnetdiscover" => {
                        format::parse_ibnetdiscover(&input).map_err(|e| e.to_string())?
                    }
                    "json" => format::network_from_json(&input).map_err(|e| e.to_string())?,
                    other => return Err(format!("unknown format {other}")),
                }
            }
        };
        net.validate()?;
        self.note_topology(&net);
        Ok(net)
    }

    /// Remember `net` as the run's topology (for binaries that build
    /// their fabric without [`Cli::network`]).
    pub fn note_topology(&mut self, net: &Network) {
        self.topology = Some(TopologySummary {
            label: net.label().to_string(),
            nodes: net.num_nodes(),
            switches: net.num_switches(),
            terminals: net.num_terminals(),
            channels: net.num_channels(),
        });
    }

    /// Construct the `--engine` selection with `config` applied (plus
    /// this run's recorder), wrapped in [`Recorded`] when metrics are
    /// on so every engine measures `route_total` identically.
    pub fn engine(&mut self, config: EngineConfig) -> Result<Box<dyn RoutingEngine>, String> {
        self.engine_with(config, |d| d)
    }

    /// [`Cli::engine`] with a DFSSSP customizer for knobs outside
    /// [`EngineConfig`] (cycle-break heuristic, compaction).
    pub fn engine_with(
        &mut self,
        config: EngineConfig,
        tune_dfsssp: impl FnOnce(DfSssp) -> DfSssp,
    ) -> Result<Box<dyn RoutingEngine>, String> {
        let config = config.recorder(self.recorder()).compute(self.compute());
        let engine: Box<dyn RoutingEngine> = match self.engine.as_str() {
            "minhop" => Box::new(MinHop::new()),
            "updown" => Box::new(UpDown::new()),
            "dor" => Box::new(Dor::new()),
            "lash" => Box::new(Lash::new().with_config(config)),
            "fattree" => Box::new(FatTree::new()),
            "sssp" => Box::new(Sssp::new()),
            "dfsssp" => Box::new(tune_dfsssp(DfSssp::new()).with_config(config)),
            other => return Err(format!("unknown engine {other}")),
        };
        self.engine_name = Some(engine.name().to_string());
        Ok(if self.collector.is_some() {
            Box::new(Recorded::new(engine, self.recorder()))
        } else {
            engine
        })
    }

    /// The Fig 4/8 engine lineup with this run's recorder attached to
    /// every configurable engine.
    pub fn engines(&self) -> Vec<Box<dyn RoutingEngine + Send + Sync>> {
        let mut lineup = crate::engines();
        for engine in &mut lineup {
            if engine.tunables() {
                let config = engine
                    .config()
                    .recorder(self.recorder())
                    .compute(self.compute());
                engine.set_config(config);
            }
        }
        lineup
    }

    /// Print `rows` under `headers`: fixed-width text by default, one
    /// JSON object per row under `--json`.
    pub fn table(&self, headers: &[&str], rows: &[Vec<String>]) {
        if !self.json {
            crate::print_table(headers, rows);
            return;
        }
        let mut out = String::from("[");
        for (r, row) in rows.iter().enumerate() {
            out.push_str(if r == 0 { "\n  {" } else { ",\n  {" });
            for (i, (header, cell)) in headers.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                telemetry::json::write_str(&mut out, header);
                out.push_str(": ");
                telemetry::json::write_str(&mut out, cell);
            }
            out.push('}');
        }
        out.push_str(if rows.is_empty() { "]" } else { "\n]" });
        println!("{out}");
    }

    /// Close the run: record the whole-binary `total` phase and, when
    /// `--metrics` was given, write the [`RunManifest`].
    pub fn finish(self) -> Result<(), String> {
        let Some(path) = &self.metrics else {
            return Ok(());
        };
        let collector = self
            .collector
            .as_ref()
            .expect("collector exists iff metrics");
        collector.phase(
            telemetry::phases::TOTAL,
            self.start.elapsed().as_nanos() as u64,
        );
        let mut manifest = RunManifest::new(self.binary).metrics(collector.snapshot());
        if let Some(t) = self.topology.clone() {
            manifest = manifest.topology(t);
        }
        if let Some(e) = self.engine_name.clone() {
            manifest = manifest.engine(e);
        }
        if let Some(s) = self.seed {
            manifest = manifest.seed(s);
        }
        manifest
            .write(path)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("metrics written to {path}");
        Ok(())
    }
}

/// Synthesize a topology from a `--gen` spec.
pub fn generate(spec: &str) -> Result<Network, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("malformed --gen {spec}"))?;
    match kind {
        "torus" => {
            let dims: Result<Vec<u16>, _> = rest.split('x').map(str::parse).collect();
            let dims = dims.map_err(|_| format!("bad torus extents {rest}"))?;
            Ok(topo::torus(&dims, 1))
        }
        "kary" => {
            let (k, n) = rest
                .split_once(',')
                .ok_or_else(|| format!("bad kary spec {rest}"))?;
            let k = k.parse().map_err(|_| format!("bad k {k}"))?;
            let n = n.parse().map_err(|_| format!("bad n {n}"))?;
            Ok(topo::kary_ntree(k, n))
        }
        "ring" => {
            let n = rest.parse().map_err(|_| format!("bad ring size {rest}"))?;
            Ok(topo::ring(n, 1))
        }
        other => Err(format!("unknown generator {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_parses_specs() {
        assert_eq!(generate("ring:5").unwrap().num_switches(), 5);
        assert_eq!(generate("torus:2x3").unwrap().num_switches(), 6);
        assert_eq!(generate("kary:2,2").unwrap().num_terminals(), 4);
        assert!(generate("blob:7").is_err());
        assert!(generate("ring").is_err());
    }
}
