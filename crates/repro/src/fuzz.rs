//! Structure-aware fuzzing of the parse → validate → route pipeline.
//!
//! Every artifact the toolchain reads from disk — text and
//! ibnetdiscover topologies, network and routes JSON — must either
//! parse or fail with a *typed* error; it must never panic, overflow
//! the stack, or hang. This module drives that contract: it mutates a
//! committed corpus with deterministic, format-shaped mutations (byte
//! edits, line surgery, token splices from a per-format dictionary,
//! digit blowups, chunk repetition) and feeds the result to the real
//! parsers under `catch_unwind`. Inputs that *do* parse are pushed one
//! stage further and routed under a tight [`Budget`], where the same
//! no-panic rule applies.
//!
//! The driver binary (`fuzz`) replays `tests/corpus/regressions/`
//! before fuzzing, so every crasher ever found stays fixed.

use dfsssp_core::{Budget, DfSssp, RouteError, RoutingEngine};
use fabric::format::{self, ParseError};
use fabric::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Which parser a corpus entry exercises, derived from its file name:
/// `.topo` → text, `.ibnd` → ibnetdiscover, `*routes*.json` → routes
/// JSON, other `.json` → network JSON.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// `fabric::format::parse_network`.
    Text,
    /// `fabric::format::parse_ibnetdiscover`.
    Ibnetdiscover,
    /// `fabric::format::network_from_json`.
    NetworkJson,
    /// `fabric::format::routes_from_json`.
    RoutesJson,
}

impl Kind {
    /// Classify a corpus file by name; `None` for files the pipeline
    /// does not read (READMEs and the like).
    pub fn of(path: &Path) -> Option<Kind> {
        let name = path.file_name()?.to_str()?;
        if name.ends_with(".topo") {
            Some(Kind::Text)
        } else if name.ends_with(".ibnd") {
            Some(Kind::Ibnetdiscover)
        } else if name.ends_with(".json") {
            if name.contains("routes") {
                Some(Kind::RoutesJson)
            } else {
                Some(Kind::NetworkJson)
            }
        } else {
            None
        }
    }

    /// File extension for crashers of this kind.
    fn ext(self) -> &'static str {
        match self {
            Kind::Text => "topo",
            Kind::Ibnetdiscover => "ibnd",
            Kind::NetworkJson | Kind::RoutesJson => "json",
        }
    }

    /// Splice dictionary: tokens of the grammar this kind parses, plus
    /// universal troublemakers.
    fn dictionary(self) -> &'static [&'static str] {
        match self {
            Kind::Text => &[
                "switch ",
                "terminal ",
                "link ",
                "label ",
                "ports=",
                "coord=",
                "level=",
                "switch s ports=0\n",
                "link a b\n",
                "ports=99999",
                "0",
                "-1",
                "999999999999999999999999",
            ],
            Kind::Ibnetdiscover => &[
                "Switch ",
                "Ca ",
                "[",
                "]",
                "\"",
                "[1] \"x\"[2]\n",
                "Switch 8 \"s\"\n",
                "[0]",
                "[65536]",
                "0",
                "-1",
                "999999999999999999999999",
            ],
            Kind::NetworkJson | Kind::RoutesJson => &[
                "{",
                "}",
                "[",
                "]",
                ":",
                ",",
                "null",
                "\"nodes\"",
                "\"cables\"",
                "\"next\"",
                "\"vl\"",
                "\"ports\":",
                "[[[[[[[[",
                "1e308",
                "-1",
                "18446744073709551616",
            ],
        }
    }
}

/// One corpus entry: the parser it targets and the seed bytes.
#[derive(Clone, Debug)]
pub struct Seed {
    /// Which parser the entry exercises.
    pub kind: Kind,
    /// Original file (for reporting).
    pub path: PathBuf,
    /// Seed content.
    pub data: Vec<u8>,
}

/// Load every recognized file under `dir` (non-recursive). The
/// `regressions/` subdirectory is *not* included — replay it separately
/// with [`replay`].
pub fn load_corpus(dir: &Path) -> Result<Vec<Seed>, String> {
    let mut seeds = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read corpus {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    for path in paths {
        if let Some(kind) = Kind::of(&path) {
            let data =
                std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            seeds.push(Seed { kind, path, data });
        }
    }
    if seeds.is_empty() {
        return Err(format!("no corpus files under {}", dir.display()));
    }
    Ok(seeds)
}

/// Fuzzing campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Mutated inputs to try.
    pub iters: usize,
    /// RNG seed: the same seed replays the same campaign exactly.
    pub seed: u64,
    /// Where to save panicking inputs (`None`: keep in memory only).
    pub crashers_dir: Option<PathBuf>,
    /// Route parse-successes with this budget (`None`: parse only).
    pub route_budget: Option<Budget>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 10_000,
            seed: 0xDF55_5EED,
            crashers_dir: None,
            route_budget: Some(
                Budget::new()
                    .deadline(Duration::from_millis(200))
                    .max_nodes(50_000),
            ),
        }
    }
}

/// What a campaign (or a replay) observed.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Inputs tried.
    pub iterations: usize,
    /// Inputs that parsed into a valid artifact.
    pub parse_ok: usize,
    /// Inputs rejected with a typed [`ParseError`].
    pub parse_err: usize,
    /// Parsed networks that also routed.
    pub route_ok: usize,
    /// Parsed networks rejected by the engine with a typed error.
    pub route_err: usize,
    /// Panics caught (each one is a bug).
    pub panics: usize,
    /// Crasher files written (when a crashers dir was configured).
    pub crashers: Vec<PathBuf>,
}

impl FuzzReport {
    /// One-line summary for the driver binary.
    pub fn summary(&self) -> String {
        format!(
            "{} inputs: {} parsed ({} routed, {} route-rejected), {} rejected, {} PANICS",
            self.iterations,
            self.parse_ok,
            self.route_ok,
            self.route_err,
            self.parse_err,
            self.panics
        )
    }
}

/// Run one deterministic campaign over `seeds`.
pub fn run(seeds: &[Seed], cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = FuzzReport::default();
    for iter in 0..cfg.iters {
        let seed = &seeds[rng.random_range(0..seeds.len())];
        let mutated = mutate(&mut rng, seed);
        let input = String::from_utf8_lossy(&mutated).into_owned();
        check_one(seed.kind, &input, cfg, &mut report, |r| {
            save_crasher(cfg, seed.kind, iter, &mutated, r)
        });
    }
    report.iterations = cfg.iters;
    report
}

/// Replay every recognized file under `dir` unmutated — the regression
/// corpus of past crashers. Panics count exactly like in [`run`].
pub fn replay(dir: &Path, cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    let seeds = load_corpus(dir)?;
    let mut report = FuzzReport::default();
    for seed in &seeds {
        let input = String::from_utf8_lossy(&seed.data).into_owned();
        check_one(seed.kind, &input, cfg, &mut report, |r| {
            r.crashers.push(seed.path.clone());
        });
    }
    report.iterations = seeds.len();
    Ok(report)
}

/// Feed one input through parse (and, within budget, route), counting
/// the outcome; `on_panic` records the crasher.
fn check_one(
    kind: Kind,
    input: &str,
    cfg: &FuzzConfig,
    report: &mut FuzzReport,
    on_panic: impl FnOnce(&mut FuzzReport),
) {
    match parse_contained(kind, input) {
        Outcome::Parsed(net) => {
            report.parse_ok += 1;
            if let (Some(budget), Some(net)) = (&cfg.route_budget, net) {
                match route_contained(&net, budget) {
                    Some(Ok(())) => report.route_ok += 1,
                    Some(Err(_)) => report.route_err += 1,
                    None => {
                        report.panics += 1;
                        on_panic(report);
                    }
                }
            }
        }
        Outcome::Rejected(_) => report.parse_err += 1,
        Outcome::Panicked => {
            report.panics += 1;
            on_panic(report);
        }
    }
}

enum Outcome {
    /// Parsed; networks are carried forward for the routing stage
    /// (routes artifacts parse standalone and stop here).
    Parsed(Option<Box<Network>>),
    /// Rejected with a typed error — the contract held.
    Rejected(#[allow(dead_code)] ParseError),
    Panicked,
}

fn parse_contained(kind: Kind, input: &str) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| match kind {
        Kind::Text => format::parse_network(input).map(|n| Some(Box::new(n))),
        Kind::Ibnetdiscover => format::parse_ibnetdiscover(input).map(|n| Some(Box::new(n))),
        Kind::NetworkJson => format::network_from_json(input).map(|n| Some(Box::new(n))),
        Kind::RoutesJson => format::routes_from_json(input).map(|_| None),
    }));
    match result {
        Ok(Ok(net)) => Outcome::Parsed(net),
        Ok(Err(e)) => Outcome::Rejected(e),
        Err(_) => Outcome::Panicked,
    }
}

/// Route a parsed (hence valid) network under `budget`; `None` = panic.
fn route_contained(net: &Network, budget: &Budget) -> Option<Result<(), RouteError>> {
    let engine = DfSssp {
        budget: budget.clone(),
        ..DfSssp::new()
    };
    catch_unwind(AssertUnwindSafe(|| {
        engine
            .route_in(net, &dfsssp_core::ComputeCtx::seq())
            .map(|_| ())
    }))
    .ok()
}

fn save_crasher(cfg: &FuzzConfig, kind: Kind, iter: usize, data: &[u8], report: &mut FuzzReport) {
    let Some(dir) = &cfg.crashers_dir else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("crasher-{:08x}-{iter}.{}", cfg.seed, kind.ext()));
    if std::fs::write(&path, data).is_ok() {
        report.crashers.push(path);
    }
}

/// Apply 1–4 random mutations to a seed.
pub fn mutate(rng: &mut StdRng, seed: &Seed) -> Vec<u8> {
    let mut data = seed.data.clone();
    for _ in 0..rng.random_range(1usize..=4) {
        data = mutate_once(rng, seed.kind, data);
        if data.len() > 1 << 20 {
            data.truncate(1 << 20);
        }
    }
    data
}

fn mutate_once(rng: &mut StdRng, kind: Kind, mut data: Vec<u8>) -> Vec<u8> {
    match rng.random_range(0u32..8) {
        // Flip one byte.
        0 if !data.is_empty() => {
            let i = rng.random_range(0..data.len());
            data[i] = rng.random_range(0u8..=255);
            data
        }
        // Insert one byte.
        1 => {
            let i = rng.random_range(0..=data.len());
            data.insert(i, rng.random_range(0u8..=255));
            data
        }
        // Delete one byte.
        2 if !data.is_empty() => {
            data.remove(rng.random_range(0..data.len()));
            data
        }
        // Truncate.
        3 if !data.is_empty() => {
            data.truncate(rng.random_range(0..data.len()));
            data
        }
        // Duplicate or delete a random line.
        4 => {
            let mut lines: Vec<&[u8]> = data.split(|&b| b == b'\n').collect();
            if lines.is_empty() {
                return data;
            }
            let i = rng.random_range(0..lines.len());
            if rng.random_bool(0.5) {
                let line = lines[i];
                lines.insert(i, line);
            } else {
                lines.remove(i);
            }
            lines.join(&b'\n')
        }
        // Splice a dictionary token at a random offset.
        5 => {
            let dict = kind.dictionary();
            let token = dict[rng.random_range(0..dict.len())].as_bytes();
            let i = rng.random_range(0..=data.len());
            data.splice(i..i, token.iter().copied());
            data
        }
        // Repeat a random chunk (amplifies nesting and list lengths).
        6 if !data.is_empty() => {
            let start = rng.random_range(0..data.len());
            let len = rng.random_range(1..=((data.len() - start).min(64)));
            let chunk: Vec<u8> = data[start..start + len].to_vec();
            let times = rng.random_range(2usize..=64);
            let at = start + len;
            data.splice(
                at..at,
                chunk.iter().copied().cycle().take(chunk.len() * times),
            );
            data
        }
        // Blow up a digit run into a huge number.
        7 => {
            if let Some(pos) = data.iter().position(|b| b.is_ascii_digit()) {
                let end = data[pos..]
                    .iter()
                    .position(|b| !b.is_ascii_digit())
                    .map_or(data.len(), |e| pos + e);
                let huge = b"99999999999999999999";
                data.splice(pos..end, huge.iter().copied());
            }
            data
        }
        _ => data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_seed() -> Seed {
        Seed {
            kind: Kind::Text,
            path: PathBuf::from("inline.topo"),
            data: b"label t\nswitch s0 ports=4\nswitch s1 ports=4\nlink s0 s1\n\
                    terminal t0\nterminal t1\nlink t0 s0\nlink t1 s1\n"
                .to_vec(),
        }
    }

    #[test]
    fn kinds_classify_by_name() {
        assert_eq!(Kind::of(Path::new("a/x.topo")), Some(Kind::Text));
        assert_eq!(Kind::of(Path::new("x.ibnd")), Some(Kind::Ibnetdiscover));
        assert_eq!(Kind::of(Path::new("net.json")), Some(Kind::NetworkJson));
        assert_eq!(
            Kind::of(Path::new("my-routes.json")),
            Some(Kind::RoutesJson)
        );
        assert_eq!(Kind::of(Path::new("README.md")), None);
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let seed = text_seed();
        let a: Vec<Vec<u8>> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| mutate(&mut rng, &seed)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| mutate(&mut rng, &seed)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn short_campaign_never_panics() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = run(
            &[text_seed()],
            &FuzzConfig {
                iters: 300,
                seed: 1,
                ..FuzzConfig::default()
            },
        );
        std::panic::set_hook(hook);
        assert_eq!(report.iterations, 300);
        assert_eq!(report.panics, 0, "{}", report.summary());
        assert_eq!(report.parse_ok + report.parse_err, 300);
    }
}
