//! The parallel route-compute benchmark behind the `route_par` binary
//! and CI's parallel-smoke job: per-topology route latency at 1, 2 and
//! 4 compute workers, with a bit-for-bit determinism check against the
//! single-worker run of every cell. Serialized as a versioned
//! `dfsssp-route-par/v1` report (`BENCH_pr8.json` in CI).
//!
//! Speedup is hardware-dependent, so the report records the host's core
//! count. On a multi-core host the chunked wavefront overlaps the SPT
//! builds of a chunk and the per-block layer-0 CDG construction across
//! workers; on a single core extra workers only add scheduling overhead
//! and the ratio hovers at (or below) 1x. What must hold *everywhere*
//! is determinism: at a fixed `--chunk`, routes from N workers are
//! identical to routes from one — `identical_to_seq` is a hard gate no
//! matter the host.

use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine, DEFAULT_PAR_CHUNK};
use fabric::Network;
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::json::{self, Value};

/// Route-par report schema; bump only on breaking shape changes.
pub const SCHEMA: &str = "dfsssp-route-par/v1";

/// One (topology, worker count) route measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParCell {
    /// Topology label.
    pub topo: String,
    /// Compute workers (`ComputeCtx::threads`).
    pub threads: usize,
    /// Wavefront width (`ComputeCtx::chunk`) — identical across the
    /// cells of one topology, because routes depend on it.
    pub chunk: usize,
    /// Best-of-k wall-clock for one full `route_in`, nanoseconds.
    pub route_ns: u64,
    /// `route_ns(threads=1) * 1000 / route_ns`, thousandths.
    pub speedup_milli: u64,
    /// Routes compared equal (`Routes: Eq`) to the single-worker run.
    pub identical_to_seq: bool,
}

/// The whole benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteParReport {
    /// Always [`SCHEMA`] for reports this module writes.
    pub schema: String,
    /// Whether the reduced CI sweep ran.
    pub quick: bool,
    /// Cores available on the measuring host (`available_parallelism`);
    /// the context every `speedup_milli` must be read in.
    pub host_cores: usize,
    /// Every (topology x worker-count) cell, topology-major, ascending
    /// worker counts within a topology (first is 1).
    pub cells: Vec<ParCell>,
}

/// The benchmark's topology suite. `quick` shrinks each entry so the
/// CI sweep finishes in seconds.
fn suite(quick: bool) -> Vec<Network> {
    use fabric::topo;
    if quick {
        vec![
            topo::torus(&[4, 4], 2),
            topo::kary_ntree(4, 2),
            topo::dragonfly(3, 1, 1),
        ]
    } else {
        vec![
            topo::torus(&[6, 6], 2),
            topo::kary_ntree(8, 2),
            topo::dragonfly(4, 2, 2),
        ]
    }
}

/// Best-of-`iters` wall-clock of one full route on `net` under `cx`.
fn time_route(engine: &DfSssp, net: &Network, cx: &ComputeCtx, iters: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        let routes = engine.route_in(net, cx).expect("suite topologies route");
        best = best.min(started.elapsed().as_nanos() as u64);
        std::hint::black_box(routes);
    }
    best
}

/// Run the benchmark: for each suite topology, route at 1, 2 and 4
/// workers under a fixed chunk and compare every run's routes against
/// the single-worker tables.
pub fn run(quick: bool) -> RouteParReport {
    let engine = DfSssp::new();
    let iters = if quick { 1 } else { 3 };
    let chunk = DEFAULT_PAR_CHUNK;
    let mut cells = Vec::new();
    for net in suite(quick) {
        let base_cx = ComputeCtx::new(1, chunk);
        let base_routes = engine
            .route_in(&net, &base_cx)
            .expect("suite topologies route");
        let base_ns = time_route(&engine, &net, &base_cx, iters);
        for threads in [1usize, 2, 4] {
            let cx = ComputeCtx::new(threads, chunk);
            let routes = engine.route_in(&net, &cx).expect("suite topologies route");
            let route_ns = if threads == 1 {
                base_ns
            } else {
                time_route(&engine, &net, &cx, iters)
            };
            cells.push(ParCell {
                topo: net.label().to_string(),
                threads,
                chunk,
                route_ns,
                speedup_milli: (base_ns * 1_000).checked_div(route_ns).unwrap_or(0),
                identical_to_seq: routes == base_routes,
            });
        }
    }
    RouteParReport {
        schema: SCHEMA.to_string(),
        quick,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells,
    }
}

impl RouteParReport {
    /// `true` iff every cell's routes matched the single-worker run —
    /// the hardware-independent gate.
    pub fn deterministic(&self) -> bool {
        self.cells.iter().all(|c| c.identical_to_seq)
    }

    /// The worst (smallest) speedup across topologies at `threads`
    /// workers, in thousandths; `None` when no such cell exists.
    pub fn min_speedup_milli(&self, threads: usize) -> Option<u64> {
        self.cells
            .iter()
            .filter(|c| c.threads == threads)
            .map(|c| c.speedup_milli)
            .min()
    }

    /// Serialize (pretty, trailing newline — artifact-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": ");
        json::write_str(&mut s, &self.schema);
        let _ = write!(
            s,
            ",\n  \"quick\": {},\n  \"host_cores\": {}",
            self.quick, self.host_cores
        );
        s.push_str(",\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            s.push_str("{\"topo\": ");
            json::write_str(&mut s, &c.topo);
            let _ = write!(
                s,
                ", \"threads\": {}, \"chunk\": {}, \"route_ns\": {}, \
                 \"speedup_milli\": {}, \"identical_to_seq\": {}}}",
                c.threads, c.chunk, c.route_ns, c.speedup_milli, c.identical_to_seq
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parse a report back, verifying the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("route-par: missing schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file says {schema:?}, this build expects {SCHEMA:?}"
            ));
        }
        let num = |obj: &Value, name: &str, at: &str| {
            obj.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("route-par: bad {at}{name}"))
        };
        let mut cells = Vec::new();
        for (i, c) in v
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or("route-par: missing cells")?
            .iter()
            .enumerate()
        {
            let at = format!("cells[{i}].");
            cells.push(ParCell {
                topo: c
                    .get("topo")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("route-par: bad {at}topo"))?
                    .to_string(),
                threads: num(c, "threads", &at)? as usize,
                chunk: num(c, "chunk", &at)? as usize,
                route_ns: num(c, "route_ns", &at)?,
                speedup_milli: num(c, "speedup_milli", &at)?,
                identical_to_seq: c
                    .get("identical_to_seq")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| format!("route-par: bad {at}identical_to_seq"))?,
            });
        }
        Ok(RouteParReport {
            schema: schema.to_string(),
            quick: v
                .get("quick")
                .and_then(Value::as_bool)
                .ok_or("route-par: missing quick")?,
            host_cores: num(&v, "host_cores", "")? as usize,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_round_trips_and_is_deterministic() {
        let report = run(true);
        assert!(
            report.deterministic(),
            "parallel routes diverged: {report:?}"
        );
        assert_eq!(report.cells.len(), 9, "3 topologies x 3 worker counts");
        assert!(report.cells.iter().all(|c| c.route_ns > 0));
        assert!(report.min_speedup_milli(1) >= Some(1_000));
        let back = RouteParReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = RouteParReport::from_json(r#"{"schema": "dfsssp-route-par/v0"}"#).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }
}
