//! The incremental-reroute benchmark behind the `reroute_bench` binary
//! and CI's reroute-smoke job: per-event epoch recompute latency of a
//! warm [`delta::DeltaEngine`] against a cold full sweep, with a
//! bit-for-bit identity gate on every cell. Serialized as a versioned
//! `dfsssp-reroute/v1` report (`BENCH_pr10.json` in CI).
//!
//! Each cell is one single-cable-failure event on one fabric. The
//! "full" column times what every epoch cost before the delta
//! subsystem: a cold `DfSssp` sweep of the degraded fabric at the
//! snapshot context. The "delta" column times the same call through a
//! `DeltaEngine` warmed on the pre-failure fabric, so only the dirtied
//! destination trees are re-swept and the layer-0 CDG is patched, not
//! rebuilt. The cache-warming route itself is never timed — in
//! production it is the previous epoch, amortized across the fabric's
//! lifetime.
//!
//! The speedup is topology-dependent: it tracks the *clean fraction* of
//! destination trees, so path-diverse fabrics (fat trees, flattened
//! butterflies) reroute 10x+ faster while a small ring re-sweeps almost
//! everything and hovers near 1x. What must hold everywhere is the
//! identity gate: every delta cell's routes equal the cold sweep's,
//! bit for bit — `identical_to_full` is hard no matter the host or
//! fabric.

use delta::{DeltaConfig, DeltaEngine};
use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
use fabric::{degrade, Network};
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::json::{self, Value};

/// Reroute report schema; bump only on breaking shape changes.
pub const SCHEMA: &str = "dfsssp-reroute/v1";

/// One (fabric, failure event) reroute measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RerouteCell {
    /// Topology label.
    pub topo: String,
    /// Event label (`cable#<k>`, the k-th seeded single-cable failure).
    pub event: String,
    /// Terminals in the fabric (the delta path's O(fabric) axis).
    pub terminals: usize,
    /// Best-of-k cold full-sweep wall clock for the degraded fabric,
    /// nanoseconds.
    pub full_ns: u64,
    /// Best-of-k warm delta reroute wall clock, nanoseconds.
    pub delta_ns: u64,
    /// `full_ns * 1000 / delta_ns`, thousandths.
    pub ratio_milli: u64,
    /// Destination trees the event dirtied (re-swept by the delta path).
    pub dirty_dests: u64,
    /// The engine declined the delta path and full-recomputed instead.
    pub fellback: bool,
    /// Delta routes compared equal (`Routes: Eq`) to the cold sweep.
    pub identical_to_full: bool,
}

/// The whole benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RerouteBenchReport {
    /// Always [`SCHEMA`] for reports this module writes.
    pub schema: String,
    /// Whether the reduced CI sweep ran (provided fabric only).
    pub quick: bool,
    /// Cores available on the measuring host (`available_parallelism`).
    pub host_cores: usize,
    /// Every (fabric x event) cell, fabric-major, events in seed order.
    pub cells: Vec<RerouteCell>,
}

/// The snapshot compute context the delta path requires: one chunk
/// spanning every terminal.
fn snap_cx(net: &Network) -> ComputeCtx {
    ComputeCtx {
        threads: 1,
        chunk: net.num_terminals().max(1),
    }
}

/// Path-diverse fabrics where single-cable failures dirty a small
/// fraction of the destination trees — the regime the subsystem is for.
fn scale_suite() -> Vec<Network> {
    use fabric::topo;
    vec![
        topo::fully_connected(96, 4),
        topo::kary_ntree(16, 2),
        topo::torus(&[8, 8], 2),
    ]
}

/// Best-of-`iters` cold full sweep of `net`.
fn time_full(net: &Network, cx: &ComputeCtx, iters: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters.max(1) {
        let engine = DfSssp::new();
        let started = Instant::now();
        let routes = engine.route_in(net, cx).expect("measured fabrics route");
        best = best.min(started.elapsed().as_nanos() as u64);
        std::hint::black_box(routes);
    }
    best
}

/// Measure every seeded single-cable event on one fabric.
fn measure_fabric(net: &Network, events: usize, iters: usize, seed: u64, cells: &mut Vec<RerouteCell>) {
    let cx = snap_cx(net);
    let base = DfSssp::new().route_in(net, &cx);
    if base.is_err() {
        return; // fabric doesn't route; nothing to measure
    }
    for k in 0..events {
        let (degraded, removed) = degrade::fail_random_cables(net, 1, seed.wrapping_mul(97).wrapping_add(k as u64));
        if removed == 0 {
            continue;
        }
        let dcx = snap_cx(&degraded);
        let full_engine = DfSssp::new();
        let Ok(full_routes) = full_engine.route_in(&degraded, &dcx) else {
            continue; // event disconnected the fabric; both paths refuse
        };
        let full_ns = time_full(&degraded, &dcx, iters);

        // Time the warm reroute: each iteration re-warms a fresh engine
        // on the pre-failure fabric (untimed), then times only the
        // degraded-epoch route. Reusing one warm engine would measure a
        // no-op second epoch instead of the event.
        let mut delta_ns = u64::MAX;
        let mut last = None;
        let mut routes_match = true;
        for _ in 0..iters.max(1) {
            let engine = DeltaEngine::with_delta_config(
                DfSssp::new(),
                DeltaConfig {
                    max_dirty_fraction: 1.0,
                },
            );
            engine
                .route_in(net, &cx)
                .expect("pre-failure fabric routed above");
            let started = Instant::now();
            let routes = engine
                .route_in(&degraded, &dcx)
                .expect("cold sweep of the same fabric succeeded above");
            delta_ns = delta_ns.min(started.elapsed().as_nanos() as u64);
            routes_match &= routes == full_routes;
            last = engine.last_outcome();
        }
        let outcome = last.expect("route_in records an outcome");
        cells.push(RerouteCell {
            topo: net.label().to_string(),
            event: format!("cable#{k}"),
            terminals: degraded.num_terminals(),
            full_ns,
            delta_ns,
            ratio_milli: (full_ns * 1_000).checked_div(delta_ns).unwrap_or(0),
            dirty_dests: outcome.dirty_dests.len() as u64,
            fellback: !outcome.delta,
            identical_to_full: routes_match,
        });
    }
}

/// Run the benchmark: seeded single-cable failures on the provided
/// fabric and — unless `quick` — on the built-in scale suite.
pub fn run(base: &Network, quick: bool, seed: u64) -> RerouteBenchReport {
    let (events, iters) = if quick { (2, 1) } else { (4, 3) };
    let mut cells = Vec::new();
    measure_fabric(base, events, iters, seed, &mut cells);
    if !quick {
        for net in scale_suite() {
            measure_fabric(&net, events, iters, seed, &mut cells);
        }
    }
    RerouteBenchReport {
        schema: SCHEMA.to_string(),
        quick,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells,
    }
}

impl RerouteBenchReport {
    /// `true` iff every cell's delta routes matched the cold sweep —
    /// the hardware-independent gate.
    pub fn identical(&self) -> bool {
        self.cells.iter().all(|c| c.identical_to_full)
    }

    /// The best reroute speedup across cells that actually took the
    /// delta path, in thousandths; `None` when every cell fell back.
    pub fn max_delta_ratio_milli(&self) -> Option<u64> {
        self.cells
            .iter()
            .filter(|c| !c.fellback)
            .map(|c| c.ratio_milli)
            .max()
    }

    /// Serialize (pretty, trailing newline — artifact-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": ");
        json::write_str(&mut s, &self.schema);
        let _ = write!(
            s,
            ",\n  \"quick\": {},\n  \"host_cores\": {}",
            self.quick, self.host_cores
        );
        s.push_str(",\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            s.push_str("{\"topo\": ");
            json::write_str(&mut s, &c.topo);
            s.push_str(", \"event\": ");
            json::write_str(&mut s, &c.event);
            let _ = write!(
                s,
                ", \"terminals\": {}, \"full_ns\": {}, \"delta_ns\": {}, \
                 \"ratio_milli\": {}, \"dirty_dests\": {}, \"fellback\": {}, \
                 \"identical_to_full\": {}}}",
                c.terminals,
                c.full_ns,
                c.delta_ns,
                c.ratio_milli,
                c.dirty_dests,
                c.fellback,
                c.identical_to_full
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parse a report back, verifying the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("reroute: missing schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file says {schema:?}, this build expects {SCHEMA:?}"
            ));
        }
        let num = |obj: &Value, name: &str, at: &str| {
            obj.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("reroute: bad {at}{name}"))
        };
        let flag = |obj: &Value, name: &str, at: &str| {
            obj.get(name)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("reroute: bad {at}{name}"))
        };
        let text_of = |obj: &Value, name: &str, at: &str| {
            obj.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("reroute: bad {at}{name}"))
        };
        let mut cells = Vec::new();
        for (i, c) in v
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or("reroute: missing cells")?
            .iter()
            .enumerate()
        {
            let at = format!("cells[{i}].");
            cells.push(RerouteCell {
                topo: text_of(c, "topo", &at)?,
                event: text_of(c, "event", &at)?,
                terminals: num(c, "terminals", &at)? as usize,
                full_ns: num(c, "full_ns", &at)?,
                delta_ns: num(c, "delta_ns", &at)?,
                ratio_milli: num(c, "ratio_milli", &at)?,
                dirty_dests: num(c, "dirty_dests", &at)?,
                fellback: flag(c, "fellback", &at)?,
                identical_to_full: flag(c, "identical_to_full", &at)?,
            });
        }
        Ok(RerouteBenchReport {
            schema: schema.to_string(),
            quick: v
                .get("quick")
                .and_then(Value::as_bool)
                .ok_or("reroute: missing quick")?,
            host_cores: num(&v, "host_cores", "")? as usize,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn quick_run_is_identical_and_round_trips() {
        let net = topo::torus(&[4, 4], 1);
        let report = run(&net, true, 7);
        assert!(!report.cells.is_empty());
        assert!(report.identical(), "delta diverged: {report:?}");
        assert!(report.cells.iter().all(|c| c.full_ns > 0 && c.delta_ns > 0));
        let back = RerouteBenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = RerouteBenchReport::from_json(r#"{"schema": "dfsssp-reroute/v0"}"#).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }
}
