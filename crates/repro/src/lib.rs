//! Shared plumbing for the reproduction binaries (one per paper table /
//! figure; see DESIGN.md §2 for the index).
//!
//! Environment knobs (all optional):
//!
//! * `REPRO_SCALE` — real-world topology scale factor in `(0, 1]`
//!   (default 0.5; `1.0` = published system sizes. Below ~0.4 the Deimos
//!   reconstruction has too much slack for congestion effects to show).
//! * `REPRO_PATTERNS` — random bisection patterns per eBB point
//!   (default 250; the paper's Netgauge runs used 1000).
//! * `REPRO_MAX_ENDPOINTS` — cap for the topology sweeps
//!   (default 1024; the paper sweeps to 4096).
//! * `REPRO_SEEDS` — seeds per random-topology point (default 20; the
//!   paper uses 100).

pub mod bench;
pub mod cli;
pub mod fuzz;
pub mod loadgen;
pub mod reroute_bench;
pub mod route_par;
pub mod serve_bench;

pub use cli::Cli;

use dfsssp_core::{RouteError, RoutingEngine};
use fabric::Network;
use telemetry::Recorder;

/// Real-world scale factor (`REPRO_SCALE`, default 0.5).
pub fn scale() -> f64 {
    env_f64("REPRO_SCALE", 0.5).clamp(0.01, 1.0)
}

/// Bisection patterns per eBB measurement (`REPRO_PATTERNS`, default 250).
pub fn patterns() -> usize {
    env_usize("REPRO_PATTERNS", 250)
}

/// Sweep cap in endpoints (`REPRO_MAX_ENDPOINTS`, default 1024).
pub fn max_endpoints() -> usize {
    env_usize("REPRO_MAX_ENDPOINTS", 1024)
}

/// Random-topology seeds per point (`REPRO_SEEDS`, default 20).
pub fn seeds() -> usize {
    env_usize("REPRO_SEEDS", 20)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The Fig 4/8 engine lineup.
pub fn engines() -> Vec<Box<dyn RoutingEngine + Send + Sync>> {
    baselines::all_engines()
}

/// The XGFT sweep (Fig 5): endpoint count and generator, 36-port
/// compatible. The OCR'd Table I parameters are internally inconsistent
/// with the stated endpoint counts (see EXPERIMENTS.md), so these hit
/// the stated counts with `w = m/2` tapering.
pub fn xgft_series() -> Vec<(usize, Network)> {
    let specs: [(usize, usize, Vec<usize>, Vec<usize>); 7] = [
        (64, 2, vec![8, 8], vec![4, 4]),
        (128, 2, vec![16, 8], vec![8, 4]),
        (256, 2, vec![16, 16], vec![8, 8]),
        (512, 3, vec![8, 8, 8], vec![4, 4, 4]),
        (1024, 3, vec![16, 8, 8], vec![8, 4, 4]),
        (2048, 3, vec![16, 16, 8], vec![8, 8, 4]),
        (4096, 3, vec![16, 16, 16], vec![8, 8, 8]),
    ];
    let cap = max_endpoints();
    specs
        .into_iter()
        .filter(|(n, ..)| *n <= cap)
        .map(|(n, h, m, w)| (n, fabric::topo::xgft(h, &m, &w)))
        .collect()
}

/// The Kautz sweep (Fig 6), parameters from Table I.
pub fn kautz_series() -> Vec<(usize, Network)> {
    let specs: [(usize, usize, usize); 7] = [
        (64, 2, 2),
        (128, 2, 2),
        (256, 2, 3),
        (512, 3, 3),
        (1024, 3, 3),
        (2048, 4, 3),
        (4096, 6, 3),
    ];
    let cap = max_endpoints();
    specs
        .into_iter()
        .filter(|(n, ..)| *n <= cap)
        .map(|(n, b, len)| (n, fabric::topo::kautz(b, len, n, true)))
        .collect()
}

/// The k-ary n-tree sweep (Fig 7), parameters from Table I; reported
/// size is the true endpoint count `k^n`.
pub fn tree_series() -> Vec<(usize, Network)> {
    let specs: [(usize, usize); 7] = [(6, 2), (10, 2), (16, 2), (6, 3), (10, 3), (14, 3), (18, 3)];
    let cap = max_endpoints();
    specs
        .into_iter()
        .map(|(k, n)| (k.pow(n as u32), fabric::topo::kary_ntree(k, n)))
        .filter(|(n, _)| *n <= cap)
        .collect()
}

/// Route `net` with `engine`, returning the eBB mean or a failure label
/// (the paper's "missing bar").
pub fn ebb_cell(engine: &dyn RoutingEngine, net: &Network) -> String {
    ebb_cell_recorded(engine, net, &telemetry::Noop)
}

/// [`ebb_cell`] with the eBB sweep reporting to `rec` (the engine's own
/// phases go to whatever recorder the engine carries).
pub fn ebb_cell_recorded(engine: &dyn RoutingEngine, net: &Network, rec: &dyn Recorder) -> String {
    match engine.route_in(net, &engine.config().compute.resolve()) {
        Err(e) => failure_label(&e),
        Ok(routes) => {
            let opts = orcs::EbbOptions {
                patterns: patterns(),
                ..Default::default()
            };
            match orcs::effective_bisection_bandwidth_recorded(net, &routes, &opts, rec) {
                Ok(s) => format!("{:.4}", s.mean),
                Err(_) => "walk-error".into(),
            }
        }
    }
}

/// Short label for a routing failure.
pub fn failure_label(e: &RouteError) -> String {
    match e {
        RouteError::Disconnected => "disconnected".into(),
        RouteError::NeedMoreLayers { .. } => "needs>8VL".into(),
        RouteError::UnsupportedTopology(_) => "n/a".into(),
        RouteError::BudgetExceeded { .. } => "budget".into(),
    }
}

/// Print a fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_respect_endpoint_counts() {
        for (n, net) in xgft_series() {
            assert_eq!(net.num_terminals(), n, "{}", net.label());
        }
        for (n, net) in kautz_series() {
            assert_eq!(net.num_terminals(), n, "{}", net.label());
        }
        for (n, net) in tree_series() {
            assert_eq!(net.num_terminals(), n, "{}", net.label());
        }
    }

    #[test]
    fn engine_lineup_matches_fig4() {
        let names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "MinHop",
                "Up*/Down*",
                "DOR",
                "LASH",
                "FatTree",
                "SSSP",
                "DFSSSP"
            ]
        );
    }

    #[test]
    fn failure_labels_are_short() {
        assert_eq!(failure_label(&RouteError::Disconnected), "disconnected");
        assert_eq!(
            failure_label(&RouteError::UnsupportedTopology("x".into())),
            "n/a"
        );
    }
}
