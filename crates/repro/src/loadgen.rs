//! The open-loop overload benchmark behind the `loadgen` binary and
//! CI's overload-smoke job: replay a timestamped [`appsim::traffic`]
//! trace at a multiple of the serving stack's measured capacity, judge
//! per-class SLOs from recorded latency histograms, and verify every
//! response was either an epoch-consistent answer or a typed shed.
//! Serialized as a versioned `dfsssp-loadgen/v1` report
//! (`BENCH_pr7.json` in CI).
//!
//! Unlike `serve_bench`, **qps here is offered, not achieved**: the
//! dispatchers submit at the trace's arrival times whether or not the
//! engine kept up, so the report separates `offered_qps` (the trace)
//! from `admitted_qps` (what got answered). The gap between them — the
//! typed rejections, the deadline expiries, the shed floor — *is* the
//! measurement.
//!
//! A chaos epoch is published mid-trace (a redundant cable down, later
//! back up), so the report also witnesses the tentpole interaction:
//! reroute storms during overload degrade answers, never availability.

use appsim::traffic::{self, Arrivals, Mix, Shape, TraceSpec, TrafficClass};
use dfsssp_core::{Budget, DfSssp, RouteError};
use fabric::{Network, NodeId};
use serve::{
    Admission, ClassPolicy, PathAnswer, PathQuery, QueryClass, QueryOpts, RouteServer, ServeError,
    ShedConfig, SloPolicy, SloVerdict, Snapshot, Ticket,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use subnet::FabricEvent;
use telemetry::json::{self, Value};
use telemetry::Collector;

/// Loadgen report schema; bump only on breaking shape changes.
pub const SCHEMA: &str = "dfsssp-loadgen/v1";

/// Interactive p99 objective the report gates on (submit→redeem).
pub const INTERACTIVE_P99: Duration = Duration::from_millis(250);
/// Bulk p99 objective (informational — bulk is the class being shed).
pub const BULK_P99: Duration = Duration::from_secs(2);

/// Per-class outcome of one loadgen run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Class name (`interactive` / `bulk`).
    pub class: String,
    /// Queries the trace offered for this class.
    pub offered: u64,
    /// Queries answered with a path.
    pub answered: u64,
    /// Typed `Overloaded` rejections (shed gate or queue cap).
    pub rejected: u64,
    /// Deadline expiries (`BudgetExceeded`), in queue or at redeem.
    pub expired: u64,
    /// Median submit-to-redeem latency, microseconds (0 if unanswered).
    pub p50_us: u64,
    /// 99th-percentile submit-to-redeem latency, microseconds.
    pub p99_us: u64,
    /// The SLO target judged, microseconds.
    pub slo_target_us: u64,
    /// Whether the class met its objective ([`SloVerdict::met`]).
    pub slo_met: bool,
}

/// The whole benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadgenReport {
    /// Always [`SCHEMA`] for reports this module writes.
    pub schema: String,
    /// Topology label the serving stack was brought up on.
    pub topology: String,
    /// Traffic mix name (`uniform` / `hotspot` / `flash` / `nas`).
    pub mix: String,
    /// Whether the reduced CI trace ran.
    pub quick: bool,
    /// Seed for the trace and the chaos schedule.
    pub seed: u64,
    /// Cores on the measuring host (`available_parallelism`).
    pub cores: usize,
    /// Closed-loop capacity measured before the trace, queries/s.
    pub capacity_qps: u64,
    /// Offered rate of the trace, queries/s.
    pub offered_qps: u64,
    /// Answered queries per second of trace time.
    pub admitted_qps: u64,
    /// Trace length, milliseconds.
    pub duration_ms: u64,
    /// Per-class outcomes, interactive first.
    pub classes: Vec<ClassReport>,
    /// Deepest admitted rate the shed controller reached, permille
    /// (the floor proof: must stay ≥ 1).
    pub min_admitted_permille: u32,
    /// Epochs published by the mid-trace chaos writer.
    pub chaos_epochs: u64,
    /// Responses that were neither a verified epoch-consistent answer
    /// nor a typed shed. The whole point of the bench: must be 0.
    pub malformed: u64,
}

impl LoadgenReport {
    /// The robustness acceptance gate (what CI enforces). `Err` lists
    /// every violated clause.
    pub fn gate(&self) -> Result<(), String> {
        let mut fails = Vec::new();
        if self.malformed > 0 {
            fails.push(format!("{} malformed/stale responses", self.malformed));
        }
        if self.min_admitted_permille == 0 {
            fails.push("shed rate reached 100% (floor broken)".into());
        }
        if self.chaos_epochs == 0 {
            fails.push("no chaos epoch published mid-trace".into());
        }
        let interactive = self.classes.iter().find(|c| c.class == "interactive");
        match interactive {
            Some(c) if !c.slo_met => fails.push(format!(
                "interactive SLO violated: p99 {}us > {}us",
                c.p99_us, c.slo_target_us
            )),
            Some(c) if c.answered == 0 => fails.push("no interactive query was answered".into()),
            None => fails.push("report has no interactive class".into()),
            _ => {}
        }
        if let Some(bulk) = self.classes.iter().find(|c| c.class == "bulk") {
            if bulk.answered == 0 {
                fails.push("overload starved bulk entirely".into());
            }
            if bulk.rejected + bulk.expired == 0 {
                fails.push("overload shed no bulk traffic (not overdriven?)".into());
            }
        } else {
            fails.push("report has no bulk class".into());
        }
        if fails.is_empty() {
            Ok(())
        } else {
            Err(fails.join("; "))
        }
    }
}

fn mix_for(name: &str, net: &Network) -> Mix {
    match name {
        "uniform" => Mix::Uniform,
        "hotspot" => Mix::Hotspot {
            hot_permille: 700,
            targets: 2.max(net.num_terminals() / 16),
        },
        "nas" => Mix::Nas {
            bench: appsim::NasBenchmark::FT,
            ranks: net.num_terminals(),
        },
        // Default: a flash crowd on a uniform mix — the overload shape
        // the shed controller exists for.
        _ => Mix::Uniform,
    }
}

fn shape_for(name: &str, duration_ms: u64) -> Shape {
    match name {
        "flash" => Shape::FlashCrowd {
            at_ms: duration_ms / 4,
            for_ms: duration_ms / 4,
            boost: 3,
        },
        "diurnal" => Shape::Diurnal {
            period_ms: duration_ms / 2,
        },
        _ => Shape::Flat,
    }
}

/// Measure closed-loop capacity: one client, no deadline, interactive.
fn calibrate(engine: &serve::QueryEngine, pairs: &[(NodeId, NodeId)]) -> u64 {
    let n = 1500u64;
    let started = Instant::now();
    for i in 0..n {
        let (src, dst) = pairs[i as usize % pairs.len()];
        engine
            .query(PathQuery::new(src, dst))
            .expect("calibration query on a healthy fabric");
    }
    (n as f64 / started.elapsed().as_secs_f64()) as u64
}

struct InFlight {
    ticket: Ticket,
    class: TrafficClass,
    src: NodeId,
    dst: NodeId,
}

#[derive(Default)]
struct ClassTally {
    offered: AtomicU64,
    answered: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
}

fn tally(t: &[ClassTally; 2], class: TrafficClass) -> &ClassTally {
    match class {
        TrafficClass::Interactive => &t[0],
        TrafficClass::Bulk => &t[1],
    }
}

/// Run the benchmark with explicit trace knobs (the public [`run`]
/// picks CI-appropriate ones). `rate_cap` bounds the offered rate so
/// tiny fast topologies don't explode the trace size.
pub(crate) fn run_inner(
    net: &Network,
    mix_name: &str,
    quick: bool,
    seed: u64,
    duration_ms: u64,
    rate_cap: f64,
) -> LoadgenReport {
    let collector = Arc::new(Collector::new());
    let mut server = RouteServer::bring_up_recorded(
        DfSssp::new(),
        net.clone(),
        net.terminals()[0],
        collector.clone(),
    )
    .expect("bring-up on the bench topology");
    let safe = crate::serve_bench::safe_cables(net);
    assert!(!safe.is_empty(), "bench topology needs redundant cables");
    let engine = server.query_engine(QueryOpts {
        workers: 2,
        batch: 32,
        admission: Admission {
            interactive: ClassPolicy {
                weight: 8,
                max_queued: 4096,
                ..ClassPolicy::default()
            },
            bulk: ClassPolicy {
                budget: Budget::new().deadline(Duration::from_millis(60)),
                weight: 1,
                max_queued: 512,
                sheddable: true,
            },
        },
        shed: ShedConfig::default(),
        recorder: collector.clone(),
    });
    let shed = engine.shed_controller();
    let store = server.store();

    // Closed-loop capacity, then the open-loop trace at 4x it.
    let ts = net.terminals();
    let cal_pairs: Vec<(NodeId, NodeId)> = (0..ts.len())
        .map(|i| (ts[i], ts[(i + 1) % ts.len()]))
        .filter(|(a, b)| a != b)
        .collect();
    let capacity_qps = calibrate(&engine, &cal_pairs).max(1);
    let spec = TraceSpec {
        rate_qps: (capacity_qps as f64 * 4.0).min(rate_cap),
        duration_ms,
        seed,
        bulk_permille: 850,
        mix: mix_for(mix_name, net),
        arrivals: Arrivals::Poisson,
        shape: shape_for(mix_name, duration_ms),
    };
    let trace = traffic::generate(net, &spec);
    assert!(!trace.is_empty(), "trace generated no queries");

    let tallies: [ClassTally; 2] = Default::default();
    let malformed = AtomicU64::new(0);
    let samples: Mutex<Vec<(NodeId, NodeId, PathAnswer)>> = Mutex::new(Vec::new());
    let history: Mutex<Vec<Arc<Snapshot>>> = Mutex::new(vec![store.read()]);
    let chaos_epochs = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<InFlight>();
    let rx = Mutex::new(rx);

    std::thread::scope(|s| {
        // Two waiters drain redeemed tickets; classification of every
        // outcome is the bench's whole point.
        for _ in 0..2 {
            let (rx, tallies, malformed, samples) = (&rx, &tallies, &malformed, &samples);
            s.spawn(move || {
                let mut n = 0u64;
                loop {
                    let item = match rx.lock().unwrap().recv() {
                        Ok(i) => i,
                        Err(_) => return, // dispatchers done, queue drained
                    };
                    n += 1;
                    match item.ticket.wait() {
                        Ok(a) => {
                            tally(tallies, item.class)
                                .answered
                                .fetch_add(1, Ordering::Relaxed);
                            if n.is_multiple_of(32) {
                                samples.lock().unwrap().push((item.src, item.dst, a));
                            }
                        }
                        Err(ServeError::Overloaded { retry_after }) => {
                            if retry_after.is_zero() {
                                malformed.fetch_add(1, Ordering::Relaxed);
                            }
                            tally(tallies, item.class)
                                .rejected
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Budget(RouteError::BudgetExceeded { .. })) => {
                            tally(tallies, item.class)
                                .expired
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            malformed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Two dispatchers replay interleaved halves of the trace at its
        // timestamps. When the wall clock is behind an arrival they
        // submit immediately — open-loop means the backlog is offered,
        // never dropped at the source.
        let start = Instant::now();
        for d in 0..2usize {
            let (trace, tx, tallies, malformed) = (&trace, tx.clone(), &tallies, &malformed);
            let engine = &engine;
            s.spawn(move || {
                for q in trace.iter().skip(d).step_by(2) {
                    let due = Duration::from_micros(q.at_us);
                    loop {
                        let elapsed = start.elapsed();
                        if elapsed >= due {
                            break;
                        }
                        let lag = due - elapsed;
                        if lag > Duration::from_micros(200) {
                            std::thread::sleep(lag - Duration::from_micros(100));
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let class = match q.class {
                        TrafficClass::Interactive => QueryClass::Interactive,
                        TrafficClass::Bulk => QueryClass::Bulk,
                    };
                    tally(tallies, q.class)
                        .offered
                        .fetch_add(1, Ordering::Relaxed);
                    let query = PathQuery {
                        src: q.src,
                        dst: q.dst,
                        class,
                    };
                    match engine.submit(query) {
                        Ok(ticket) => {
                            let _ = tx.send(InFlight {
                                ticket,
                                class: q.class,
                                src: q.src,
                                dst: q.dst,
                            });
                        }
                        Err(ServeError::Overloaded { retry_after }) => {
                            if retry_after.is_zero() {
                                malformed.fetch_add(1, Ordering::Relaxed);
                            }
                            tally(tallies, q.class)
                                .rejected
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Budget(RouteError::BudgetExceeded { .. })) => {
                            tally(tallies, q.class)
                                .expired
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            malformed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        drop(tx); // waiters exit once both dispatchers hang up
                  // The chaos writer: one redundant cable down mid-trace, back up
                  // later — epochs must publish *during* the overload.
        let cable = safe[(seed % safe.len() as u64) as usize];
        for (at, event) in [
            (duration_ms * 45 / 100, FabricEvent::CableDown(cable)),
            (duration_ms * 70 / 100, FabricEvent::CableUp(cable)),
        ] {
            let due = Duration::from_millis(at);
            let lag = due.saturating_sub(start.elapsed());
            if !lag.is_zero() {
                std::thread::sleep(lag);
            }
            let served = server.handle(event).expect("chaos event");
            if served.epoch.is_some() {
                chaos_epochs.fetch_add(1, Ordering::Relaxed);
                history.lock().unwrap().push(store.read());
            }
        }
    });

    // Epoch-consistency verification: every sampled answer re-derives
    // exactly from the snapshot of the epoch it claims.
    let history = history.into_inner().unwrap();
    for (src, dst, a) in samples.into_inner().unwrap() {
        let ok = history
            .iter()
            .find(|s| s.epoch == a.epoch)
            .and_then(|snap| snap.answer(src, dst).ok())
            .is_some_and(|expected| expected == a);
        if !ok {
            malformed.fetch_add(1, Ordering::Relaxed);
        }
    }

    let metrics = collector.snapshot();
    let class_report = |class: QueryClass, target: Duration, t: &ClassTally| {
        let verdict = SloPolicy { class, p99: target }.judge(&metrics);
        let hist = metrics.histograms.get(match class {
            QueryClass::Interactive => telemetry::hists::WAIT_US_INTERACTIVE,
            QueryClass::Bulk => telemetry::hists::WAIT_US_BULK,
        });
        let q = |p: f64| hist.and_then(|h| h.quantile(p)).unwrap_or(0);
        ClassReport {
            class: class.name().to_string(),
            offered: t.offered.load(Ordering::Relaxed),
            answered: t.answered.load(Ordering::Relaxed),
            rejected: t.rejected.load(Ordering::Relaxed),
            expired: t.expired.load(Ordering::Relaxed),
            p50_us: q(0.50),
            p99_us: q(0.99),
            slo_target_us: target.as_micros() as u64,
            slo_met: matches!(verdict, SloVerdict::Met { .. }),
        }
    };
    let classes = vec![
        class_report(QueryClass::Interactive, INTERACTIVE_P99, &tallies[0]),
        class_report(QueryClass::Bulk, BULK_P99, &tallies[1]),
    ];
    let answered_total: u64 = classes.iter().map(|c| c.answered).sum();
    LoadgenReport {
        schema: SCHEMA.to_string(),
        topology: net.label().to_string(),
        mix: mix_name.to_string(),
        quick,
        seed,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        capacity_qps,
        offered_qps: (trace.len() as u64 * 1000) / duration_ms.max(1),
        admitted_qps: answered_total * 1000 / duration_ms.max(1),
        duration_ms,
        classes,
        min_admitted_permille: shed.min_admitted_permille(),
        chaos_epochs: chaos_epochs.load(Ordering::Relaxed),
        malformed: malformed.load(Ordering::Relaxed),
    }
}

/// Run the benchmark against `net` at 4x measured capacity.
pub fn run(net: &Network, mix_name: &str, quick: bool, seed: u64) -> LoadgenReport {
    let duration_ms = if quick { 1_200 } else { 4_000 };
    run_inner(net, mix_name, quick, seed, duration_ms, 400_000.0)
}

impl LoadgenReport {
    /// Serialize (pretty, trailing newline — artifact-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": ");
        json::write_str(&mut s, &self.schema);
        s.push_str(",\n  \"topology\": ");
        json::write_str(&mut s, &self.topology);
        s.push_str(",\n  \"mix\": ");
        json::write_str(&mut s, &self.mix);
        let _ = write!(
            s,
            ",\n  \"quick\": {},\n  \"seed\": {},\n  \"cores\": {},\n  \
             \"capacity_qps\": {},\n  \"offered_qps\": {},\n  \"admitted_qps\": {},\n  \
             \"duration_ms\": {}",
            self.quick,
            self.seed,
            self.cores,
            self.capacity_qps,
            self.offered_qps,
            self.admitted_qps,
            self.duration_ms
        );
        s.push_str(",\n  \"classes\": [");
        for (i, c) in self.classes.iter().enumerate() {
            s.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            s.push_str("\"class\": ");
            json::write_str(&mut s, &c.class);
            let _ = write!(
                s,
                ", \"offered\": {}, \"answered\": {}, \"rejected\": {}, \"expired\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"slo_target_us\": {}, \"slo_met\": {}}}",
                c.offered,
                c.answered,
                c.rejected,
                c.expired,
                c.p50_us,
                c.p99_us,
                c.slo_target_us,
                c.slo_met
            );
        }
        let _ = write!(
            s,
            "\n  ],\n  \"min_admitted_permille\": {},\n  \"chaos_epochs\": {},\n  \
             \"malformed\": {}\n}}\n",
            self.min_admitted_permille, self.chaos_epochs, self.malformed
        );
        s
    }

    /// Parse a report back, verifying the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("loadgen: missing schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file says {schema:?}, this build expects {SCHEMA:?}"
            ));
        }
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("loadgen: missing {name}"))
        };
        let num = |obj: &Value, name: &str, at: &str| {
            obj.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("loadgen: bad {at}{name}"))
        };
        let mut classes = Vec::new();
        for (i, c) in v
            .get("classes")
            .and_then(Value::as_arr)
            .ok_or("loadgen: missing classes")?
            .iter()
            .enumerate()
        {
            let at = format!("classes[{i}].");
            classes.push(ClassReport {
                class: c
                    .get("class")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("loadgen: missing {at}class"))?
                    .to_string(),
                offered: num(c, "offered", &at)?,
                answered: num(c, "answered", &at)?,
                rejected: num(c, "rejected", &at)?,
                expired: num(c, "expired", &at)?,
                p50_us: num(c, "p50_us", &at)?,
                p99_us: num(c, "p99_us", &at)?,
                slo_target_us: num(c, "slo_target_us", &at)?,
                slo_met: c
                    .get("slo_met")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| format!("loadgen: missing {at}slo_met"))?,
            });
        }
        Ok(LoadgenReport {
            schema: schema.to_string(),
            topology: str_field("topology")?,
            mix: str_field("mix")?,
            quick: v
                .get("quick")
                .and_then(Value::as_bool)
                .ok_or("loadgen: missing quick")?,
            seed: num(&v, "seed", "")?,
            cores: num(&v, "cores", "")? as usize,
            capacity_qps: num(&v, "capacity_qps", "")?,
            offered_qps: num(&v, "offered_qps", "")?,
            admitted_qps: num(&v, "admitted_qps", "")?,
            duration_ms: num(&v, "duration_ms", "")?,
            classes,
            min_admitted_permille: num(&v, "min_admitted_permille", "")? as u32,
            chaos_epochs: num(&v, "chaos_epochs", "")?,
            malformed: num(&v, "malformed", "")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn tiny_run_round_trips_and_is_well_formed() {
        // A short trace on a small tree: coalescing absorbs most of the
        // "overload" here (few distinct pairs), so this does NOT gate —
        // it checks the machinery: classification, verification,
        // serialization. The gate runs in CI on a 64-terminal fabric.
        let net = topo::kary_ntree(4, 2);
        let report = run_inner(&net, "uniform", true, 7, 250, 30_000.0);
        assert_eq!(report.malformed, 0, "no malformed responses ever");
        assert!(report.chaos_epochs >= 1);
        assert!(report.min_admitted_permille > 0);
        let offered: u64 = report.classes.iter().map(|c| c.offered).sum();
        let handled: u64 = report
            .classes
            .iter()
            .map(|c| c.answered + c.rejected + c.expired)
            .sum();
        assert_eq!(offered, handled, "every offered query classified");
        let back = LoadgenReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = LoadgenReport::from_json(r#"{"schema": "dfsssp-loadgen/v0"}"#).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn the_gate_names_every_violation() {
        let net = topo::kary_ntree(4, 2);
        let mut report = run_inner(&net, "uniform", true, 7, 200, 20_000.0);
        report.malformed = 3;
        report.min_admitted_permille = 0;
        report.chaos_epochs = 0;
        let err = report.gate().unwrap_err();
        assert!(err.contains("malformed"), "{err}");
        assert!(err.contains("floor"), "{err}");
        assert!(err.contains("chaos"), "{err}");
    }
}
