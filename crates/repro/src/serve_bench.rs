//! The route-serving benchmark behind the `serve_bench` binary and CI's
//! serve-smoke job: closed-loop query throughput scaling over client
//! threads, latency percentiles, and a concurrent chaos phase proving
//! epoch swaps never fail a query. Serialized as a versioned
//! `dfsssp-serve-bench/v1` report (`BENCH_pr5.json` in CI).
//!
//! The scaling ratio is hardware-dependent, so the report records the
//! host's core count. On a multi-core host N closed-loop clients
//! overlap their round trips and the read path scales out; on a single
//! core aggregate throughput of CPU-bound work cannot exceed 1× no
//! matter the thread count, and the ratio only reflects what the
//! engine's *batching* (one worker wakeup drains a whole queue) and
//! *coalescing* (duplicate in-flight pairs answered once) shave off
//! the per-query handoff cost.

use dfsssp_core::{DfSssp, RoutingEngine};
use fabric::{Network, NodeId};
use serve::{PathQuery, QueryEngine, QueryOpts, RouteServer, ServedOutcome};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use subnet::FabricEvent;
use telemetry::json::{self, Value};
use telemetry::Collector;

/// Serve-bench report schema; bump only on breaking shape changes.
pub const SCHEMA: &str = "dfsssp-serve-bench/v1";

/// One closed-loop throughput measurement at a fixed client count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadPoint {
    /// Concurrent closed-loop client threads.
    pub threads: usize,
    /// Queries issued (and answered) across all clients.
    pub queries: u64,
    /// Answered queries per second.
    pub qps: u64,
    /// Median per-query latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: u64,
}

/// The concurrent chaos phase: epochs published under reader load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPhase {
    /// Epochs published while readers were querying.
    pub epochs: u64,
    /// Queries answered during the campaign.
    pub queries: u64,
    /// Queries that failed (must be 0: every target stayed served).
    pub failed: u64,
    /// Worst reader-visible swap pause, microseconds.
    pub max_swap_pause_us: u64,
}

/// The whole benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeBenchReport {
    /// Always [`SCHEMA`] for reports this module writes.
    pub schema: String,
    /// Topology label the serving stack was brought up on.
    pub topology: String,
    /// Whether the reduced CI sweep ran.
    pub quick: bool,
    /// Seed for the query streams and the chaos schedule.
    pub seed: u64,
    /// Cores available on the measuring host (`available_parallelism`);
    /// the context `scaling_milli` must be read in.
    pub cores: usize,
    /// Throughput scaling, ascending thread counts (first is 1).
    pub points: Vec<ThreadPoint>,
    /// qps(max threads) / qps(1 thread), in thousandths.
    pub scaling_milli: u64,
    /// The concurrent chaos campaign.
    pub chaos: ChaosPhase,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// All ordered terminal pairs of `net` (reference ids).
fn pairs(net: &Network) -> Vec<(NodeId, NodeId)> {
    let ts = net.terminals();
    let mut out = Vec::with_capacity(ts.len() * ts.len());
    for &a in ts {
        for &b in ts {
            if a != b {
                out.push((a, b));
            }
        }
    }
    out
}

/// One closed-loop point: `threads` clients each issue
/// `queries_per_thread` queries (seeded pair streams), per-query
/// latencies merged for the percentiles.
fn measure_point(
    engine: &QueryEngine,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    queries_per_thread: u64,
    seed: u64,
) -> ThreadPoint {
    let failed = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let failed = &failed;
            let latencies = &latencies;
            s.spawn(move || {
                let mut local = Vec::with_capacity(queries_per_thread as usize);
                let mut rng = seed ^ (t as u64).wrapping_mul(0x1234_5678_9ABC_DEF1);
                for _ in 0..queries_per_thread {
                    rng = splitmix64(rng);
                    let (src, dst) = pairs[(rng % pairs.len() as u64) as usize];
                    let q = Instant::now();
                    if engine.query(PathQuery::new(src, dst)).is_err() {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                    local.push(q.elapsed().as_micros() as u64);
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = started.elapsed();
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "steady-state queries must not fail"
    );
    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let pct = |p: f64| lats[(((lats.len() - 1) as f64) * p) as usize];
    let queries = threads as u64 * queries_per_thread;
    ThreadPoint {
        threads,
        queries,
        qps: (queries as f64 / elapsed.as_secs_f64()) as u64,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// Switch-switch cables whose loss keeps every terminal served (the
/// chaos phase only breaks redundant hardware, so zero failed queries
/// is a *requirement*, not luck). Shared with the loadgen bench.
pub(crate) fn safe_cables(net: &Network) -> Vec<fabric::ChannelId> {
    use rustc_hash::FxHashSet;
    net.channels()
        .filter(|(id, ch)| {
            net.is_switch(ch.src) && net.is_switch(ch.dst) && ch.rev.is_none_or(|r| r.0 > id.0)
        })
        .filter(|&(id, ch)| {
            let mut dead: FxHashSet<fabric::ChannelId> = FxHashSet::default();
            dead.insert(id);
            if let Some(r) = ch.rev {
                dead.insert(r);
            }
            fabric::degrade::remove(net, &FxHashSet::default(), &dead).is_strongly_connected()
        })
        .map(|(id, _)| id)
        .collect()
}

/// The chaos phase: a writer publishes `epochs` epochs (down/up cycles
/// over redundant cables) while reader threads hammer queries. Every
/// query must succeed — targets stay served throughout.
fn chaos_phase(
    net: &Network,
    pairs: &[(NodeId, NodeId)],
    epochs: u64,
    readers: usize,
    seed: u64,
) -> ChaosPhase {
    let collector = Arc::new(Collector::new());
    let mut server = RouteServer::bring_up_recorded(
        DfSssp::new(),
        net.clone(),
        net.terminals()[0],
        collector.clone(),
    )
    .expect("bring-up on the example topology");
    let safe = safe_cables(net);
    assert!(!safe.is_empty(), "topology has no redundant cables");
    let store = server.store();
    let engine = QueryEngine::new(store, QueryOpts::default());
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mut published = 0u64;
    std::thread::scope(|s| {
        for r in 0..readers {
            let (done, queries, failed) = (&done, &queries, &failed);
            let engine = &engine;
            s.spawn(move || {
                let mut rng = seed ^ 0xC0FFEE ^ (r as u64) << 17;
                while !done.load(Ordering::Relaxed) {
                    rng = splitmix64(rng);
                    let (src, dst) = pairs[(rng % pairs.len() as u64) as usize];
                    match engine.query(PathQuery::new(src, dst)) {
                        Ok(_) => queries.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
        // The writer: cycle redundant cables down and back up. Each
        // transition that reroutes publishes one epoch. Between epochs
        // the writer waits for reader progress — real fabric events are
        // not back-to-back with reroutes, and on a single core an
        // unpaced writer finishes its whole campaign before the reader
        // threads are even scheduled.
        let mut rng = seed;
        let mut events = 0u64;
        while published < epochs {
            rng = splitmix64(rng);
            let cable = safe[(rng % safe.len() as u64) as usize];
            for event in [FabricEvent::CableDown(cable), FabricEvent::CableUp(cable)] {
                if published >= epochs {
                    break;
                }
                events += 1;
                match server.handle(event) {
                    Ok(ServedOutcome { epoch: Some(_), .. }) => published += 1,
                    Ok(_) => {}
                    Err(e) => panic!("chaos event {events} failed: {e}"),
                }
                let target = queries.load(Ordering::Relaxed) + readers as u64 * 4;
                while queries.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed) < target {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        }
        done.store(true, Ordering::Relaxed);
    });
    drop(engine); // join workers before reading the counters
    let snapshot = collector.snapshot();
    ChaosPhase {
        epochs: published,
        queries: queries.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        max_swap_pause_us: snapshot
            .histograms
            .get(telemetry::hists::SWAP_PAUSE_US)
            .map(|h| h.max)
            .unwrap_or(0),
    }
}

/// Run the benchmark against `net`: the scaling sweep (1..=`max_threads`
/// doubling), then the chaos phase.
pub fn run(net: &Network, quick: bool, seed: u64, max_threads: usize) -> ServeBenchReport {
    let routes = DfSssp::new()
        .route_in(net, &dfsssp_core::ComputeCtx::seq())
        .expect("route the bench topology");
    let store = serve::SnapshotStore::open(net.clone(), routes, None).expect("vet-clean bring-up");
    let engine = QueryEngine::new(store, QueryOpts::default());
    let pairs = pairs(net);
    let queries_per_thread: u64 = if quick { 2_000 } else { 10_000 };

    let mut points = Vec::new();
    let mut threads = 1;
    while threads <= max_threads.max(1) {
        points.push(measure_point(
            &engine,
            &pairs,
            threads,
            queries_per_thread,
            seed,
        ));
        threads *= 2;
    }
    let scaling_milli = match (points.first(), points.last()) {
        (Some(one), Some(top)) if one.qps > 0 => top.qps * 1_000 / one.qps,
        _ => 0,
    };
    drop(engine);

    let (epochs, readers) = if quick { (6, 2) } else { (24, 4) };
    let chaos = chaos_phase(net, &pairs, epochs, readers, seed);

    ServeBenchReport {
        schema: SCHEMA.to_string(),
        topology: net.label().to_string(),
        quick,
        seed,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points,
        scaling_milli,
        chaos,
    }
}

impl ServeBenchReport {
    /// Serialize (pretty, trailing newline — artifact-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": ");
        json::write_str(&mut s, &self.schema);
        s.push_str(",\n  \"topology\": ");
        json::write_str(&mut s, &self.topology);
        let _ = write!(
            s,
            ",\n  \"quick\": {},\n  \"seed\": {},\n  \"cores\": {}",
            self.quick, self.seed, self.cores
        );
        s.push_str(",\n  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            let _ = write!(
                s,
                "{{\"threads\": {}, \"queries\": {}, \"qps\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                p.threads, p.queries, p.qps, p.p50_us, p.p99_us
            );
        }
        let _ = write!(
            s,
            "\n  ],\n  \"scaling_milli\": {},\n  \"chaos\": {{\n    \
             \"epochs\": {},\n    \"queries\": {},\n    \"failed\": {},\n    \
             \"max_swap_pause_us\": {}\n  }}\n}}\n",
            self.scaling_milli,
            self.chaos.epochs,
            self.chaos.queries,
            self.chaos.failed,
            self.chaos.max_swap_pause_us
        );
        s
    }

    /// Parse a report back, verifying the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("serve-bench: missing schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file says {schema:?}, this build expects {SCHEMA:?}"
            ));
        }
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("serve-bench: missing {name}"))
        };
        let num = |obj: &Value, name: &str, at: &str| {
            obj.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("serve-bench: bad {at}{name}"))
        };
        let mut points = Vec::new();
        for (i, p) in v
            .get("points")
            .and_then(Value::as_arr)
            .ok_or("serve-bench: missing points")?
            .iter()
            .enumerate()
        {
            let at = format!("points[{i}].");
            points.push(ThreadPoint {
                threads: num(p, "threads", &at)? as usize,
                queries: num(p, "queries", &at)?,
                qps: num(p, "qps", &at)?,
                p50_us: num(p, "p50_us", &at)?,
                p99_us: num(p, "p99_us", &at)?,
            });
        }
        let chaos = v.get("chaos").ok_or("serve-bench: missing chaos")?;
        Ok(ServeBenchReport {
            schema: schema.to_string(),
            topology: str_field("topology")?,
            quick: v
                .get("quick")
                .and_then(Value::as_bool)
                .ok_or("serve-bench: missing quick")?,
            seed: num(&v, "seed", "")?,
            cores: num(&v, "cores", "")? as usize,
            points,
            scaling_milli: num(&v, "scaling_milli", "")?,
            chaos: ChaosPhase {
                epochs: num(chaos, "epochs", "chaos.")?,
                queries: num(chaos, "queries", "chaos.")?,
                failed: num(chaos, "failed", "chaos.")?,
                max_swap_pause_us: num(chaos, "max_swap_pause_us", "chaos.")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn tiny_run_round_trips() {
        let net = topo::kary_ntree(4, 2);
        let mut report = run(&net, true, 7, 2);
        // Blunt the timing fields so the round trip is exact.
        assert_eq!(report.chaos.failed, 0);
        assert!(report.chaos.epochs >= 6);
        assert!(report.points.iter().all(|p| p.qps > 0));
        report.scaling_milli = 1_000;
        let back = ServeBenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err =
            ServeBenchReport::from_json(r#"{"schema": "dfsssp-serve-bench/v0"}"#).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn safe_cables_keep_the_fabric_connected() {
        let net = topo::kary_ntree(4, 2);
        let safe = safe_cables(&net);
        assert!(!safe.is_empty());
    }
}
