//! Deadlock-free SSSP routing (the paper's §IV, Algorithm 2).
//!
//! DFSSSP first computes balanced minimal paths with [`crate::Sssp`]
//! (Algorithm 1), then assigns every terminal-to-terminal path to a
//! virtual layer such that each layer's channel dependency graph is
//! acyclic — the Dally & Seitz sufficient condition for deadlock freedom.
//!
//! Two assignment modes are implemented, matching the paper:
//!
//! * [`LayerAssignMode::Offline`] (the contribution): put **all** paths in
//!   layer 1, then repeatedly find a cycle in the layer's CDG, break it by
//!   moving every path that induces one chosen edge (see
//!   [`CycleBreakHeuristic`]) to the next layer, and resume the cycle
//!   search in place. Each layer needs exactly one (resumable) cycle
//!   search, which is what makes the approach scale (the paper reports
//!   ~170 s instead of ~2 h for a 4096-node network).
//! * [`LayerAssignMode::Online`] (the LASH-style baseline approach): add
//!   paths one by one to the first layer where they do not close a cycle,
//!   at the cost of one cycle search per path.
//!
//! After assignment, the paths of the used layers can be spread over the
//! remaining empty layers ([`crate::balance`]) — safe without any further
//! cycle search because every subset of an acyclic layer is acyclic.

use crate::balance::balance_layers;
use crate::budget::{record_trip, Budget, BudgetGuard};
use crate::cdg::{Cdg, CycleSearch};
use crate::engine::{
    record_par_stats, ComputeCtx, ComputeOpts, EngineConfig, RouteError, RoutingEngine,
};
use crate::heuristics::CycleBreakHeuristic;
use crate::paths::{PathId, PathSet};
use crate::pool::map_stealing;
use crate::sssp::Sssp;
use fabric::{Network, Routes};
use telemetry::{counters, phases, Acc, Noop, Recorder, RecorderHandle};

/// How paths are assigned to virtual layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerAssignMode {
    /// Algorithm 2: one resumable cycle search per layer (fast).
    Offline,
    /// One cycle search per path (slow; the paper's first approach).
    Online,
}

/// Statistics of one DFSSSP run, used by the Fig 9/10 and §IV benches.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfStats {
    /// Layers containing paths after cycle breaking, before balancing.
    /// This is the "number of virtual layers needed" the paper reports.
    pub layers_used: usize,
    /// Layers in use after balancing across the allowed budget.
    pub layers_final: usize,
    /// Cycles discovered and broken (offline mode only).
    pub cycles_broken: usize,
    /// Path moves between layers.
    pub paths_moved: usize,
}

/// The deadlock-free SSSP routing engine.
#[derive(Clone, Debug)]
pub struct DfSssp {
    /// Cycle-break heuristic (offline mode). Default: weakest edge.
    pub heuristic: CycleBreakHeuristic,
    /// Virtual-layer budget. InfiniBand hardware allows 8 data VLs; the
    /// spec allows 16.
    pub max_layers: usize,
    /// Assignment mode. Default: offline (the paper's contribution).
    pub mode: LayerAssignMode,
    /// Spread paths over unused layers after assignment. Default: true.
    pub balance: bool,
    /// Compact layers after offline assignment: sink each moved path to
    /// the lowest layer where it closes no cycle. A refinement beyond
    /// the paper's Algorithm 2 that typically saves a layer or two on
    /// dense networks (e.g. large Kautz graphs); disable to measure the
    /// unmodified algorithm. Default: true.
    pub compact: bool,
    /// Telemetry sink for phase timings and counters. Default: the
    /// shared no-op (no measurement overhead).
    pub recorder: RecorderHandle,
    /// Resource bounds for each run (deadline, admitted size, CDG
    /// edges, layer cap). Default: unlimited.
    pub budget: Budget,
    /// Parallelism request for the SSSP sweep, path extraction and the
    /// initial CDG population. Default: sequential. Routes depend on the
    /// resolved `chunk` only, never on the thread count.
    pub compute: ComputeOpts,
}

impl Default for DfSssp {
    fn default() -> Self {
        DfSssp {
            heuristic: CycleBreakHeuristic::WeakestEdge,
            max_layers: 8,
            mode: LayerAssignMode::Offline,
            balance: true,
            compact: true,
            recorder: telemetry::noop(),
            budget: Budget::default(),
            compute: ComputeOpts::default(),
        }
    }
}

impl DfSssp {
    /// The paper's configuration: offline, weakest edge, 8 layers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Same, with a specific heuristic.
    pub fn with_heuristic(heuristic: CycleBreakHeuristic) -> Self {
        DfSssp {
            heuristic,
            ..Self::default()
        }
    }

    /// Route and also return run statistics (layer counts etc.).
    ///
    /// When a recorder is attached, the run reports the five DFSSSP
    /// phases (`sssp`, `cdg_build`, `cycle_search`, `layer_assign`,
    /// `balance`) plus the `edges_weighted`, `cycles_broken` and
    /// `paths_moved` counters; with the no-op recorder not even the
    /// clock is read.
    pub fn route_with_stats(&self, net: &Network) -> Result<(Routes, DfStats), RouteError> {
        self.route_with_stats_in(net, &self.compute.resolve())
    }

    /// [`DfSssp::route_with_stats`] under an explicit compute context,
    /// overriding the engine's own [`DfSssp::compute`] request.
    pub fn route_with_stats_in(
        &self,
        net: &Network,
        cx: &ComputeCtx,
    ) -> Result<(Routes, DfStats), RouteError> {
        record_trip(&*self.recorder, self.route_with_stats_inner(net, cx))
    }

    fn route_with_stats_inner(
        &self,
        net: &Network,
        cx: &ComputeCtx,
    ) -> Result<(Routes, DfStats), RouteError> {
        let rec: &dyn Recorder = &*self.recorder;
        let guard = self.budget.start();
        guard.admit(net)?;
        let max_layers = guard.clamp_layers(self.max_layers);
        let sssp = Sssp::new();
        let mut routes = telemetry::timed(rec, phases::SSSP, || {
            let (routes, weights) = sssp.route_with_weights_in(net, &guard, cx, rec)?;
            if rec.enabled() {
                let w0 = sssp.base_weight(net);
                let grown = weights.iter().filter(|&&w| w > w0).count() as u64;
                rec.add(counters::EDGES_WEIGHTED, grown);
            }
            Ok(routes)
        })?;
        let ps = telemetry::timed(rec, phases::CDG_BUILD, || {
            PathSet::extract_in(net, &routes, cx)
        })?;
        let (mut path_layer, mut stats) = match self.mode {
            LayerAssignMode::Offline => assign_layers_budgeted_in(
                &ps,
                self.heuristic,
                max_layers,
                self.compact,
                rec,
                &guard,
                cx,
            )?,
            LayerAssignMode::Online => assign_layers_online_budgeted(&ps, max_layers, rec, &guard)?,
        };
        stats.layers_final = telemetry::timed(rec, phases::BALANCE, || {
            if self.balance {
                balance_layers(&mut path_layer, stats.layers_used, max_layers)
            } else {
                stats.layers_used
            }
        });
        if rec.enabled() {
            rec.add(counters::CYCLES_BROKEN, stats.cycles_broken as u64);
            rec.add(counters::PATHS_MOVED, stats.paths_moved as u64);
        }
        for p in ps.ids() {
            let (s, d) = ps.pair(p);
            routes.set_layer(s as usize, d as usize, path_layer[p as usize]);
        }
        routes.recompute_num_layers();
        routes.set_engine(self.name());
        Ok((routes, stats))
    }
}

impl RoutingEngine for DfSssp {
    fn name(&self) -> &'static str {
        "DFSSSP"
    }

    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
        self.route_with_stats_in(net, cx).map(|(r, _)| r)
    }

    fn deadlock_free(&self) -> bool {
        true
    }

    fn tunables(&self) -> bool {
        true
    }

    fn config(&self) -> EngineConfig {
        EngineConfig {
            max_layers: self.max_layers,
            balance: self.balance,
            recorder: self.recorder.clone(),
            budget: self.budget.clone(),
            compute: self.compute,
        }
    }

    fn set_config(&mut self, config: EngineConfig) {
        self.max_layers = config.max_layers;
        self.balance = config.balance;
        self.recorder = config.recorder;
        self.budget = config.budget;
        self.compute = config.compute;
    }
}

/// Offline layer assignment (Algorithm 2). Returns the per-path layer and
/// run statistics. Fails with [`RouteError::NeedMoreLayers`] if a cycle
/// remains in the last allowed layer.
///
/// With `compact = true`, the assignment may temporarily exceed
/// `max_layers`; a compaction pass then sinks every moved path to the
/// lowest layer where it closes no cycle, and only the compacted layer
/// count is held against the budget.
pub fn assign_layers_offline(
    ps: &PathSet,
    heuristic: CycleBreakHeuristic,
    max_layers: usize,
    compact: bool,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assign_layers_recorded(ps, heuristic, max_layers, compact, &Noop)
}

/// [`assign_layers_offline`] with phase telemetry: initial CDG
/// population reports as `cdg_build`, the resumable search as
/// `cycle_search`, victim moves and compaction as `layer_assign`. The
/// loop phases report once per call (via [`telemetry::Acc`]) even when
/// zero cycles were found, so manifests always carry all phases.
pub fn assign_layers_recorded(
    ps: &PathSet,
    heuristic: CycleBreakHeuristic,
    max_layers: usize,
    compact: bool,
    rec: &dyn Recorder,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assign_layers_budgeted(
        ps,
        heuristic,
        max_layers,
        compact,
        rec,
        &BudgetGuard::unlimited(),
    )
}

/// [`assign_layers_recorded`] under a [`BudgetGuard`]: the initial CDG
/// population is held against the edge cap, and the deadline is checked
/// before every cycle break, so degenerate instances (adversarially
/// dense dependency graphs) abort promptly with
/// [`RouteError::BudgetExceeded`] instead of grinding.
pub fn assign_layers_budgeted(
    ps: &PathSet,
    heuristic: CycleBreakHeuristic,
    max_layers: usize,
    compact: bool,
    rec: &dyn Recorder,
    guard: &BudgetGuard,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assign_layers_budgeted_in(
        ps,
        heuristic,
        max_layers,
        compact,
        rec,
        guard,
        &ComputeCtx::seq(),
    )
}

/// [`assign_layers_budgeted`] under an explicit compute context: the
/// initial layer-0 CDG population fans contiguous path-id ranges across
/// the pool workers and absorbs the partial CDGs back in range order
/// ([`Cdg::absorb`]), which reproduces the sequential build bit for bit.
/// The cycle search itself stays sequential — it is inherently ordered
/// (each break changes what the next search sees).
pub fn assign_layers_budgeted_in(
    ps: &PathSet,
    heuristic: CycleBreakHeuristic,
    max_layers: usize,
    compact: bool,
    rec: &dyn Recorder,
    guard: &BudgetGuard,
    cx: &ComputeCtx,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assert!(max_layers >= 1 && max_layers <= u8::MAX as usize + 1);
    let work_budget = if compact {
        (max_layers * 4).clamp(max_layers, u8::MAX as usize + 1)
    } else {
        max_layers
    };
    let num_channels = num_channels_of(ps);
    let mut path_layer = vec![0u8; ps.len()];
    let mut layers: Vec<Cdg> = telemetry::timed(rec, phases::CDG_BUILD, || {
        vec![build_layer0(ps, num_channels, rec, cx)]
    });
    guard.check_cdg_edges(layers[0].num_edges())?;
    let mut stats = DfStats::default();
    let mut search_acc = Acc::new(rec, phases::CYCLE_SEARCH);
    let mut assign_acc = Acc::new(rec, phases::LAYER_ASSIGN);
    let mut i = 0usize;
    while i < layers.len() {
        let mut search = CycleSearch::new(num_channels);
        while let Some(cycle) = search_acc.measure(|| search.next_cycle(&layers[i])) {
            guard.check_deadline()?;
            guard.check_cdg_edges_lazy(|| layers.iter().map(|l| l.num_edges()).sum())?;
            stats.cycles_broken += 1;
            let edge = heuristic.pick_counted(&layers[i], &cycle, stats.cycles_broken as u64);
            let victims = layers[i].live_paths_of(edge, &path_layer, i as u8);
            debug_assert!(!victims.is_empty(), "live cycle edge without live paths");
            if i + 1 >= work_budget {
                return Err(RouteError::NeedMoreLayers {
                    required: work_budget + 1,
                    allowed: max_layers,
                });
            }
            if i + 1 >= layers.len() {
                layers.push(Cdg::new(num_channels));
            }
            assign_acc.measure(|| {
                let (head, tail) = layers.split_at_mut(i + 1);
                let (cur, next) = (&mut head[i], &mut tail[0]);
                for p in victims {
                    cur.remove_path(ps, p);
                    next.add_path(ps, p);
                    path_layer[p as usize] = (i + 1) as u8;
                    stats.paths_moved += 1;
                }
            });
        }
        i += 1;
    }
    if compact {
        assign_acc
            .measure(|| compact_layers(ps, &mut path_layer, &mut layers, &mut stats, max_layers));
    }
    stats.layers_used = layers.iter().filter(|l| l.num_paths() > 0).count().max(1);
    if stats.layers_used > max_layers {
        return Err(RouteError::NeedMoreLayers {
            required: stats.layers_used,
            allowed: max_layers,
        });
    }
    Ok((path_layer, stats))
}

/// Compaction: sink paths to the lowest layer where they close no cycle
/// (checked with the incremental reachability test), processing layers
/// from the top down and stopping as soon as the non-empty layer count
/// fits `budget` — so the common case (one layer of overflow) only
/// touches the overflow paths. Empty layers left behind are squeezed out
/// so the numbering stays dense.
fn compact_layers(
    ps: &PathSet,
    path_layer: &mut [u8],
    layers: &mut Vec<Cdg>,
    stats: &mut DfStats,
    budget: usize,
) {
    let num_channels = layers.first().map_or(0, |l| l.num_channels());
    let mut seen = vec![0u32; num_channels];
    let mut epoch = 0u32;
    let non_empty = |layers: &Vec<Cdg>| layers.iter().filter(|l| l.num_paths() > 0).count().max(1);
    // Paths grouped by their current layer, highest layer first.
    let mut by_layer: Vec<Vec<PathId>> = vec![Vec::new(); layers.len()];
    for p in ps.ids() {
        by_layer[path_layer[p as usize] as usize].push(p);
    }
    for cur in (1..layers.len()).rev() {
        if non_empty(layers) <= budget {
            break;
        }
        for &p in &by_layer[cur] {
            debug_assert_eq!(path_layer[p as usize] as usize, cur);
            for l in 0..cur {
                layers[l].add_path(ps, p);
                if !layers[l].path_closes_cycle(ps, p, &mut seen, &mut epoch) {
                    layers[cur].remove_path(ps, p);
                    path_layer[p as usize] = l as u8;
                    stats.paths_moved += 1;
                    break;
                }
                layers[l].remove_path(ps, p);
            }
        }
    }
    // Squeeze out layers that emptied: renumber densely.
    let mut remap = vec![u8::MAX; layers.len()];
    let mut next = 0u8;
    for (i, layer) in layers.iter().enumerate() {
        if layer.num_paths() > 0 {
            remap[i] = next;
            next += 1;
        }
    }
    let any_holes = remap
        .iter()
        .enumerate()
        .any(|(i, &r)| r != u8::MAX && r as usize != i);
    if any_holes {
        for l in path_layer.iter_mut() {
            *l = remap[*l as usize];
        }
        // Rebuild the CDG vector to match (cheap relative to assignment).
        let mut rebuilt: Vec<Cdg> = (0..next as usize).map(|_| Cdg::new(num_channels)).collect();
        for p in ps.ids() {
            rebuilt[path_layer[p as usize] as usize].add_path(ps, p);
        }
        *layers = rebuilt;
    }
}

/// Ablation variant of [`assign_layers_offline`]: identical cycle
/// breaking, but the cycle search restarts from scratch after every
/// break instead of resuming in place. Exists to measure what the
/// paper's "resumed on the same place where the search aborted" buys;
/// see the `cycle_search` bench. Results (layers, moves) are NOT
/// guaranteed identical to the resumable version — a fresh search may
/// discover cycles in a different order.
pub fn assign_layers_offline_restart(
    ps: &PathSet,
    heuristic: CycleBreakHeuristic,
    max_layers: usize,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assert!(max_layers >= 1 && max_layers <= u8::MAX as usize + 1);
    let num_channels = num_channels_of(ps);
    let mut path_layer = vec![0u8; ps.len()];
    let mut layers: Vec<Cdg> = vec![Cdg::new(num_channels)];
    for p in ps.ids() {
        layers[0].add_path(ps, p);
    }
    let mut stats = DfStats::default();
    let mut i = 0usize;
    while i < layers.len() {
        while let Some(cycle) = layers[i].find_cycle() {
            stats.cycles_broken += 1;
            let edge = heuristic.pick_counted(&layers[i], &cycle, stats.cycles_broken as u64);
            let victims = layers[i].live_paths_of(edge, &path_layer, i as u8);
            if i + 1 >= max_layers {
                return Err(RouteError::NeedMoreLayers {
                    required: max_layers + 1,
                    allowed: max_layers,
                });
            }
            if i + 1 >= layers.len() {
                layers.push(Cdg::new(num_channels));
            }
            let (head, tail) = layers.split_at_mut(i + 1);
            let (cur, next) = (&mut head[i], &mut tail[0]);
            for p in victims {
                cur.remove_path(ps, p);
                next.add_path(ps, p);
                path_layer[p as usize] = (i + 1) as u8;
                stats.paths_moved += 1;
            }
        }
        i += 1;
    }
    stats.layers_used = layers.iter().filter(|l| l.num_paths() > 0).count().max(1);
    Ok((path_layer, stats))
}

/// Online layer assignment: greedily place each path into the first layer
/// whose CDG stays acyclic. One full cycle check per placement attempt —
/// the `O(|N|² · (|C| + |E|))` cost the paper's offline algorithm avoids.
pub fn assign_layers_online(
    ps: &PathSet,
    max_layers: usize,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assign_layers_online_recorded(ps, max_layers, &Noop)
}

/// [`assign_layers_online`] with phase telemetry: the per-placement
/// acyclicity checks report as `cycle_search`, the add/remove traffic
/// as `layer_assign`.
pub fn assign_layers_online_recorded(
    ps: &PathSet,
    max_layers: usize,
    rec: &dyn Recorder,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assign_layers_online_budgeted(ps, max_layers, rec, &BudgetGuard::unlimited())
}

/// [`assign_layers_online_recorded`] under a [`BudgetGuard`]: the
/// deadline is checked before each path placement (the unit of work
/// whose count makes the online mode quadratic), and the growing CDGs
/// are held against the edge cap.
pub fn assign_layers_online_budgeted(
    ps: &PathSet,
    max_layers: usize,
    rec: &dyn Recorder,
    guard: &BudgetGuard,
) -> Result<(Vec<u8>, DfStats), RouteError> {
    assert!(max_layers >= 1 && max_layers <= u8::MAX as usize + 1);
    let num_channels = num_channels_of(ps);
    let mut path_layer = vec![0u8; ps.len()];
    let mut layers: Vec<Cdg> = vec![Cdg::new(num_channels)];
    let mut stats = DfStats::default();
    let mut seen = vec![0u32; num_channels];
    let mut epoch = 0u32;
    let mut search_acc = Acc::new(rec, phases::CYCLE_SEARCH);
    let mut assign_acc = Acc::new(rec, phases::LAYER_ASSIGN);
    for p in ps.ids() {
        guard.check_deadline()?;
        guard.check_cdg_edges_lazy(|| layers.iter().map(|l| l.num_edges()).sum())?;
        let mut placed = false;
        for l in 0..max_layers {
            if l >= layers.len() {
                layers.push(Cdg::new(num_channels));
            }
            assign_acc.measure(|| layers[l].add_path(ps, p));
            // Incremental check: the layer was acyclic before, so any
            // new cycle runs through one of p's edges.
            if !search_acc.measure(|| layers[l].path_closes_cycle(ps, p, &mut seen, &mut epoch)) {
                path_layer[p as usize] = l as u8;
                placed = true;
                if l > 0 {
                    stats.paths_moved += 1;
                }
                break;
            }
            assign_acc.measure(|| layers[l].remove_path(ps, p));
        }
        if !placed {
            return Err(RouteError::NeedMoreLayers {
                required: max_layers + 1,
                allowed: max_layers,
            });
        }
    }
    stats.layers_used = layers.iter().filter(|l| l.num_paths() > 0).count().max(1);
    Ok((path_layer, stats))
}

/// Populate a layer-0 CDG with every path of `ps`. Parallel contexts
/// build partial CDGs over contiguous path-id blocks (a few blocks per
/// worker so stealing can rebalance skew) and absorb them in block
/// order; the result is identical to the sequential loop for every
/// thread count.
fn build_layer0(ps: &PathSet, num_channels: usize, rec: &dyn Recorder, cx: &ComputeCtx) -> Cdg {
    let n = ps.len();
    if !cx.parallel() || n < 2 {
        let mut l0 = Cdg::new(num_channels);
        for p in ps.ids() {
            l0.add_path(ps, p);
        }
        return l0;
    }
    let blocks = (cx.threads * 4).min(n);
    let per = n.div_ceil(blocks);
    let nblocks = n.div_ceil(per);
    let (partials, stats) = map_stealing(nblocks, cx.threads, |b| {
        let mut part = Cdg::new(num_channels);
        for p in b * per..((b + 1) * per).min(n) {
            part.add_path(ps, p as PathId);
        }
        part
    });
    record_par_stats(rec, &stats);
    let mut l0 = Cdg::new(num_channels);
    for part in &partials {
        l0.absorb(part);
    }
    l0
}

/// The channel-id space of a path set (1 + max channel index used; CDG
/// nodes must cover every channel any path touches).
fn num_channels_of(ps: &PathSet) -> usize {
    ps.ids()
        .flat_map(|p| ps.channels(p).iter().map(|c| c.idx() + 1))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_deadlock_free;
    use fabric::topo;

    fn check_deadlock_free(net: &fabric::Network, engine: &DfSssp) -> DfStats {
        let (routes, stats) = engine.route_with_stats(net).unwrap();
        verify_deadlock_free(net, &routes).unwrap();
        assert_eq!(
            routes.validate_connectivity(net).unwrap(),
            net.num_terminals() * (net.num_terminals() - 1)
        );
        stats
    }

    #[test]
    fn ring_needs_exactly_two_layers() {
        // Fig 2: the 5-ring SSSP CDG is one big cycle; breaking it needs a
        // second layer and no more.
        let net = topo::ring(5, 1);
        let stats = check_deadlock_free(&net, &DfSssp::new());
        assert_eq!(stats.layers_used, 2);
        assert!(stats.cycles_broken >= 1);
    }

    #[test]
    fn tree_needs_one_layer() {
        // Up/down traffic on a tree has an acyclic CDG already.
        let net = topo::kary_ntree(2, 3);
        let stats = check_deadlock_free(&net, &DfSssp::new());
        assert_eq!(stats.layers_used, 1);
        assert_eq!(stats.cycles_broken, 0);
    }

    #[test]
    fn torus_is_made_deadlock_free() {
        let net = topo::torus(&[4, 4], 1);
        let stats = check_deadlock_free(&net, &DfSssp::new());
        assert!(stats.layers_used >= 2, "a torus needs extra layers");
        assert!(stats.layers_used <= 8);
    }

    #[test]
    fn online_and_offline_agree_on_freedom() {
        let net = topo::torus(&[3, 3], 1);
        for mode in [LayerAssignMode::Offline, LayerAssignMode::Online] {
            let engine = DfSssp {
                mode,
                ..DfSssp::new()
            };
            check_deadlock_free(&net, &engine);
        }
    }

    #[test]
    fn all_heuristics_produce_valid_routings() {
        let net = topo::torus(&[4, 3], 1);
        for h in CycleBreakHeuristic::ALL {
            let engine = DfSssp::with_heuristic(h);
            check_deadlock_free(&net, &engine);
        }
    }

    #[test]
    fn layer_budget_is_enforced() {
        let net = topo::torus(&[4, 4], 1);
        let engine = DfSssp {
            max_layers: 1,
            ..DfSssp::new()
        };
        let err = engine.route_in(&net, &ComputeCtx::seq()).unwrap_err();
        assert!(matches!(err, RouteError::NeedMoreLayers { allowed: 1, .. }));
    }

    #[test]
    fn balancing_spreads_layers_without_breaking_freedom() {
        let net = topo::ring(6, 1);
        let balanced = DfSssp::new();
        let (routes, stats) = balanced.route_with_stats(&net).unwrap();
        verify_deadlock_free(&net, &routes).unwrap();
        assert!(stats.layers_final >= stats.layers_used);
        assert!(routes.num_layers() as usize <= 8);

        let unbalanced = DfSssp {
            balance: false,
            ..DfSssp::new()
        };
        let (routes_u, stats_u) = unbalanced.route_with_stats(&net).unwrap();
        verify_deadlock_free(&net, &routes_u).unwrap();
        assert_eq!(stats_u.layers_final, stats_u.layers_used);
        assert_eq!(routes_u.num_layers() as usize, stats_u.layers_used);
    }

    #[test]
    fn kautz_directed_topology_supported() {
        let net = topo::kautz(2, 2, 12, false);
        let stats = check_deadlock_free(&net, &DfSssp::new());
        assert!(stats.layers_used <= 8);
    }

    #[test]
    fn dragonfly_supported() {
        let net = topo::dragonfly(3, 1, 1);
        check_deadlock_free(&net, &DfSssp::new());
    }

    #[test]
    fn restart_ablation_matches_resumable_quality() {
        // The restart variant must produce a valid assignment; since both
        // break the same first cycles, layer counts are close (identical
        // on these small nets).
        use crate::paths::PathSet;
        for net in [topo::ring(8, 1), topo::torus(&[4, 4], 1)] {
            let routes = crate::Sssp::new()
                .route_in(&net, &ComputeCtx::seq())
                .unwrap();
            let ps = PathSet::extract(&net, &routes).unwrap();
            let (a, sa) =
                assign_layers_offline(&ps, CycleBreakHeuristic::WeakestEdge, 16, false).unwrap();
            let (b, sb) =
                assign_layers_offline_restart(&ps, CycleBreakHeuristic::WeakestEdge, 16).unwrap();
            assert_eq!(sa.layers_used, sb.layers_used, "{}", net.label());
            // Both are covers: every layer's CDG acyclic.
            for assignment in [&a, &b] {
                let mut routes2 = routes.clone();
                for p in ps.ids() {
                    let (s, d) = ps.pair(p);
                    routes2.set_layer(s as usize, d as usize, assignment[p as usize]);
                }
                routes2.recompute_num_layers();
                crate::verify::verify_deadlock_free(&net, &routes2).unwrap();
            }
        }
    }

    #[test]
    fn compaction_fits_budget_on_dense_networks() {
        // kautz(2,3) with many endpoints: raw Algorithm 2 may overflow a
        // tight budget where compaction fits it.
        let net = topo::kautz(2, 3, 96, true);
        let routes = crate::Sssp::new()
            .route_in(&net, &ComputeCtx::seq())
            .unwrap();
        let ps = crate::paths::PathSet::extract(&net, &routes).unwrap();
        let (_, raw) =
            assign_layers_offline(&ps, CycleBreakHeuristic::WeakestEdge, 64, false).unwrap();
        let budget = raw.layers_used.saturating_sub(1).max(2);
        match assign_layers_offline(&ps, CycleBreakHeuristic::WeakestEdge, budget, true) {
            Ok((layers, stats)) => {
                assert!(stats.layers_used <= budget);
                // Compacted assignment is still a cover.
                let mut routes2 = routes.clone();
                for p in ps.ids() {
                    let (s, d) = ps.pair(p);
                    routes2.set_layer(s as usize, d as usize, layers[p as usize]);
                }
                routes2.recompute_num_layers();
                crate::verify::verify_deadlock_free(&net, &routes2).unwrap();
            }
            Err(RouteError::NeedMoreLayers { .. }) => {
                // Compaction could not squeeze a layer out: acceptable,
                // the instance genuinely needs them.
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn offline_is_deterministic() {
        let net = topo::torus(&[4, 4], 1);
        let (_, s1) = DfSssp::new().route_with_stats(&net).unwrap();
        let (_, s2) = DfSssp::new().route_with_stats(&net).unwrap();
        assert_eq!(s1.layers_used, s2.layers_used);
        assert_eq!(s1.cycles_broken, s2.cycles_broken);
        assert_eq!(s1.paths_moved, s2.paths_moved);
    }

    #[test]
    fn routes_do_not_depend_on_thread_count() {
        // The trait's determinism contract: at a fixed chunk, every
        // thread count yields bit-identical routes and stats.
        for chunk in [1usize, 4] {
            for net in [topo::torus(&[4, 4], 1), topo::dragonfly(3, 1, 1)] {
                let engine = DfSssp::new();
                let (r1, s1) = engine
                    .route_with_stats_in(&net, &ComputeCtx { threads: 1, chunk })
                    .unwrap();
                for threads in [2usize, 4] {
                    let (rn, sn) = engine
                        .route_with_stats_in(&net, &ComputeCtx { threads, chunk })
                        .unwrap();
                    assert_eq!(r1, rn, "{} threads={threads} chunk={chunk}", net.label());
                    assert_eq!(s1.layers_used, sn.layers_used);
                    assert_eq!(s1.cycles_broken, sn.cycles_broken);
                    assert_eq!(s1.paths_moved, sn.paths_moved);
                }
                verify_deadlock_free(&net, &r1).unwrap();
            }
        }
    }

    #[test]
    fn chunked_wavefront_stays_deadlock_free() {
        // Wider chunks change the balanced-weight schedule (a declared
        // algorithm parameter) but must keep every guarantee.
        let net = topo::torus(&[4, 4], 1);
        for chunk in [2usize, 16, 1024] {
            let engine = DfSssp::new();
            let (routes, _) = engine
                .route_with_stats_in(&net, &ComputeCtx { threads: 2, chunk })
                .unwrap();
            verify_deadlock_free(&net, &routes).unwrap();
            assert_eq!(
                routes.validate_connectivity(&net).unwrap(),
                net.num_terminals() * (net.num_terminals() - 1)
            );
        }
    }
}
