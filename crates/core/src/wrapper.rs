//! Make *any* routing engine deadlock-free.
//!
//! The paper's closing claim — "although our implementation is
//! InfiniBand-specific, the algorithms apply to generic networks" — holds
//! one level deeper: the offline cycle-breaking of Algorithm 2 never
//! looks at how the paths were computed. [`DeadlockFree`] wraps an
//! arbitrary [`RoutingEngine`], extracts its paths, and assigns virtual
//! layers until every layer's channel dependency graph is acyclic.
//! `DeadlockFree<Sssp>` is DFSSSP; `DeadlockFree<Dor>` is a
//! deadlock-free dimension-order routing for tori (the problem Dally &
//! Seitz originally solved with hop-level virtual channels, here solved
//! with path-level layers); `DeadlockFree<MinHop>` upgrades OpenSM's
//! default engine.

use crate::balance::balance_layers;
use crate::budget::{record_trip, Budget};
use crate::dfsssp::{
    assign_layers_budgeted_in, assign_layers_online_budgeted, DfStats, LayerAssignMode,
};
use crate::engine::{ComputeCtx, ComputeOpts, EngineConfig, RouteError, RoutingEngine};
use crate::heuristics::CycleBreakHeuristic;
use crate::paths::PathSet;
use fabric::{Network, Routes};
use telemetry::{counters, phases, Recorder, RecorderHandle};

/// A deadlock-freedom wrapper around any routing engine.
#[derive(Clone, Debug)]
pub struct DeadlockFree<E> {
    /// The engine computing the paths.
    pub inner: E,
    /// Cycle-break heuristic (offline mode).
    pub heuristic: CycleBreakHeuristic,
    /// Virtual-layer budget.
    pub max_layers: usize,
    /// Offline (Algorithm 2) or online assignment.
    pub mode: LayerAssignMode,
    /// Spread paths over unused layers afterwards.
    pub balance: bool,
    /// Compact layers after offline assignment (see [`crate::DfSssp`]).
    pub compact: bool,
    /// Telemetry sink (phases as in [`crate::DfSssp`], plus the inner
    /// engine's share of the run as `inner_route`).
    pub recorder: RecorderHandle,
    /// Resource bounds for each run (see [`crate::Budget`]). The inner
    /// engine is not interrupted mid-call, but the deadline is checked
    /// when it returns and throughout the layer assignment.
    pub budget: Budget,
    /// Parallelism request, forwarded to the inner engine's `route_in`
    /// and used for path extraction and the initial CDG population.
    pub compute: ComputeOpts,
}

impl<E: RoutingEngine> DeadlockFree<E> {
    /// Wrap `inner` with the paper's default configuration.
    pub fn new(inner: E) -> Self {
        DeadlockFree {
            inner,
            heuristic: CycleBreakHeuristic::WeakestEdge,
            max_layers: 8,
            mode: LayerAssignMode::Offline,
            balance: true,
            compact: true,
            recorder: telemetry::noop(),
            budget: Budget::default(),
            compute: ComputeOpts::default(),
        }
    }

    /// Route and return assignment statistics.
    pub fn route_with_stats(&self, net: &Network) -> Result<(Routes, DfStats), RouteError> {
        self.route_with_stats_in(net, &self.compute.resolve())
    }

    /// [`DeadlockFree::route_with_stats`] under an explicit compute
    /// context, overriding the wrapper's own request. The context is
    /// forwarded to the inner engine.
    pub fn route_with_stats_in(
        &self,
        net: &Network,
        cx: &ComputeCtx,
    ) -> Result<(Routes, DfStats), RouteError> {
        record_trip(&*self.recorder, self.route_with_stats_inner(net, cx))
    }

    fn route_with_stats_inner(
        &self,
        net: &Network,
        cx: &ComputeCtx,
    ) -> Result<(Routes, DfStats), RouteError> {
        let rec: &dyn Recorder = &*self.recorder;
        let guard = self.budget.start();
        guard.admit(net)?;
        let max_layers = guard.clamp_layers(self.max_layers);
        let mut routes =
            telemetry::timed(rec, phases::INNER_ROUTE, || self.inner.route_in(net, cx))?;
        guard.check_deadline()?;
        let ps = telemetry::timed(rec, phases::CDG_BUILD, || {
            PathSet::extract_in(net, &routes, cx)
        })?;
        let (mut path_layer, mut stats) = match self.mode {
            LayerAssignMode::Offline => assign_layers_budgeted_in(
                &ps,
                self.heuristic,
                max_layers,
                self.compact,
                rec,
                &guard,
                cx,
            )?,
            LayerAssignMode::Online => assign_layers_online_budgeted(&ps, max_layers, rec, &guard)?,
        };
        stats.layers_final = telemetry::timed(rec, phases::BALANCE, || {
            if self.balance {
                balance_layers(&mut path_layer, stats.layers_used, max_layers)
            } else {
                stats.layers_used
            }
        });
        if rec.enabled() {
            rec.add(counters::CYCLES_BROKEN, stats.cycles_broken as u64);
            rec.add(counters::PATHS_MOVED, stats.paths_moved as u64);
        }
        for p in ps.ids() {
            let (s, d) = ps.pair(p);
            routes.set_layer(s as usize, d as usize, path_layer[p as usize]);
        }
        routes.recompute_num_layers();
        routes.set_engine(format!("DF-{}", self.inner.name()));
        Ok((routes, stats))
    }
}

impl<E: RoutingEngine> RoutingEngine for DeadlockFree<E> {
    fn name(&self) -> &'static str {
        "DF-wrapped"
    }

    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
        self.route_with_stats_in(net, cx).map(|(r, _)| r)
    }

    fn deadlock_free(&self) -> bool {
        true
    }

    fn tunables(&self) -> bool {
        true
    }

    fn config(&self) -> EngineConfig {
        EngineConfig {
            max_layers: self.max_layers,
            balance: self.balance,
            recorder: self.recorder.clone(),
            budget: self.budget.clone(),
            compute: self.compute,
        }
    }

    fn set_config(&mut self, config: EngineConfig) {
        self.max_layers = config.max_layers;
        self.balance = config.balance;
        self.recorder = config.recorder;
        self.budget = config.budget;
        self.compute = config.compute;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::Sssp;
    use crate::verify::verify_deadlock_free;
    use fabric::topo;

    #[test]
    fn wrapped_sssp_behaves_like_dfsssp() {
        let net = topo::torus(&[4, 4], 1);
        let wrapped = DeadlockFree::new(Sssp::new());
        let (routes, stats) = wrapped.route_with_stats(&net).unwrap();
        verify_deadlock_free(&net, &routes).unwrap();
        let (_, df_stats) = crate::DfSssp::new().route_with_stats(&net).unwrap();
        assert_eq!(stats.layers_used, df_stats.layers_used);
        assert_eq!(stats.cycles_broken, df_stats.cycles_broken);
        assert_eq!(routes.engine(), "DF-SSSP");
    }

    #[test]
    fn wrapped_engine_reports_freedom() {
        let w = DeadlockFree::new(Sssp::new());
        assert!(w.deadlock_free());
    }

    #[test]
    fn inner_failures_propagate() {
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let t0 = b.add_terminal("t0");
        b.link(t0, s0).unwrap();
        let s1 = b.add_switch("s1", 4);
        let t1 = b.add_terminal("t1");
        b.link(t1, s1).unwrap();
        let net = b.build();
        let err = DeadlockFree::new(Sssp::new())
            .route_in(&net, &ComputeCtx::seq())
            .unwrap_err();
        assert_eq!(err, RouteError::Disconnected);
    }
}
