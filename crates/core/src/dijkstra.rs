//! Destination-rooted weighted shortest-path trees.
//!
//! The paper's Algorithm 1 iterates over sources and uses the reverse
//! paths to fill forwarding tables toward each source. Equivalently — and
//! correctly for directed topologies like unidirectional Kautz networks —
//! we run Dijkstra from each *destination* over the reversed graph: the
//! relaxation follows in-channels, and the recorded parent channel at node
//! `v` is the forward channel a packet at `v` takes toward the
//! destination.

use fabric::{ChannelId, Network, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of one destination-rooted shortest-path computation.
pub struct Spt {
    /// `parent[v]` = forward channel to take at `v` toward the root, or
    /// `None` at the root / for unreachable nodes.
    pub parent: Vec<Option<ChannelId>>,
    /// Weighted distance from each node to the root (`u64::MAX` if
    /// unreachable).
    pub dist: Vec<u64>,
    /// Nodes in the order Dijkstra settled them (non-decreasing distance);
    /// the root is first. Used for subtree-size accumulation.
    pub pop_order: Vec<NodeId>,
}

/// Compute the shortest-path tree toward `root` under per-channel
/// `weights` (indexed by [`ChannelId`]).
pub fn spt_to(net: &Network, root: NodeId, weights: &[u64]) -> Spt {
    let n = net.num_nodes();
    debug_assert_eq!(weights.len(), net.num_channels());
    let mut dist = vec![u64::MAX; n];
    let mut parent: Vec<Option<ChannelId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut pop_order = Vec::with_capacity(n);
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[root.idx()] = 0;
    heap.push(Reverse((0, root.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = NodeId(u);
        if settled[u.idx()] {
            continue;
        }
        settled[u.idx()] = true;
        pop_order.push(u);
        // Terminals never forward (InfiniBand channel adapters sink
        // traffic), so only the root terminal and switches are expanded.
        if u != root && net.is_terminal(u) {
            continue;
        }
        // Relax over in-channels: v --c--> u means a packet at v can move
        // one hop closer by taking c.
        for &c in net.in_channels(u) {
            let v = net.channel(c).src;
            if settled[v.idx()] {
                continue;
            }
            let cand = d + weights[c.idx()];
            if cand < dist[v.idx()] {
                dist[v.idx()] = cand;
                parent[v.idx()] = Some(c);
                heap.push(Reverse((cand, v.0)));
            }
        }
    }
    Spt {
        parent,
        dist,
        pop_order,
    }
}

/// Unweighted hop-count BFS toward `root` (all weights 1); same contract
/// as [`spt_to`] but O(V + E). Used by MinHop-style engines and tests.
pub fn bfs_to(net: &Network, root: NodeId) -> Spt {
    let n = net.num_nodes();
    let mut dist = vec![u64::MAX; n];
    let mut parent: Vec<Option<ChannelId>> = vec![None; n];
    let mut pop_order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    dist[root.idx()] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        pop_order.push(u);
        if u != root && net.is_terminal(u) {
            continue; // terminals never forward
        }
        for &c in net.in_channels(u) {
            let v = net.channel(c).src;
            if dist[v.idx()] == u64::MAX {
                dist[v.idx()] = dist[u.idx()] + 1;
                parent[v.idx()] = Some(c);
                queue.push_back(v);
            }
        }
    }
    Spt {
        parent,
        dist,
        pop_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn unit_weights_match_bfs() {
        let net = topo::torus(&[4, 4], 1);
        let weights = vec![1u64; net.num_channels()];
        for &t in net.terminals() {
            let spt = spt_to(&net, t, &weights);
            let bfs = bfs_to(&net, t);
            assert_eq!(spt.dist, bfs.dist);
        }
    }

    #[test]
    fn parents_walk_to_root() {
        let net = topo::kary_ntree(2, 3);
        let weights = vec![3u64; net.num_channels()];
        let root = net.terminals()[5];
        let spt = spt_to(&net, root, &weights);
        for (id, _) in net.nodes() {
            if id == root {
                assert!(spt.parent[id.idx()].is_none());
                continue;
            }
            let mut at = id;
            let mut hops = 0u64;
            while at != root {
                let c = spt.parent[at.idx()].expect("connected");
                assert_eq!(net.channel(c).src, at);
                at = net.channel(c).dst;
                hops += 1;
                assert!(hops <= net.num_nodes() as u64);
            }
            assert_eq!(spt.dist[id.idx()], hops * 3);
        }
    }

    #[test]
    fn pop_order_is_nondecreasing_distance() {
        let net = topo::torus(&[3, 3], 2);
        let mut weights = vec![1u64; net.num_channels()];
        // Perturb weights to make distances interesting.
        for (i, w) in weights.iter_mut().enumerate() {
            *w = 1 + (i as u64 % 3);
        }
        let spt = spt_to(&net, net.terminals()[0], &weights);
        let dists: Vec<u64> = spt.pop_order.iter().map(|n| spt.dist[n.idx()]).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(spt.pop_order.len(), net.num_nodes());
    }

    #[test]
    fn directed_graph_routes_forward() {
        // Unidirectional Kautz: parents must be forward channels.
        let net = topo::kautz(2, 2, 12, false);
        let weights = vec![1u64; net.num_channels()];
        let root = net.terminals()[0];
        let spt = spt_to(&net, root, &weights);
        for (id, _) in net.nodes() {
            if let Some(c) = spt.parent[id.idx()] {
                assert_eq!(net.channel(c).src, id);
                assert_eq!(
                    spt.dist[id.idx()],
                    spt.dist[net.channel(c).dst.idx()] + weights[c.idx()]
                );
            }
        }
    }

    #[test]
    fn unreachable_nodes_marked() {
        let mut b = fabric::NetworkBuilder::new();
        let a = b.add_switch("a", 4);
        let c = b.add_switch("c", 4);
        // Only a -> c; nothing reaches a.
        b.add_channel(a, c).unwrap();
        let net = b.build();
        let spt = spt_to(&net, c, &[1]);
        assert_eq!(spt.dist[a.idx()], 1);
        let spt = spt_to(&net, a, &[1]);
        assert_eq!(spt.dist[c.idx()], u64::MAX);
        assert!(spt.parent[c.idx()].is_none());
    }
}
