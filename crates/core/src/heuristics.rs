//! Cycle-break heuristics (§IV of the paper).
//!
//! When the offline algorithm finds a cycle in a layer's CDG it must pick
//! one edge whose inducing paths move to the next layer. Choosing which
//! edge is the APP-flavored NP-complete decision in miniature; the paper
//! evaluates three heuristics and finds "weakest edge" best (3–5 layers on
//! its random networks, vs 4–8 for pseudo-random and 4–16 for heaviest).

use crate::cdg::{Cdg, EdgeId};

/// Which edge of a discovered cycle to break.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleBreakHeuristic {
    /// Break the edge induced by the fewest paths — minimizes the number
    /// of paths pushed to the next layer. The paper's default.
    WeakestEdge,
    /// Break the edge induced by the most paths — tries to break many
    /// undiscovered cycles at once (the paper's worst heuristic).
    HeaviestEdge,
    /// Break the first edge of the discovered cycle (the paper's
    /// "pseudo-random" heuristic: whichever edge the search found first).
    FirstEdge,
    /// Break a uniformly random cycle edge (splitmix on the seed and a
    /// per-call counter — deterministic per seed). §IV explains why
    /// heavy-weight stochastic optimizers don't fit APP; this lightweight
    /// randomization exists so restarts over seeds can be compared
    /// against the deterministic heuristics.
    RandomEdge(u64),
}

impl CycleBreakHeuristic {
    /// The paper's three, in its order of presentation.
    pub const ALL: [CycleBreakHeuristic; 3] = [
        CycleBreakHeuristic::WeakestEdge,
        CycleBreakHeuristic::HeaviestEdge,
        CycleBreakHeuristic::FirstEdge,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CycleBreakHeuristic::WeakestEdge => "weakest-edge",
            CycleBreakHeuristic::HeaviestEdge => "heaviest-edge",
            CycleBreakHeuristic::FirstEdge => "first-edge",
            CycleBreakHeuristic::RandomEdge(_) => "random-edge",
        }
    }

    /// Pick the edge of `cycle` to break. `cycle` must be non-empty; ties
    /// resolve to the earliest edge in cycle order (deterministic).
    /// `calls` is a monotone per-run counter used by the random variant.
    pub fn pick_counted(self, cdg: &Cdg, cycle: &[EdgeId], calls: u64) -> EdgeId {
        assert!(!cycle.is_empty(), "cannot break an empty cycle");
        match self {
            CycleBreakHeuristic::FirstEdge => cycle[0],
            CycleBreakHeuristic::WeakestEdge => cycle
                .iter()
                .copied()
                .min_by_key(|&e| cdg.edge(e).count)
                .unwrap(),
            CycleBreakHeuristic::HeaviestEdge => cycle
                .iter()
                .enumerate()
                .max_by_key(|&(i, &e)| (cdg.edge(e).count, std::cmp::Reverse(i)))
                .map(|(_, &e)| e)
                .unwrap(),
            CycleBreakHeuristic::RandomEdge(seed) => {
                let x = splitmix64(seed ^ calls.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                cycle[(x % cycle.len() as u64) as usize]
            }
        }
    }

    /// [`Self::pick_counted`] for deterministic heuristics (counter 0).
    pub fn pick(self, cdg: &Cdg, cycle: &[EdgeId]) -> EdgeId {
        self.pick_counted(cdg, cycle, 0)
    }
}

/// SplitMix64: tiny, stateless, well-distributed — exactly enough for
/// reproducible random edge picks without threading an RNG through the
/// assignment loop.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::Cdg;

    /// CDG with weighted dependencies (weight = repeated add).
    fn weighted(n: usize, deps: &[(u32, u32, u32)]) -> Cdg {
        let mut cdg = Cdg::new(n);
        for &(a, b, w) in deps {
            for _ in 0..w {
                cdg.add_dependency(a, b);
            }
        }
        cdg
    }

    #[test]
    fn weakest_and_heaviest_pick_extremes() {
        let cdg = weighted(3, &[(0, 1, 5), (1, 2, 1), (2, 0, 3)]);
        let cycle = cdg.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        let weakest = CycleBreakHeuristic::WeakestEdge.pick(&cdg, &cycle);
        assert_eq!(cdg.edge(weakest).count, 1);
        let heaviest = CycleBreakHeuristic::HeaviestEdge.pick(&cdg, &cycle);
        assert_eq!(cdg.edge(heaviest).count, 5);
        let first = CycleBreakHeuristic::FirstEdge.pick(&cdg, &cycle);
        assert_eq!(first, cycle[0]);
    }

    #[test]
    fn ties_resolve_deterministically() {
        let cdg = weighted(3, &[(0, 1, 2), (1, 2, 2), (2, 0, 2)]);
        let cycle = cdg.find_cycle().unwrap();
        let a = CycleBreakHeuristic::WeakestEdge.pick(&cdg, &cycle);
        let b = CycleBreakHeuristic::WeakestEdge.pick(&cdg, &cycle);
        assert_eq!(a, b);
        assert_eq!(a, cycle[0], "ties go to earliest cycle edge");
    }

    #[test]
    fn random_edge_is_deterministic_per_seed_and_counter() {
        let cdg = weighted(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let cycle = cdg.find_cycle().unwrap();
        let h = CycleBreakHeuristic::RandomEdge(42);
        assert_eq!(
            h.pick_counted(&cdg, &cycle, 0),
            h.pick_counted(&cdg, &cycle, 0)
        );
        // Different counters spread over the cycle (statistically: over
        // many counters every edge gets picked).
        let mut seen = std::collections::HashSet::new();
        for calls in 0..64 {
            seen.insert(h.pick_counted(&cdg, &cycle, calls));
        }
        assert_eq!(seen.len(), cycle.len());
        assert_eq!(h.name(), "random-edge");
    }

    #[test]
    fn random_edge_routes_deadlock_free() {
        use crate::engine::RoutingEngine;
        let net = fabric::topo::torus(&[4, 3], 1);
        let engine = crate::DfSssp::with_heuristic(CycleBreakHeuristic::RandomEdge(7));
        let routes = engine.route_in(&net, &crate::ComputeCtx::seq()).unwrap();
        crate::verify::verify_deadlock_free(&net, &routes).unwrap();
    }

    #[test]
    #[should_panic(expected = "empty cycle")]
    fn empty_cycle_rejected() {
        let cdg = Cdg::new(1);
        CycleBreakHeuristic::WeakestEdge.pick(&cdg, &[]);
    }
}
