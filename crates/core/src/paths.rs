//! Compact storage of all terminal-to-terminal routes.
//!
//! The offline DFSSSP algorithm (Algorithm 2) must know, for every edge of
//! the channel dependency graph, which paths induce it, and must be able
//! to move whole paths between layers. That requires materializing all
//! `|T|·(|T|-1)` paths; this module stores them in one flat channel array
//! with offsets (the paper reports ~340 MB for a 4096-node network — this
//! layout is what keeps that figure practical).

use crate::engine::{ComputeCtx, RouteError};
use crate::pool::map_stealing;
use fabric::{ChannelId, Network, Routes};

/// Identifier of one terminal-to-terminal path in a [`PathSet`].
pub type PathId = u32;

/// All terminal-pair routes of a [`Routes`] table, flattened.
pub struct PathSet {
    /// Concatenated channel sequences.
    channels: Vec<ChannelId>,
    /// `offsets[p]..offsets[p+1]` indexes `channels` for path `p`.
    offsets: Vec<u64>,
    /// `(src_t, dst_t)` terminal indices per path.
    pairs: Vec<(u32, u32)>,
}

/// Per-source extraction result: `(channels, path lengths, pairs)`.
type SourcePaths = (Vec<ChannelId>, Vec<u32>, Vec<(u32, u32)>);

impl PathSet {
    /// Extract every ordered terminal pair's route from `routes`.
    /// Paths are extracted in `(src_t, dst_t)` lexicographic order.
    pub fn extract(net: &Network, routes: &Routes) -> Result<PathSet, RouteError> {
        Self::extract_in(net, routes, &ComputeCtx::seq())
    }

    /// [`PathSet::extract`] fanned across `cx.threads` pool workers, one
    /// task per source terminal. Per-source results are flattened in
    /// source order, so the set is identical for every thread count.
    pub fn extract_in(
        net: &Network,
        routes: &Routes,
        cx: &ComputeCtx,
    ) -> Result<PathSet, RouteError> {
        let terminals = net.terminals();
        // Parallel per-source extraction, then flatten.
        let (per_src, _) = map_stealing(
            terminals.len(),
            cx.threads,
            |src_t| -> Result<SourcePaths, RouteError> {
                let src = terminals[src_t];
                let mut chans = Vec::new();
                let mut lens = Vec::new();
                let mut pairs = Vec::new();
                for (dst_t, &dst) in terminals.iter().enumerate() {
                    if src == dst {
                        continue;
                    }
                    let before = chans.len();
                    for step in routes
                        .path(net, src, dst)
                        .map_err(|_| RouteError::Disconnected)?
                    {
                        chans.push(step.map_err(|_| RouteError::Disconnected)?);
                    }
                    lens.push((chans.len() - before) as u32);
                    pairs.push((src_t as u32, dst_t as u32));
                }
                Ok((chans, lens, pairs))
            },
        );
        let mut channels = Vec::new();
        let mut offsets = vec![0u64];
        let mut pairs = Vec::new();
        for res in per_src {
            let (chans, lens, prs) = res?;
            let mut at = channels.len() as u64;
            channels.extend_from_slice(&chans);
            pairs.extend_from_slice(&prs);
            for len in lens {
                at += len as u64;
                offsets.push(at);
            }
        }
        Ok(PathSet {
            channels,
            offsets,
            pairs,
        })
    }

    /// Assemble a path set from raw parts — for engines whose layer
    /// assignment granularity is not terminal pairs (e.g. LASH works on
    /// switch pairs). `offsets` must have `pairs.len() + 1` monotone
    /// entries ending at `channels.len()`; each path's channels must
    /// chain head-to-tail.
    pub fn from_parts(
        channels: Vec<ChannelId>,
        offsets: Vec<u64>,
        pairs: Vec<(u32, u32)>,
    ) -> PathSet {
        assert_eq!(offsets.len(), pairs.len() + 1, "offsets/pairs mismatch");
        assert_eq!(*offsets.last().unwrap_or(&0), channels.len() as u64);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        PathSet {
            channels,
            offsets,
            pairs,
        }
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Channel sequence of path `p`.
    #[inline]
    pub fn channels(&self, p: PathId) -> &[ChannelId] {
        let s = self.offsets[p as usize] as usize;
        let e = self.offsets[p as usize + 1] as usize;
        &self.channels[s..e]
    }

    /// `(src_t, dst_t)` terminal indices of path `p`.
    #[inline]
    pub fn pair(&self, p: PathId) -> (u32, u32) {
        self.pairs[p as usize]
    }

    /// Iterate all path ids.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        0..self.pairs.len() as u32
    }

    /// Total stored channel hops (diagnostic; drives the paper's memory
    /// complexity term `O(d(I) · |N|²)`).
    pub fn total_hops(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::sssp::Sssp;
    use fabric::topo;

    #[test]
    fn extracts_every_ordered_pair() {
        let net = topo::ring(4, 2);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        assert_eq!(ps.len(), 8 * 7);
        // Pairs are unique and ordered.
        let mut seen = std::collections::HashSet::new();
        for p in ps.ids() {
            assert!(seen.insert(ps.pair(p)));
        }
    }

    #[test]
    fn channel_sequences_chain() {
        let net = topo::kary_ntree(2, 2);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        for p in ps.ids() {
            let (src_t, dst_t) = ps.pair(p);
            let chans = ps.channels(p);
            assert!(!chans.is_empty());
            let src = net.terminals()[src_t as usize];
            let dst = net.terminals()[dst_t as usize];
            assert_eq!(net.channel(chans[0]).src, src);
            assert_eq!(net.channel(*chans.last().unwrap()).dst, dst);
            for w in chans.windows(2) {
                assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
            }
        }
    }

    #[test]
    fn total_hops_matches_load_sum() {
        let net = topo::torus(&[3, 3], 1);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let loads = routes.channel_loads(&net).unwrap();
        assert_eq!(ps.total_hops() as u32, loads.iter().sum::<u32>());
    }
}
