//! Routing budgets: deadlines and size caps for the serving path.
//!
//! A subnet manager reroutes *inline* with fabric recovery — a routing
//! run that walks a hostile or degenerate topology for minutes is as bad
//! as one that panics. [`Budget`] bounds a single `route()` call along
//! four axes (wall-clock deadline, admitted network size, CDG edge
//! count, virtual layers) and is threaded through
//! [`crate::EngineConfig`] so the escalation ladder, CLIs and benches
//! all configure it the same way.
//!
//! Engines call [`Budget::start`] once per run and then hit the
//! resulting [`BudgetGuard`]'s checkpoints from their hot loops (per
//! SSSP destination, per cycle broken, per online path placement).
//! An exhausted budget surfaces as [`RouteError::BudgetExceeded`] —
//! promptly, instead of hanging — and is counted on the engine's
//! recorder under `budget_trips`.
//!
//! The `max_layers` axis works by clamping, not by aborting: the
//! engine's configured layer budget is reduced to the cap, so a binding
//! clamp surfaces as the familiar [`RouteError::NeedMoreLayers`].

use crate::engine::RouteError;
use fabric::Network;
use std::time::{Duration, Instant};
use telemetry::{counters, Recorder};

/// Resource bounds for one routing run. `None` means unlimited; the
/// default budget is fully unlimited, so existing callers see no change
/// unless they opt in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for the whole run.
    pub deadline: Option<Duration>,
    /// Maximum network size (nodes) admitted at all.
    pub max_nodes: Option<usize>,
    /// Maximum live edges across the layers' channel dependency graphs.
    pub max_cdg_edges: Option<usize>,
    /// Cap on the virtual-layer budget (clamps the engine's
    /// `max_layers`; a binding clamp surfaces as `NeedMoreLayers`).
    pub max_layers: Option<usize>,
}

impl Budget {
    /// The unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the wall-clock deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the admitted network size (nodes).
    pub fn max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Set the CDG edge cap.
    pub fn max_cdg_edges(mut self, n: usize) -> Self {
        self.max_cdg_edges = Some(n);
        self
    }

    /// Set the virtual-layer cap.
    pub fn max_layers(mut self, n: usize) -> Self {
        self.max_layers = Some(n);
        self
    }

    /// Whether every axis is unlimited (checkpoints are free to skip).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_nodes.is_none()
            && self.max_cdg_edges.is_none()
            && self.max_layers.is_none()
    }

    /// Arm the budget for one run (the deadline clock starts now).
    pub fn start(&self) -> BudgetGuard {
        BudgetGuard {
            deadline: self.deadline.map(|d| (Instant::now() + d, d)),
            max_nodes: self.max_nodes,
            max_cdg_edges: self.max_cdg_edges,
            max_layers: self.max_layers,
        }
    }
}

/// An armed [`Budget`]: the checkpoint object engines thread through
/// their hot loops.
#[derive(Clone, Debug)]
pub struct BudgetGuard {
    deadline: Option<(Instant, Duration)>,
    max_nodes: Option<usize>,
    max_cdg_edges: Option<usize>,
    max_layers: Option<usize>,
}

impl BudgetGuard {
    /// A guard that never trips (for the non-budgeted entry points).
    pub fn unlimited() -> Self {
        BudgetGuard {
            deadline: None,
            max_nodes: None,
            max_cdg_edges: None,
            max_layers: None,
        }
    }

    /// Admission check, called once per run before any work: reject
    /// networks larger than the budget admits.
    pub fn admit(&self, net: &Network) -> Result<(), RouteError> {
        if let Some(max) = self.max_nodes {
            if net.num_nodes() > max {
                return Err(RouteError::BudgetExceeded {
                    resource: "nodes",
                    limit: max as u64,
                });
            }
        }
        Ok(())
    }

    /// Deadline checkpoint; engines call this from every hot loop
    /// (per destination, per cycle, per placement).
    #[inline]
    pub fn check_deadline(&self) -> Result<(), RouteError> {
        if let Some((at, total)) = self.deadline {
            if Instant::now() >= at {
                return Err(RouteError::BudgetExceeded {
                    resource: "deadline_ms",
                    limit: total.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// CDG size checkpoint: `edges` is the current live edge count
    /// across layers.
    #[inline]
    pub fn check_cdg_edges(&self, edges: usize) -> Result<(), RouteError> {
        if let Some(max) = self.max_cdg_edges {
            if edges > max {
                return Err(RouteError::BudgetExceeded {
                    resource: "cdg_edges",
                    limit: max as u64,
                });
            }
        }
        Ok(())
    }

    /// [`BudgetGuard::check_cdg_edges`] with a lazily computed count, so
    /// hot loops pay nothing for the tally when the axis is unlimited.
    #[inline]
    pub fn check_cdg_edges_lazy(&self, edges: impl FnOnce() -> usize) -> Result<(), RouteError> {
        if self.max_cdg_edges.is_some() {
            self.check_cdg_edges(edges())?;
        }
        Ok(())
    }

    /// Clamp a configured virtual-layer budget to this budget's cap
    /// (never below 1, so the assignment asserts stay satisfied).
    pub fn clamp_layers(&self, configured: usize) -> usize {
        match self.max_layers {
            Some(cap) => configured.min(cap).max(1),
            None => configured,
        }
    }
}

/// Count budget trips on the engine's recorder: passes `res` through,
/// bumping the `budget_trips` counter when it is a
/// [`RouteError::BudgetExceeded`].
pub fn record_trip<T>(rec: &dyn Recorder, res: Result<T, RouteError>) -> Result<T, RouteError> {
    if let Err(RouteError::BudgetExceeded { .. }) = &res {
        if rec.enabled() {
            rec.add(counters::BUDGET_TRIPS, 1);
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = BudgetGuard::unlimited();
        let net = topo::ring(4, 1);
        g.admit(&net).unwrap();
        g.check_deadline().unwrap();
        g.check_cdg_edges(usize::MAX).unwrap();
        assert_eq!(g.clamp_layers(8), 8);
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn node_admission_is_enforced() {
        let net = topo::ring(4, 1);
        let g = Budget::new().max_nodes(3).start();
        let err = g.admit(&net).unwrap_err();
        assert_eq!(
            err,
            RouteError::BudgetExceeded {
                resource: "nodes",
                limit: 3
            }
        );
        Budget::new().max_nodes(64).start().admit(&net).unwrap();
    }

    #[test]
    fn elapsed_deadline_trips() {
        let g = Budget::new().deadline(Duration::ZERO).start();
        let err = g.check_deadline().unwrap_err();
        assert!(matches!(
            err,
            RouteError::BudgetExceeded {
                resource: "deadline_ms",
                ..
            }
        ));
    }

    #[test]
    fn cdg_edge_cap_trips() {
        let g = Budget::new().max_cdg_edges(10).start();
        g.check_cdg_edges(10).unwrap();
        assert!(g.check_cdg_edges(11).is_err());
    }

    #[test]
    fn layer_cap_clamps_instead_of_failing() {
        let g = Budget::new().max_layers(2).start();
        assert_eq!(g.clamp_layers(8), 2);
        assert_eq!(g.clamp_layers(1), 1);
        let g = Budget::new().max_layers(0).start();
        assert_eq!(g.clamp_layers(8), 1, "cap never drops below 1");
    }
}
