//! Single-source-shortest-path routing (the paper's Algorithm 1).
//!
//! SSSP routing globally balances the number of routes per channel: it
//! iterates over all destinations, computes a weighted shortest-path tree
//! toward each, programs the forwarding tables from the tree, and then
//! increments every tree channel's weight by the number of routed paths
//! crossing it. Later iterations therefore steer around channels that
//! already carry many routes.
//!
//! **Minimality.** Weights start at a base `W0` large enough that no
//! accumulated balancing weight can ever make a hop-longer path cheaper
//! (§II of the paper; we use `W0 = |N|² · (d+2)` with `d` the diameter,
//! which strengthens the paper's bound to hold across all iterations —
//! see DESIGN.md §6.1). Setting [`Sssp::minimal`] to `false` reproduces
//! the paper's Fig 1 detour anomaly.
//!
//! **Ordering.** Like OpenSM's implementation, destinations are the
//! terminals in index order, and weight updates count terminal-to-terminal
//! paths (switch-sourced traffic does not exist in operation).
//!
//! **Parallelism.** Each destination's tree depends on the weights left
//! by all previous destinations, so the sweep is not embarrassingly
//! parallel. [`Sssp::route_with_weights_in`] runs a *chunked
//! deterministic wavefront*: destinations are processed in chunks of
//! [`ComputeCtx::chunk`]; the trees of one chunk are computed in
//! parallel against the chunk-start weight snapshot, then tables and
//! weight updates are applied sequentially in destination order. The
//! output is a function of the chunk width alone — never of the thread
//! count or the schedule — and `chunk = 1` reproduces the paper's
//! sequential algorithm byte for byte.

use crate::budget::BudgetGuard;
use crate::dijkstra::spt_to;
use crate::engine::{record_par_stats, ComputeCtx, RouteError, RoutingEngine};
use crate::pool::map_stealing;
use fabric::{Network, Routes};
use telemetry::Recorder;

/// The SSSP routing engine (not deadlock-free; see [`crate::DfSssp`]).
#[derive(Clone, Debug)]
pub struct Sssp {
    /// Force minimal (shortest-hop) paths via a large base weight.
    pub minimal: bool,
}

impl Default for Sssp {
    fn default() -> Self {
        Sssp { minimal: true }
    }
}

impl Sssp {
    /// Minimal-path SSSP, the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The base edge weight `W0` used for minimality.
    pub fn base_weight(&self, net: &Network) -> u64 {
        if !self.minimal {
            return 1;
        }
        let n = net.num_nodes() as u64;
        let d = net.diameter().unwrap_or(net.num_nodes()) as u64;
        n * n * (d + 2)
    }

    /// Run Algorithm 1, returning the tables and the final channel
    /// weights (the weights are exposed for tests and diagnostics).
    pub fn route_with_weights(&self, net: &Network) -> Result<(Routes, Vec<u64>), RouteError> {
        self.route_with_weights_budgeted(net, &BudgetGuard::unlimited())
    }

    /// [`Sssp::route_with_weights`] under a [`BudgetGuard`]: the
    /// deadline is checked before each destination chunk's shortest-path
    /// trees (the expensive unit of Algorithm 1), so a run over a
    /// hostile or oversized network stops within one chunk of its
    /// deadline.
    pub fn route_with_weights_budgeted(
        &self,
        net: &Network,
        guard: &BudgetGuard,
    ) -> Result<(Routes, Vec<u64>), RouteError> {
        self.route_with_weights_in(net, guard, &ComputeCtx::seq(), &*telemetry::noop())
    }

    /// The chunked deterministic wavefront (see the module docs): the
    /// shortest-path trees of each `cx.chunk`-wide destination chunk are
    /// fanned across `cx.threads` pool workers against the chunk-start
    /// weight snapshot; table programming and weight updates then run
    /// sequentially in destination order, so the routes depend only on
    /// `cx.chunk`. Pool counters land on `rec` (`par_tasks`,
    /// `steal_count`, `par_worker_us`), only when a chunk actually fans
    /// out.
    pub fn route_with_weights_in(
        &self,
        net: &Network,
        guard: &BudgetGuard,
        cx: &ComputeCtx,
        rec: &dyn Recorder,
    ) -> Result<(Routes, Vec<u64>), RouteError> {
        guard.admit(net)?;
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        let w0 = self.base_weight(net);
        let mut weights = vec![w0; net.num_channels()];
        let mut routes = Routes::new(net, self.name());
        let mut subtree = vec![0u64; net.num_nodes()];
        let terminals = net.terminals();
        let chunk = cx.chunk.max(1);
        for start in (0..terminals.len()).step_by(chunk) {
            guard.check_deadline()?;
            let end = (start + chunk).min(terminals.len());
            // All trees of this chunk see the same weight snapshot; the
            // slot discipline of `map_stealing` returns them in
            // destination order whatever the workers did.
            let (spts, stats) = map_stealing(end - start, cx.threads, |i| {
                spt_to(net, terminals[start + i], &weights)
            });
            if end - start > 1 && cx.parallel() {
                record_par_stats(rec, &stats);
            }
            for (i, spt) in spts.iter().enumerate() {
                let dst_t = start + i;
                let dst = terminals[dst_t];
                // Program tables along the tree.
                for (id, _) in net.nodes() {
                    if let Some(c) = spt.parent[id.idx()] {
                        routes.set_next(id, dst_t, c);
                    }
                }
                // Weight update: each channel gains the number of
                // terminal-to-dst paths crossing it. Accumulate subtree
                // sizes in reverse settle order (children strictly after
                // parents in pop order, so reverse order sees children
                // first).
                subtree.iter_mut().for_each(|s| *s = 0);
                for &v in spt.pop_order.iter().rev() {
                    if net.is_terminal(v) && v != dst {
                        subtree[v.idx()] += 1;
                    }
                    if let Some(c) = spt.parent[v.idx()] {
                        let u = net.channel(c).dst;
                        let count = subtree[v.idx()];
                        subtree[u.idx()] += count;
                        weights[c.idx()] += count;
                    }
                }
            }
        }
        Ok((routes, weights))
    }
}

impl RoutingEngine for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
        self.route_with_weights_in(net, &BudgetGuard::unlimited(), cx, &*telemetry::noop())
            .map(|(r, _)| r)
    }

    fn deadlock_free(&self) -> bool {
        false
    }
}

/// Per-destination loads under plain (unbalanced, unit-weight) shortest
/// paths, used as a comparison point in tests and ablations: runs the same
/// table construction with constant weights and no updates. Uses every
/// available core; with no weight feedback the destinations really are
/// independent, so any thread count yields identical routes.
pub fn unbalanced_shortest_paths(net: &Network) -> Result<Routes, RouteError> {
    unbalanced_shortest_paths_in(net, &ComputeCtx::new(0, 0))
}

/// [`unbalanced_shortest_paths`] under an explicit compute context.
pub fn unbalanced_shortest_paths_in(net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
    if !net.is_strongly_connected() {
        return Err(RouteError::Disconnected);
    }
    let weights = vec![1u64; net.num_channels()];
    let terminals = net.terminals();
    let (parents, _) = map_stealing(terminals.len(), cx.threads, |dst_t| {
        spt_to(net, terminals[dst_t], &weights).parent
    });
    let mut routes = Routes::new(net, "ShortestPath");
    for (dst_t, parents) in parents.into_iter().enumerate() {
        for (id, _) in net.nodes() {
            if let Some(c) = parents[id.idx()] {
                routes.set_next(id, dst_t, c);
            }
        }
    }
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;
    use fabric::NetworkBuilder;

    #[test]
    fn routes_all_pairs_on_torus() {
        let net = topo::torus(&[3, 3], 1);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        assert_eq!(routes.validate_connectivity(&net).unwrap(), 9 * 8);
    }

    #[test]
    fn paths_are_minimal() {
        let net = topo::kautz(2, 2, 12, true);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        for &dst in net.terminals() {
            let hops = net.hops_to(dst);
            for &src in net.terminals() {
                if src == dst {
                    continue;
                }
                let len = routes.path_channels(&net, src, dst).unwrap().len();
                assert_eq!(len as u32, hops[src.idx()], "{src:?}->{dst:?}");
            }
        }
    }

    #[test]
    fn balancing_beats_unbalanced_max_load() {
        // On a fat tree the unbalanced variant funnels everything through
        // the first-found root; SSSP must spread the load.
        let net = topo::kary_ntree(4, 2);
        let balanced = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let unbalanced = unbalanced_shortest_paths(&net).unwrap();
        let max_b = *balanced.channel_loads(&net).unwrap().iter().max().unwrap();
        let max_u = *unbalanced
            .channel_loads(&net)
            .unwrap()
            .iter()
            .max()
            .unwrap();
        assert!(
            max_b < max_u,
            "balanced max load {max_b} should beat unbalanced {max_u}"
        );
    }

    /// The paper's Figure 1 phenomenon: with unit initial weights, the
    /// balancing weight accumulated while routing toward earlier
    /// destinations makes a later search take a hop-longer detour; the
    /// minimality initialization (`W0 = |N|²·(d+2)`) prevents this.
    #[test]
    fn figure1_weight_update() {
        // Triangle v1-v2 plus two-hop alternative v2-v3-v1. Five terminal
        // pairs across the v2->v1 edge load it; destination x2 (processed
        // after x1) then detours via v3 when weights start at 1.
        let mut b = NetworkBuilder::new();
        let v1 = b.add_switch("v1", 16);
        let v2 = b.add_switch("v2", 16);
        let v3 = b.add_switch("v3", 16);
        b.link(v1, v2).unwrap();
        b.link(v2, v3).unwrap();
        b.link(v3, v1).unwrap();
        // Creation order fixes destination order: x* at v1 first.
        for i in 0..2 {
            let t = b.add_terminal(format!("x{i}"));
            b.link(t, v1).unwrap();
        }
        for i in 0..5 {
            let t = b.add_terminal(format!("y{i}"));
            b.link(t, v2).unwrap();
        }
        let z = b.add_terminal("z");
        b.link(z, v3).unwrap();
        let net = b.build();

        // Non-minimal configuration can produce non-shortest paths.
        let routes = Sssp { minimal: false }
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let mut any_detour = false;
        for &dst in net.terminals() {
            let hops = net.hops_to(dst);
            for &src in net.terminals() {
                if src == dst {
                    continue;
                }
                let len = routes.path_channels(&net, src, dst).unwrap().len() as u32;
                if len > hops[src.idx()] {
                    any_detour = true;
                }
            }
        }
        assert!(any_detour, "unit initial weights must allow detours");

        // Minimal configuration never does.
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        for &dst in net.terminals() {
            let hops = net.hops_to(dst);
            for &src in net.terminals() {
                if src == dst {
                    continue;
                }
                let len = routes.path_channels(&net, src, dst).unwrap().len() as u32;
                assert_eq!(len, hops[src.idx()]);
            }
        }
    }

    #[test]
    fn weight_updates_count_paths() {
        // Line: t0-s0-s1-t1; after routing, the s0->s1 channel carries
        // exactly the t0->t1 path, so its weight grew by 1; and s1->s0 by
        // one for t1->t0.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(t0, s0).unwrap();
        b.link(s0, s1).unwrap();
        b.link(t1, s1).unwrap();
        let net = b.build();
        let engine = Sssp::new();
        let w0 = engine.base_weight(&net);
        let (_, weights) = engine.route_with_weights(&net).unwrap();
        let c01 = net.channel_between(s0, s1).unwrap();
        let c10 = net.channel_between(s1, s0).unwrap();
        assert_eq!(weights[c01.idx()], w0 + 1);
        assert_eq!(weights[c10.idx()], w0 + 1);
        // Terminal injection channel t0->s0 carries t0's paths to both
        // other terminals... only t1 exists, so +1; s0->t0 carries t1->t0.
        let inj = net.channel_between(t0, s0).unwrap();
        assert_eq!(weights[inj.idx()], w0 + 1);
    }

    #[test]
    fn disconnected_network_is_rejected() {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let s1 = b.add_switch("s1", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        let net = b.build();
        assert_eq!(
            Sssp::new()
                .route_in(&net, &crate::ComputeCtx::seq())
                .unwrap_err(),
            RouteError::Disconnected
        );
        assert!(unbalanced_shortest_paths(&net).is_err());
    }
}
