//! Routing-quality report: the summary numbers by which the paper judges
//! a routing function (path minimality, link-load balance) in one place.

use crate::engine::RouteError;
use fabric::{Network, NodeKind, Routes};

/// Quality summary of a routing on a network.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteQuality {
    /// Mean path length (hops) over ordered terminal pairs.
    pub avg_path_len: f64,
    /// Longest routed path.
    pub max_path_len: usize,
    /// Fraction of pairs routed hop-minimally.
    pub minimal_fraction: f64,
    /// Largest number of routes on any inter-switch channel.
    pub max_interswitch_load: u32,
    /// Mean routes per inter-switch channel (idle channels included —
    /// a funneling routing leaves capacity unused, and that shows here).
    pub mean_interswitch_load: f64,
    /// `max / mean` over all inter-switch channels — the balance figure
    /// SSSP's weight updates minimize (1.0 = perfectly even use of the
    /// whole fabric).
    pub load_imbalance: f64,
    /// Virtual layers the routing uses.
    pub layers: u8,
}

/// Compute the quality report for `routes` on `net`.
pub fn route_quality(net: &Network, routes: &Routes) -> Result<RouteQuality, RouteError> {
    let mut total_hops = 0usize;
    let mut pairs = 0usize;
    let mut max_len = 0usize;
    let mut minimal = 0usize;
    for &dst in net.terminals() {
        let hops = net.hops_to(dst);
        for &src in net.terminals() {
            if src == dst {
                continue;
            }
            let len = routes
                .path_channels(net, src, dst)
                .map_err(|_| RouteError::Disconnected)?
                .len();
            total_hops += len;
            max_len = max_len.max(len);
            if len as u32 == hops[src.idx()] {
                minimal += 1;
            }
            pairs += 1;
        }
    }
    let loads = routes
        .channel_loads(net)
        .map_err(|_| RouteError::Disconnected)?;
    let inter: Vec<u32> = net
        .channels()
        .filter(|(_, ch)| {
            net.node(ch.src).kind == NodeKind::Switch && net.node(ch.dst).kind == NodeKind::Switch
        })
        .map(|(id, _)| loads[id.idx()])
        .collect();
    let max_load = inter.iter().copied().max().unwrap_or(0);
    let mean_load = if inter.is_empty() {
        0.0
    } else {
        inter.iter().map(|&l| l as f64).sum::<f64>() / inter.len() as f64
    };
    Ok(RouteQuality {
        avg_path_len: total_hops as f64 / pairs.max(1) as f64,
        max_path_len: max_len,
        minimal_fraction: minimal as f64 / pairs.max(1) as f64,
        max_interswitch_load: max_load,
        mean_interswitch_load: mean_load,
        load_imbalance: if mean_load > 0.0 {
            max_load as f64 / mean_load
        } else {
            1.0
        },
        layers: routes.num_layers(),
    })
}

impl std::fmt::Display for RouteQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "paths avg {:.2} / max {} hops ({:.0}% minimal), inter-switch load max {} / mean {:.1} (imbalance {:.2}), {} VLs",
            self.avg_path_len,
            self.max_path_len,
            self.minimal_fraction * 100.0,
            self.max_interswitch_load,
            self.mean_interswitch_load,
            self.load_imbalance,
            self.layers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::sssp::{unbalanced_shortest_paths, Sssp};
    use crate::DfSssp;
    use fabric::topo;

    #[test]
    fn minimal_engines_report_full_minimality() {
        let net = topo::torus(&[4, 4], 1);
        let q = route_quality(
            &net,
            &Sssp::new()
                .route_in(&net, &crate::ComputeCtx::seq())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(q.minimal_fraction, 1.0);
        assert!(q.avg_path_len >= 2.0);
        assert_eq!(q.layers, 1);
    }

    #[test]
    fn balancing_shows_in_the_imbalance_figure() {
        let net = topo::kary_ntree(4, 2);
        let balanced = route_quality(
            &net,
            &Sssp::new()
                .route_in(&net, &crate::ComputeCtx::seq())
                .unwrap(),
        )
        .unwrap();
        let plain = route_quality(&net, &unbalanced_shortest_paths(&net).unwrap()).unwrap();
        assert!(
            balanced.load_imbalance < plain.load_imbalance,
            "balanced {:.2} vs plain {:.2}",
            balanced.load_imbalance,
            plain.load_imbalance
        );
        // Same path lengths either way (both minimal).
        assert_eq!(balanced.avg_path_len, plain.avg_path_len);
    }

    #[test]
    fn dfsssp_matches_sssp_quality_plus_layers() {
        let net = topo::torus(&[3, 3], 1);
        let s = route_quality(
            &net,
            &Sssp::new()
                .route_in(&net, &crate::ComputeCtx::seq())
                .unwrap(),
        )
        .unwrap();
        let d = route_quality(
            &net,
            &DfSssp::new()
                .route_in(&net, &crate::ComputeCtx::seq())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(s.avg_path_len, d.avg_path_len);
        assert_eq!(s.max_interswitch_load, d.max_interswitch_load);
        assert!(d.layers >= s.layers);
    }

    #[test]
    fn display_is_compact() {
        let net = topo::ring(4, 1);
        let q = route_quality(
            &net,
            &Sssp::new()
                .route_in(&net, &crate::ComputeCtx::seq())
                .unwrap(),
        )
        .unwrap();
        let s = q.to_string();
        assert!(s.contains("minimal"));
        assert!(s.contains("VLs"));
    }
}
