//! Deadlock-freedom and routing-quality verification.
//!
//! [`verify_deadlock_free`] checks the Dally & Seitz sufficient condition
//! the whole paper rests on: for every virtual layer, the channel
//! dependency graph induced by the paths assigned to that layer must be
//! acyclic. It is routing-engine agnostic — it rebuilds the CDGs from the
//! forwarding tables, so it catches bookkeeping bugs in the engines too.

use crate::cdg::Cdg;
use fabric::{Network, NodeId, Routes, RoutesError};

/// Per-layer acyclicity report.
#[derive(Clone, Debug, Default)]
pub struct DeadlockReport {
    /// Layers that contain a dependency cycle (deadlock hazard).
    pub cyclic_layers: Vec<u8>,
    /// Paths per layer.
    pub paths_per_layer: Vec<usize>,
    /// CDG edges per layer.
    pub edges_per_layer: Vec<usize>,
}

impl DeadlockReport {
    /// Whether the routing satisfies the sufficient condition.
    pub fn is_deadlock_free(&self) -> bool {
        self.cyclic_layers.is_empty()
    }
}

/// Build the per-layer CDGs from `routes` and check each for cycles.
pub fn deadlock_report(net: &Network, routes: &Routes) -> Result<DeadlockReport, RoutesError> {
    let layers = routes.num_layers() as usize;
    let mut cdgs: Vec<Cdg> = (0..layers).map(|_| Cdg::new(net.num_channels())).collect();
    let mut paths_per_layer = vec![0usize; layers];
    for (src_t, &src) in net.terminals().iter().enumerate() {
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            if src == dst {
                continue;
            }
            let layer = routes.layer(src_t, dst_t) as usize;
            paths_per_layer[layer] += 1;
            let mut prev = None;
            for step in routes.path(net, src, dst)? {
                let c = step?;
                if let Some(p) = prev {
                    cdgs[layer].add_dependency(p, c.0);
                }
                prev = Some(c.0);
            }
        }
    }
    let mut report = DeadlockReport {
        paths_per_layer,
        ..Default::default()
    };
    for (l, cdg) in cdgs.iter().enumerate() {
        report.edges_per_layer.push(cdg.num_edges());
        if !cdg.is_acyclic() {
            report.cyclic_layers.push(l as u8);
        }
    }
    Ok(report)
}

/// Check deadlock freedom; `Err` carries the cyclic layers.
pub fn verify_deadlock_free(net: &Network, routes: &Routes) -> Result<(), Vec<u8>> {
    let report = deadlock_report(net, routes).map_err(|_| vec![])?;
    if report.is_deadlock_free() {
        Ok(())
    } else {
        Err(report.cyclic_layers)
    }
}

/// Check that every routed path is hop-minimal; returns the first
/// offending (src, dst) pair otherwise.
pub fn verify_minimal(net: &Network, routes: &Routes) -> Result<(), (NodeId, NodeId)> {
    for &dst in net.terminals() {
        let hops = net.hops_to(dst);
        for &src in net.terminals() {
            if src == dst {
                continue;
            }
            let len = match routes.path_channels(net, src, dst) {
                Ok(p) => p.len() as u32,
                Err(_) => return Err((src, dst)),
            };
            if len != hops[src.idx()] {
                return Err((src, dst));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::{DfSssp, Sssp};
    use fabric::topo;

    #[test]
    fn sssp_on_ring_is_flagged() {
        let net = topo::ring(5, 1);
        let routes = Sssp::new().route(&net).unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert!(!report.is_deadlock_free());
        assert_eq!(report.cyclic_layers, vec![0]);
    }

    #[test]
    fn dfsssp_on_ring_passes() {
        let net = topo::ring(5, 1);
        let routes = DfSssp::new().route(&net).unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert!(report.is_deadlock_free());
        // All paths accounted for.
        let total: usize = report.paths_per_layer.iter().sum();
        assert_eq!(total, 5 * 4);
    }

    #[test]
    fn sssp_on_tree_passes_without_layers() {
        let net = topo::kary_ntree(2, 2);
        let routes = Sssp::new().route(&net).unwrap();
        assert!(verify_deadlock_free(&net, &routes).is_ok());
    }

    #[test]
    fn minimality_verified() {
        let net = topo::torus(&[4, 4], 1);
        let routes = Sssp::new().route(&net).unwrap();
        verify_minimal(&net, &routes).unwrap();
        let routes = DfSssp::new().route(&net).unwrap();
        verify_minimal(&net, &routes).unwrap();
    }

    #[test]
    fn report_counts_edges() {
        let net = topo::ring(4, 1);
        let routes = DfSssp::new().route(&net).unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert_eq!(report.edges_per_layer.len(), routes.num_layers() as usize);
        assert!(report.edges_per_layer.iter().sum::<usize>() > 0);
    }
}
