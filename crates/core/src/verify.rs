//! Deadlock-freedom and routing-quality verification.
//!
//! [`verify_deadlock_free`] checks the Dally & Seitz sufficient condition
//! the whole paper rests on: for every virtual layer, the channel
//! dependency graph induced by the paths assigned to that layer must be
//! acyclic. Since PR "vet" the heavy lifting lives in the [`vet`] static
//! analyzer — this module is a thin adapter that keeps the engine-facing
//! API (and distinguishes *broken tables* from *deadlock hazards* instead
//! of conflating the two).

use fabric::{ChannelId, Network, NodeId, Routes};

/// Why verification failed.
#[derive(Clone, Debug)]
pub enum VerifyError {
    /// The forwarding tables are broken (loop, missing entry, invalid
    /// next hop) before deadlock freedom is even a question. Carries the
    /// analyzer's first error finding with its witness.
    BrokenTables(vet::Diagnostic),
    /// The tables walk fine but some layer's dependency graph is cyclic.
    DeadlockHazard {
        /// Layers containing a dependency cycle, ascending.
        cyclic_layers: Vec<u8>,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BrokenTables(d) => write!(f, "broken forwarding tables: {d}"),
            VerifyError::DeadlockHazard { cyclic_layers } => {
                write!(
                    f,
                    "cyclic channel dependencies in layer(s) {cyclic_layers:?}"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Per-layer acyclicity report.
#[derive(Clone, Debug, Default)]
pub struct DeadlockReport {
    /// Layers that contain a dependency cycle (deadlock hazard).
    pub cyclic_layers: Vec<u8>,
    /// Routed paths per layer.
    pub paths_per_layer: Vec<usize>,
    /// CDG edges per layer.
    pub edges_per_layer: Vec<usize>,
    /// One witness cycle per cyclic layer: the actual channel sequence
    /// (consecutive channels hold a dependency; the last feeds the first).
    pub cycles: Vec<(u8, Vec<ChannelId>)>,
}

impl DeadlockReport {
    /// Whether the routing satisfies the sufficient condition.
    pub fn is_deadlock_free(&self) -> bool {
        self.cyclic_layers.is_empty()
    }
}

/// Build the per-layer CDGs from `routes` and check each for cycles.
///
/// Delegates to [`vet::analyze_with`]: one colored table walk per
/// destination classifies every node and collects dependency edges, so the
/// whole check is O(destinations · V) instead of O(pairs · path length).
/// Broken tables surface as [`VerifyError::BrokenTables`] — they are *not*
/// an empty report.
pub fn deadlock_report(net: &Network, routes: &Routes) -> Result<DeadlockReport, VerifyError> {
    let cfg = vet::Config {
        // Cyclic layers are this function's *result*, not an error; and
        // minimality is verify_minimal's concern. Existence (V007) is a
        // question about the network, not this artifact — callers who
        // care ask `vet::existence` directly.
        deadlock_error: false,
        check_minimal: false,
        check_existence: false,
        ..vet::Config::default()
    };
    let report = vet::analyze_with(net, routes, &cfg);
    if let Some(d) = report
        .diagnostics
        .iter()
        .find(|d| d.severity == vet::Severity::Error)
    {
        return Err(VerifyError::BrokenTables(d.clone()));
    }
    let cycles = report
        .diagnostics
        .iter()
        .filter_map(|d| match &d.witness {
            vet::Witness::CdgCycle { layer, channels } => Some((*layer, channels.clone())),
            _ => None,
        })
        .collect();
    Ok(DeadlockReport {
        cyclic_layers: report.stats.cyclic_layers,
        paths_per_layer: report.stats.paths_per_layer,
        edges_per_layer: report.stats.edges_per_layer,
        cycles,
    })
}

/// Check deadlock freedom. Broken tables and cyclic layers produce
/// distinct [`VerifyError`] variants (historically both collapsed into an
/// unhelpful `Vec<u8>`, hiding table corruption as "no cyclic layers").
pub fn verify_deadlock_free(net: &Network, routes: &Routes) -> Result<(), VerifyError> {
    let report = deadlock_report(net, routes)?;
    if report.is_deadlock_free() {
        Ok(())
    } else {
        Err(VerifyError::DeadlockHazard {
            cyclic_layers: report.cyclic_layers,
        })
    }
}

/// Check that every routed path is hop-minimal; returns the first
/// offending (src, dst) pair otherwise. Pairs that cannot be walked at
/// all also fail.
pub fn verify_minimal(net: &Network, routes: &Routes) -> Result<(), (NodeId, NodeId)> {
    let cfg = vet::Config {
        deadlock_error: false,
        check_minimal: true,
        ..vet::Config::default()
    };
    let report = vet::analyze_with(net, routes, &cfg);
    if let Some(&pair) = report.stats.broken_pairs.first() {
        return Err(pair);
    }
    if let Some(vet::Witness::Stretch { src, dst, .. }) = report
        .diagnostics_for(vet::LintCode::NonMinimalPath)
        .map(|d| &d.witness)
        .next()
    {
        return Err((*src, *dst));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::{DfSssp, Sssp};
    use fabric::topo;

    #[test]
    fn sssp_on_ring_is_flagged() {
        let net = topo::ring(5, 1);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert!(!report.is_deadlock_free());
        assert_eq!(report.cyclic_layers, vec![0]);
        // The hazard comes with a concrete witness cycle.
        let (layer, cycle) = &report.cycles[0];
        assert_eq!(*layer, 0);
        assert!(!cycle.is_empty());
        for w in cycle.windows(2) {
            assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
        }
        assert_eq!(
            net.channel(*cycle.last().unwrap()).dst,
            net.channel(cycle[0]).src
        );
    }

    #[test]
    fn dfsssp_on_ring_passes() {
        let net = topo::ring(5, 1);
        let routes = DfSssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert!(report.is_deadlock_free());
        assert!(report.cycles.is_empty());
        // All paths accounted for.
        let total: usize = report.paths_per_layer.iter().sum();
        assert_eq!(total, 5 * 4);
    }

    #[test]
    fn sssp_on_tree_passes_without_layers() {
        let net = topo::kary_ntree(2, 2);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        assert!(verify_deadlock_free(&net, &routes).is_ok());
    }

    #[test]
    fn minimality_verified() {
        let net = topo::torus(&[4, 4], 1);
        let routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        verify_minimal(&net, &routes).unwrap();
        let routes = DfSssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        verify_minimal(&net, &routes).unwrap();
    }

    #[test]
    fn report_counts_edges() {
        let net = topo::ring(4, 1);
        let routes = DfSssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert_eq!(report.edges_per_layer.len(), routes.num_layers() as usize);
        assert!(report.edges_per_layer.iter().sum::<usize>() > 0);
    }

    #[test]
    fn broken_tables_are_an_error_not_a_pass() {
        let net = topo::ring(5, 1);
        let mut routes = DfSssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        // Scrub one switch's entry toward terminal 0: the walk breaks.
        let sw = net.switches()[0];
        routes.clear_next(sw, 0);
        let err = verify_deadlock_free(&net, &routes).unwrap_err();
        assert!(
            matches!(err, VerifyError::BrokenTables(_)),
            "table corruption must not report as deadlock-free: {err}"
        );
        // And a cyclic CDG is the *other* variant.
        let sssp = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let err = verify_deadlock_free(&net, &sssp).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::DeadlockHazard { ref cyclic_layers } if cyclic_layers == &vec![0]
        ));
    }

    #[test]
    fn minimality_failure_names_the_pair() {
        let net = topo::ring(5, 1);
        let mut routes = Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let sw = net.switches()[0];
        routes.clear_next(sw, 0);
        let (src, dst) = verify_minimal(&net, &routes).unwrap_err();
        assert!(net.is_terminal(src));
        assert_eq!(dst, net.terminals()[0]);
    }
}
