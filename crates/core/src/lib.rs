//! DFSSSP: deadlock-free single-source-shortest-path routing.
//!
//! This crate implements the primary contribution of *Deadlock-Free
//! Oblivious Routing for Arbitrary Topologies* (Domke, Hoefler, Nagel,
//! IPDPS 2011):
//!
//! * [`sssp`] — the balanced single-source-shortest-path routing the paper
//!   builds on (its Algorithm 1).
//! * [`cdg`] — channel dependency graphs with per-edge path bookkeeping and
//!   a resumable cycle search (the machinery of §III/§IV).
//! * [`app`] — the acyclic path partitioning (APP) problem: the formal
//!   model (§III-A), an exact solver for small instances, and the
//!   graph-coloring reduction used in the NP-completeness proof
//!   (Theorem 1).
//! * [`dfsssp`] — deadlock-free SSSP (Algorithm 2): the offline
//!   cycle-breaking layer assignment, the online LASH-style variant, and
//!   the layer-balancing step.
//! * [`heuristics`] — the three cycle-break heuristics of §IV (weakest
//!   edge, heaviest edge, first edge).
//! * [`verify`] — deadlock-freedom verification via the Dally & Seitz
//!   condition (per-layer CDG acyclicity) plus routing sanity checks.
//!
//! The crate exposes a single entry point for algorithms, the
//! [`RoutingEngine`] trait, producing [`fabric::Routes`] that the
//! simulator crates consume.

pub mod app;
pub mod balance;
pub mod budget;
pub mod cdg;
pub mod dfsssp;
pub mod dijkstra;
pub mod engine;
pub mod heuristics;
#[cfg(all(test, feature = "loom-tests"))]
mod models;
pub mod paths;
pub mod pool;
pub mod quality;
pub mod sssp;
pub mod sync;
pub mod verify;
pub mod wrapper;

pub use budget::{Budget, BudgetGuard};
pub use dfsssp::{DfSssp, LayerAssignMode};
pub use engine::{
    record_route_metrics, ComputeCtx, ComputeOpts, EngineConfig, Recorded, RouteError,
    RoutingEngine, DEFAULT_PAR_CHUNK,
};
pub use heuristics::CycleBreakHeuristic;
pub use quality::{route_quality, RouteQuality};
pub use sssp::Sssp;
pub use wrapper::DeadlockFree;
