//! Exhaustive interleaving models of the work-stealing deques, checked
//! with [`weave`] (compiled only under `--features loom-tests`).
//!
//! The production [`StealQueues`] type is driven directly — its mutexes
//! come from the [`crate::sync`] shim, so every lock acquisition is a
//! scheduling point the checker explores. The property is the one
//! [`crate::pool::map_stealing`]'s determinism rests on: *every index is
//! claimed exactly once, under every schedule*, including the schedules
//! where an owner's pop races a thief's steal on the same deque.
//!
//! A mutant accompanies the model: a steal that reads the victim's front
//! and pops in two separate lock acquisitions (the classic check-then-act
//! race). The checker must refute it — that failure pins the model's
//! power, so a refactor weakening the protocol trips the mutant first.

use crate::pool::StealQueues;
use crate::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use crate::sync::{Arc, Mutex};
use std::collections::VecDeque;
use weave::{thread, Builder};

/// Full-DFS builder for 2-thread models (trees stay small).
fn exhaustive() -> Builder {
    Builder::default()
}

#[test]
fn every_index_claimed_exactly_once() {
    let report = exhaustive()
        .check(|| {
            // 3 items over 2 workers: worker 0 owns [0, 1], worker 1
            // owns [2]. Worker 1 goes dry first and steals from the
            // back of worker 0's deque while worker 0 pops its front —
            // the steal/pop race on one shared deque.
            let queues = Arc::new(StealQueues::new(3, 2));
            let marks = Arc::new([
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ]);
            let handles: Vec<_> = (0..2)
                .map(|w| {
                    let queues = Arc::clone(&queues);
                    let marks = Arc::clone(&marks);
                    thread::spawn(move || {
                        while let Some(i) = queues.next(w) {
                            marks[i].fetch_add(1, SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for (i, m) in marks.iter().enumerate() {
                assert_eq!(
                    m.load(SeqCst),
                    1,
                    "index {i} claimed {} times",
                    m.load(SeqCst)
                );
            }
        })
        .expect("exactly-once claiming must hold under every schedule");
    assert!(report.executions > 1, "the model must branch");
}

/// Mutant deque set: steal reads the victim's back element and removes
/// it under *two* lock acquisitions. Two concurrent thieves (or a thief
/// racing the owner) can both observe the same element before either
/// removes it — the race [`StealQueues::next`]'s single-lock claim
/// prevents.
struct ToctouQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl ToctouQueues {
    fn new() -> ToctouQueues {
        // One shared victim deque; both model threads act as thieves.
        ToctouQueues {
            deques: vec![Mutex::new(VecDeque::from([7, 8]))],
        }
    }

    fn steal(&self) -> Option<usize> {
        // BUG (deliberate): check-then-act across two critical sections.
        let peeked = *self.deques[0].lock().unwrap().back()?;
        self.deques[0].lock().unwrap().pop_back();
        Some(peeked)
    }
}

#[test]
fn two_phase_steal_mutant_is_refuted() {
    exhaustive()
        .check(|| {
            let queues = Arc::new(ToctouQueues::new());
            let marks = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let queues = Arc::clone(&queues);
                    let marks = Arc::clone(&marks);
                    thread::spawn(move || {
                        while let Some(i) = queues.steal() {
                            marks[i - 7].fetch_add(1, SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(marks[0].load(SeqCst), 1);
            assert_eq!(marks[1].load(SeqCst), 1);
        })
        .expect_err("a two-phase steal must double-claim on some schedule");
}
