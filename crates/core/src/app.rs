//! The acyclic path partitioning (APP) problem (§III-A, Theorem 1).
//!
//! Given a *generator* `P` — a set of paths over channel-nodes — decide
//! whether `P` can be partitioned into `k` classes such that each class's
//! induced graph is acyclic. The paper proves this NP-complete by
//! reduction from graph k-colorability; this module provides
//!
//! * the formal objects ([`AppPath`], [`Generator`], cover checking),
//! * an exact exponential solver for small instances
//!   ([`Generator::min_cover`]), used to validate the heuristics,
//! * the proof's polynomial transformation from graph coloring
//!   ([`coloring_to_app`]) together with the two directions of its
//!   correctness argument as executable checks.

use rustc_hash::{FxHashMap, FxHashSet};

/// A path in the channel dependency graph: a sequence of distinct nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppPath {
    nodes: Vec<u32>,
}

impl AppPath {
    /// Create a path; panics if nodes repeat (paths are simple by
    /// definition: `c_i ≠ c_j` for `i ≠ j`).
    pub fn new(nodes: Vec<u32>) -> AppPath {
        let mut seen = FxHashSet::default();
        for &n in &nodes {
            assert!(seen.insert(n), "APP paths must not repeat nodes");
        }
        AppPath { nodes }
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// The directed edges `(c_i, c_(i+1))` of the path.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}

/// A generator: the set of paths whose union induces the CDG.
#[derive(Clone, Debug, Default)]
pub struct Generator {
    paths: Vec<AppPath>,
}

impl Generator {
    /// Generator from explicit paths.
    pub fn new(paths: Vec<AppPath>) -> Generator {
        Generator { paths }
    }

    /// Number of paths `|P|`.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the generator has no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The paths.
    pub fn paths(&self) -> &[AppPath] {
        &self.paths
    }

    /// Whether the subset of paths selected by `member` induces an
    /// acyclic graph.
    pub fn subset_acyclic(&self, member: impl Fn(usize) -> bool) -> bool {
        let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut nodes: FxHashSet<u32> = FxHashSet::default();
        for (i, p) in self.paths.iter().enumerate() {
            if !member(i) {
                continue;
            }
            for &n in p.nodes() {
                nodes.insert(n);
            }
            for (a, b) in p.edges() {
                adj.entry(a).or_default().push(b);
            }
        }
        // Iterative 3-color DFS.
        let mut color: FxHashMap<u32, u8> = FxHashMap::default();
        for &start in &nodes {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color.insert(start, 1);
            while let Some(&mut (n, ref mut pos)) = stack.last_mut() {
                let next = adj.get(&n).and_then(|v| v.get(*pos)).copied();
                *pos += 1;
                match next {
                    None => {
                        color.insert(n, 2);
                        stack.pop();
                    }
                    Some(m) => match color.get(&m).copied().unwrap_or(0) {
                        0 => {
                            color.insert(m, 1);
                            stack.push((m, 0));
                        }
                        1 => return false,
                        _ => {}
                    },
                }
            }
        }
        true
    }

    /// Whether `assignment` (class per path, values `< k`) is a valid
    /// cover: non-empty classes are allowed to be checked loosely — the
    /// formal definition's conditions (ii) totality and (iii) disjointness
    /// hold by construction of an assignment vector; we check (iv)
    /// acyclicity per class. Condition (i), non-emptiness, is checked so
    /// that `k` reflects the true class count.
    pub fn is_cover(&self, assignment: &[usize], k: usize) -> bool {
        if assignment.len() != self.paths.len() || k == 0 {
            return false;
        }
        if assignment.iter().any(|&c| c >= k) {
            return false;
        }
        for class in 0..k {
            if !assignment.contains(&class) {
                return false; // condition (i): P_i non-empty
            }
            if !self.subset_acyclic(|i| assignment[i] == class) {
                return false; // condition (iv)
            }
        }
        true
    }

    /// Exact minimum cover by backtracking. Exponential: intended for
    /// instances with at most ~a dozen paths (heuristic validation).
    /// Returns `(k, assignment)`; `None` if `self` is empty.
    pub fn min_cover(&self, max_k: usize) -> Option<(usize, Vec<usize>)> {
        if self.paths.is_empty() {
            return None;
        }
        for k in 1..=max_k.min(self.paths.len()) {
            let mut assignment = vec![usize::MAX; self.paths.len()];
            if self.try_assign(0, k, &mut assignment) {
                let used = assignment.iter().copied().max().unwrap() + 1;
                return Some((used, assignment));
            }
        }
        None
    }

    fn try_assign(&self, i: usize, k: usize, assignment: &mut Vec<usize>) -> bool {
        if i == self.paths.len() {
            return true;
        }
        // Symmetry breaking: path i may open at most one new class.
        let used = assignment[..i].iter().copied().max().map_or(0, |m| m + 1);
        for class in 0..k.min(used + 1) {
            assignment[i] = class;
            if self.subset_acyclic(|j| j <= i && assignment[j] == class)
                && self.try_assign(i + 1, k, assignment)
            {
                return true;
            }
        }
        assignment[i] = usize::MAX;
        false
    }
}

/// Bridge from the engine world: the APP instance of a routing's path
/// set. Only paths with at least two channels matter (shorter ones can
/// never lie on a dependency cycle and are dropped); the returned map
/// gives the [`crate::paths::PathId`] of each generator path.
pub fn from_pathset(ps: &crate::paths::PathSet) -> (Generator, Vec<crate::paths::PathId>) {
    let mut paths = Vec::new();
    let mut ids = Vec::new();
    for p in ps.ids() {
        let chans = ps.channels(p);
        if chans.len() < 2 {
            continue;
        }
        paths.push(AppPath::new(chans.iter().map(|c| c.0).collect()));
        ids.push(p);
    }
    (Generator::new(paths), ids)
}

/// A cheap lower bound on the minimum number of virtual layers: paths
/// that induce *opposite* CDG edges `(u, v)` and `(v, u)` can never share
/// a layer, so any mutually conflicting clique forces one layer each.
/// Returns the size of a greedily grown conflict clique (`>= 1`).
///
/// This bounds the paper's `∇` from below; the exact value is NP-complete
/// to compute (Theorem 1), and [`Generator::min_cover`] finds it for
/// small instances.
pub fn lower_bound_layers(g: &Generator) -> usize {
    if g.is_empty() {
        return 1;
    }
    // Edge -> first path using it; conflict adjacency between paths.
    let mut owner: FxHashMap<(u32, u32), Vec<usize>> = FxHashMap::default();
    for (i, p) in g.paths().iter().enumerate() {
        for e in p.edges() {
            owner.entry(e).or_default().push(i);
        }
    }
    let n = g.len();
    let mut conflicts: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); n];
    for (&(u, v), users) in &owner {
        if let Some(opposite) = owner.get(&(v, u)) {
            for &a in users {
                for &b in opposite {
                    if a != b {
                        conflicts[a].insert(b);
                        conflicts[b].insert(a);
                    }
                }
            }
        }
    }
    // Greedy clique: repeatedly add the path with the most conflicts
    // among remaining candidates.
    let mut clique: Vec<usize> = Vec::new();
    let mut candidates: Vec<usize> = (0..n).collect();
    while let Some(&best) = candidates.iter().max_by_key(|&&i| {
        conflicts[i]
            .iter()
            .filter(|x| candidates.contains(x))
            .count()
    }) {
        clique.push(best);
        candidates.retain(|&c| c != best && conflicts[best].contains(&c));
        if candidates.is_empty() {
            break;
        }
    }
    clique.len().max(1)
}

/// The proof's polynomial transformation (Theorem 1): build an APP
/// generator from a graph `G(V, E)` such that `G` is `k`-colorable iff
/// the generator has a `k`-cover.
///
/// For each undirected edge `e = {v, w}` the construction introduces the
/// two CDG nodes `⟨v,e⟩` and `⟨w,e⟩` — the paper's pair nodes. The path
/// `p_v` of a graph node `v` starts at a private node `v` and then, for
/// every incident edge `e = {v, w}`, traverses the segment
/// `⟨v,e⟩ → ⟨w,e⟩`. Thus:
///
/// * `(v, w) ∈ E` ⟹ `p_v` contains `⟨v,e⟩ → ⟨w,e⟩` while `p_w` contains
///   `⟨w,e⟩ → ⟨v,e⟩` — a 2-cycle, so the two paths cannot share a class
///   (the proof's proposition 1);
/// * `V' ⊆ V` independent ⟹ the paths `{p_v : v ∈ V'}` are pairwise
///   node-disjoint, so their union is a disjoint union of simple paths
///   and acyclic (proposition 2).
///
/// `n` is `|V|`; edges are undirected pairs with `a != b`, `a, b < n`.
pub fn coloring_to_app(n: u32, edges: &[(u32, u32)]) -> Generator {
    // Node ids: 0..n for the private path heads; pair nodes ⟨v,e⟩ after.
    let mut pair_id: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut next = n;
    let mut id_of = |v: u32, e: (u32, u32)| -> u32 {
        // Key a pair node by (endpoint, canonical edge); encode the edge
        // canonically as (min, max).
        let key = (v, (e.0.min(e.1) << 16) | e.0.max(e.1));
        *pair_id.entry(key).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    };
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n as usize];
    for &(a, b) in edges {
        assert!(a < n && b < n && a != b, "bad edge ({a},{b})");
        assert!(n <= u16::MAX as u32, "reduction supports up to 2^16 nodes");
        if !adj[a as usize].contains(&(a, b)) && !adj[a as usize].contains(&(b, a)) {
            adj[a as usize].push((a, b));
            adj[b as usize].push((b, a));
        }
    }
    let mut paths = Vec::with_capacity(n as usize);
    for v in 0..n {
        let mut nodes = vec![v];
        for &(x, w) in &adj[v as usize] {
            debug_assert_eq!(x, v);
            nodes.push(id_of(v, (v, w)));
            nodes.push(id_of(w, (v, w)));
        }
        paths.push(AppPath::new(nodes));
    }
    Generator::new(paths)
}

/// Brute-force graph k-colorability (reference implementation for the
/// reduction tests).
pub fn is_k_colorable(n: u32, edges: &[(u32, u32)], k: usize) -> bool {
    fn go(v: usize, n: usize, k: usize, edges: &[(u32, u32)], colors: &mut Vec<usize>) -> bool {
        if v == n {
            return true;
        }
        // Symmetry breaking as in Generator::try_assign.
        let used = colors[..v].iter().copied().max().map_or(0, |m| m + 1);
        for c in 0..k.min(used + 1) {
            if edges.iter().all(|&(a, b)| {
                let (a, b) = (a as usize, b as usize);
                !((a == v && b < v && colors[b] == c) || (b == v && a < v && colors[a] == c))
            }) {
                colors[v] = c;
                if go(v + 1, n, k, edges, colors) {
                    return true;
                }
            }
        }
        colors[v] = usize::MAX;
        false
    }
    let mut colors = vec![usize::MAX; n as usize];
    go(0, n as usize, k, edges, &mut colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathset_bridge_and_bounds_agree_on_ring() {
        // 5-ring SSSP: the APP instance's exact minimum must equal what
        // the offline heuristic finds (2), and the lower bound must not
        // exceed it.
        use crate::engine::RoutingEngine;
        let net = fabric::topo::ring(5, 1);
        let routes = crate::sssp::Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = crate::paths::PathSet::extract(&net, &routes).unwrap();
        let (g, ids) = from_pathset(&ps);
        assert_eq!(ids.len(), g.len());
        assert!(g.len() <= ps.len());
        let lb = lower_bound_layers(&g);
        let (exact, assignment) = g.min_cover(4).expect("solvable");
        assert!(lb <= exact, "lower bound {lb} > exact {exact}");
        assert_eq!(exact, 2, "the 5-ring needs exactly 2 layers");
        assert!(g.is_cover(&assignment, exact));
        let (_, stats) = crate::dfsssp::assign_layers_offline(
            &ps,
            crate::CycleBreakHeuristic::WeakestEdge,
            8,
            false,
        )
        .unwrap();
        assert!(stats.layers_used >= exact, "heuristic beats the optimum?!");
    }

    #[test]
    fn lower_bound_is_one_without_conflicts() {
        let g = Generator::new(vec![
            AppPath::new(vec![0, 1, 2]),
            AppPath::new(vec![3, 4, 5]),
        ]);
        assert_eq!(lower_bound_layers(&g), 1);
        assert_eq!(lower_bound_layers(&Generator::default()), 1);
    }

    #[test]
    fn lower_bound_sees_mutual_conflicts() {
        // Three paths pairwise traversing opposite edges: needs 3 layers.
        let g = Generator::new(vec![
            AppPath::new(vec![0, 1, 2, 3]),         // 0->1, 2->3
            AppPath::new(vec![1, 0, 4, 2]),         // 1->0 (conflict a), 4->2
            AppPath::new(vec![3, 2, 2 + 8, 1 + 8]), // 3->2 (conflict a)...
        ]);
        // p0/p1 conflict via (0,1)/(1,0); p0/p2 via (2,3)/(3,2).
        let lb = lower_bound_layers(&g);
        assert!(lb >= 2);
        let (exact, _) = g.min_cover(4).unwrap();
        assert!(lb <= exact);
    }

    /// The paper's Figure 3: P = {p1 = bc, p2 = abc, p3 = cdab}, k = 2.
    /// Channel nodes: a=0, b=1, c=2, d=3.
    #[test]
    fn figure3_example_cover() {
        let g = Generator::new(vec![
            AppPath::new(vec![1, 2]),       // p1 = b c
            AppPath::new(vec![0, 1, 2]),    // p2 = a b c
            AppPath::new(vec![2, 3, 0, 1]), // p3 = c d a b
        ]);
        // The union contains the cycle a->b->c->d->a, so k=1 fails...
        assert!(!g.is_cover(&[0, 0, 0], 1));
        // ...but the paper's cover {p1, p2} | {p3} works.
        assert!(g.is_cover(&[0, 0, 1], 2));
        // And the exact solver finds k = 2.
        let (k, assignment) = g.min_cover(3).unwrap();
        assert_eq!(k, 2);
        assert!(g.is_cover(&assignment, 2));
    }

    #[test]
    fn paths_must_be_simple() {
        let r = std::panic::catch_unwind(|| AppPath::new(vec![0, 1, 0]));
        assert!(r.is_err());
    }

    #[test]
    fn acyclic_generator_needs_one_class() {
        let g = Generator::new(vec![
            AppPath::new(vec![0, 1, 2]),
            AppPath::new(vec![3, 1, 4]),
        ]);
        let (k, _) = g.min_cover(4).unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn reduction_triangle_needs_three() {
        // K3 is 3-chromatic; the reduced APP instance needs exactly 3.
        let edges = [(0, 1), (1, 2), (0, 2)];
        let g = coloring_to_app(3, &edges);
        assert_eq!(g.len(), 3);
        let (k, _) = g.min_cover(4).unwrap();
        assert_eq!(k, 3);
        assert!(is_k_colorable(3, &edges, 3));
        assert!(!is_k_colorable(3, &edges, 2));
    }

    #[test]
    fn reduction_bipartite_needs_two() {
        // C4 is 2-chromatic.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let g = coloring_to_app(4, &edges);
        let (k, _) = g.min_cover(4).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn reduction_independent_set_needs_one() {
        // No edges: all paths are isolated single nodes; one class.
        let g = coloring_to_app(4, &[]);
        let (k, _) = g.min_cover(2).unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn reduction_agrees_with_colorability_exhaustively() {
        // All graphs on 4 nodes (6 possible edges, 64 graphs): chromatic
        // number equals minimum APP cover size of the reduction.
        let all_edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for mask in 0u32..64 {
            let edges: Vec<(u32, u32)> = all_edges
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            let chromatic = (1..=4).find(|&k| is_k_colorable(4, &edges, k)).unwrap();
            let g = coloring_to_app(4, &edges);
            let (k, assignment) = g.min_cover(4).unwrap();
            assert_eq!(
                k, chromatic,
                "mask {mask:#b}: chromatic {chromatic} != APP {k}"
            );
            assert!(g.is_cover(&assignment, k));
        }
    }

    #[test]
    fn coloring_induces_cover_directly() {
        // Forward direction of the proof: color classes are valid APP
        // classes. Petersen-graph outer cycle (C5, chromatic 3).
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let g = coloring_to_app(5, &edges);
        // A valid 3-coloring of C5: 0,1,0,1,2.
        let coloring = [0usize, 1, 0, 1, 2];
        assert!(g.is_cover(&coloring, 3));
        // An invalid "coloring" (adjacent same color) is not a cover.
        let bad = [0usize, 0, 1, 1, 2];
        assert!(!g.is_cover(&bad, 3));
    }
}
