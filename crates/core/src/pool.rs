//! A small work-stealing pool for deterministic parallel sweeps.
//!
//! The routing engines fan fixed-size index ranges (destinations, path
//! ranges) across worker threads with [`map_stealing`]: item `i`'s result
//! lands in output slot `i`, so the merged output is *identical to the
//! sequential map regardless of thread count or scheduling* — determinism
//! comes from the slot discipline, not from the schedule.
//!
//! Work distribution is deque-based: every worker is pre-loaded with a
//! contiguous block of indices and walks it front-to-back (streaming
//! through memory in index order); a worker whose own deque runs dry
//! steals from the *back* of a victim's deque, taking the work farthest
//! from where the victim is currently reading. Items are only ever
//! removed after construction, so a full empty scan is a proof of
//! completion — no condvar, no termination protocol.
//!
//! The deques live behind the [`crate::sync`] shim: under
//! `--features loom-tests` the exact steal/pop protocol runs inside the
//! [`weave`] model checker (`src/models.rs`).

use crate::sync::atomic::{AtomicU64, Ordering::Relaxed};
use crate::sync::Mutex;
use std::collections::VecDeque;

/// Counters from one [`map_stealing`] run, fed into telemetry by the
/// engines (`par_tasks`, `steal_count`, per-worker phase time).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Items executed (equals the input length on every successful run).
    pub tasks: u64,
    /// Items claimed from another worker's deque.
    pub steals: u64,
    /// Wall time each worker spent in its drain loop, in nanoseconds.
    pub worker_ns: Vec<u64>,
}

/// The index deques of one work-stealing run: worker `w` owns deque `w`,
/// pre-filled with a contiguous block of `0..n` in ascending order.
///
/// Shared by reference across the workers of [`map_stealing`]; the
/// interleaving models drive it directly. Every claim happens under one
/// deque mutex, so each index is handed out exactly once.
pub struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl StealQueues {
    /// Split `0..n` into `workers` contiguous blocks, one deque each.
    /// Block sizes differ by at most one.
    pub fn new(n: usize, workers: usize) -> StealQueues {
        let workers = workers.max(1);
        let mut deques = Vec::with_capacity(workers);
        let mut start = 0usize;
        for w in 0..workers {
            // Even split: the first `n % workers` blocks get one extra.
            let len = n / workers + usize::from(w < n % workers);
            deques.push(Mutex::new((start..start + len).collect()));
            start += len;
        }
        debug_assert_eq!(start, n);
        StealQueues {
            deques,
            steals: AtomicU64::new(0),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Claim the next index for worker `w`: the front of its own deque,
    /// else one stolen from the back of the first non-empty victim.
    /// `None` means every deque was empty — and since indices are never
    /// re-added, none will ever appear again: the run is complete.
    pub fn next(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.deques[w].lock().unwrap().pop_front() {
            return Some(i);
        }
        for k in 1..self.deques.len() {
            let victim = (w + k) % self.deques.len();
            if let Some(i) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Relaxed);
                return Some(i);
            }
        }
        None
    }

    /// Total successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Relaxed)
    }
}

/// Map `f` over `0..n` on `threads` workers; `f(i)`'s result is placed in
/// output slot `i`, so the returned vector equals the sequential
/// `(0..n).map(f).collect()` bit for bit, whatever the schedule did.
///
/// `f` runs on borrowed scoped threads — it may capture references to the
/// caller's stack (networks, weight snapshots) without `'static` bounds.
/// With `threads <= 1` or `n <= 1` no threads are spawned at all and `f`
/// runs inline, in order.
pub fn map_stealing<O, F>(n: usize, threads: usize, f: F) -> (Vec<O>, RunStats)
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if threads <= 1 || n <= 1 {
        let start = std::time::Instant::now();
        let out: Vec<O> = (0..n).map(f).collect();
        let stats = RunStats {
            tasks: n as u64,
            steals: 0,
            worker_ns: vec![start.elapsed().as_nanos() as u64],
        };
        return (out, stats);
    }
    let workers = threads.min(n);
    let queues = StealQueues::new(n, workers);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let worker_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let worker_ns = &worker_ns;
            let f = &f;
            scope.spawn(move || {
                let start = std::time::Instant::now();
                while let Some(i) = queues.next(w) {
                    let out = f(i);
                    *slots[i].lock().unwrap() = Some(out);
                }
                worker_ns[w].store(start.elapsed().as_nanos() as u64, Relaxed);
            });
        }
    });
    let out: Vec<O> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every index claimed exactly once")
        })
        .collect();
    let stats = RunStats {
        tasks: n as u64,
        steals: queues.steals(),
        worker_ns: worker_ns.iter().map(|t| t.load(Relaxed)).collect(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fast_path_is_in_order() {
        let (out, stats) = map_stealing(5, 1, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(stats.tasks, 5);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.worker_ns.len(), 1);
    }

    #[test]
    fn parallel_output_equals_sequential() {
        for threads in [2, 3, 4, 7] {
            let (seq, _) = map_stealing(100, 1, |i| i * i + 1);
            let (par, stats) = map_stealing(100, threads, |i| i * i + 1);
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(stats.tasks, 100);
            assert_eq!(stats.worker_ns.len(), threads.min(100));
        }
    }

    #[test]
    fn more_threads_than_items_caps_workers() {
        let (out, stats) = map_stealing(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.worker_ns.len(), 3);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, stats) = map_stealing(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Worker 0 owns the heavy front half; with 2 workers the other
        // must steal to finish. The output stays slot-ordered.
        let n = 64;
        let (out, _) = map_stealing(n, 2, |i| {
            if i < n / 2 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn queues_split_contiguously() {
        let q = StealQueues::new(10, 3);
        assert_eq!(q.workers(), 3);
        // Blocks: [0..4), [4..7), [7..10).
        let mut seen = Vec::new();
        while let Some(i) = q.next(0) {
            seen.push(i);
        }
        assert_eq!(seen.len(), 10, "worker 0 drains everything when alone");
        // Own block front-to-back first, then steals from victims' backs.
        assert_eq!(&seen[..4], &[0, 1, 2, 3]);
    }
}
