//! Layer balancing (the tail of Algorithm 2).
//!
//! After cycle breaking, typically only a few of the available virtual
//! layers hold paths while the rest are empty; spreading each used
//! layer's paths over a group of layers equalizes per-VL buffer usage.
//! No cycle search is needed: **every subset of an acyclic layer's paths
//! generates a subgraph of that layer's CDG, and subgraphs of acyclic
//! graphs are acyclic** — the property the paper's balancing step relies
//! on (and which `proptest` checks in `dfsssp`'s integration tests).

/// Spread paths from `used` layers over `available` layers.
///
/// Layer `i`'s paths are split round-robin across its group of
/// consecutive new layers; groups partition `0..available` and their
/// sizes differ by at most one. Returns the number of layers in use
/// afterwards. `path_layer` entries must all be `< used`.
pub fn balance_layers(path_layer: &mut [u8], used: usize, available: usize) -> usize {
    assert!(used >= 1, "at least one layer is always used");
    assert!(available <= u8::MAX as usize + 1);
    if available <= used || path_layer.is_empty() {
        return used;
    }
    let extra = available - used;
    // Group sizes: layer i gets 1 + extra/used (+1 for the first
    // extra % used layers).
    let mut group_base = vec![0usize; used + 1];
    for i in 0..used {
        let size = 1 + extra / used + usize::from(i < extra % used);
        group_base[i + 1] = group_base[i] + size;
    }
    debug_assert_eq!(group_base[used], available);
    // Round-robin within each group.
    let mut rr = vec![0usize; used];
    let mut max_layer = 0usize;
    for l in path_layer.iter_mut() {
        let i = *l as usize;
        assert!(i < used, "path layer {i} out of range (used = {used})");
        let size = group_base[i + 1] - group_base[i];
        let new = group_base[i] + rr[i] % size;
        rr[i] += 1;
        *l = new as u8;
        max_layer = max_layer.max(new);
    }
    max_layer + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_spare_layers_is_identity() {
        let mut layers = vec![0, 1, 1, 0, 1];
        let out = balance_layers(&mut layers, 2, 2);
        assert_eq!(out, 2);
        assert_eq!(layers, vec![0, 1, 1, 0, 1]);
    }

    #[test]
    fn single_layer_spreads_over_all() {
        let mut layers = vec![0u8; 8];
        let out = balance_layers(&mut layers, 1, 4);
        assert_eq!(out, 4);
        // Round-robin: exactly 2 paths per layer.
        for l in 0..4u8 {
            assert_eq!(layers.iter().filter(|&&x| x == l).count(), 2);
        }
    }

    #[test]
    fn groups_stay_disjoint_and_ordered() {
        // 2 used layers over 5 available: groups {0,1,2} and {3,4}.
        let mut layers = vec![0, 0, 0, 1, 1, 1, 0, 1];
        let out = balance_layers(&mut layers, 2, 5);
        assert_eq!(out, 5);
        for (i, &l) in layers.iter().enumerate() {
            let orig = [0, 0, 0, 1, 1, 1, 0, 1][i];
            if orig == 0 {
                assert!(l <= 2, "layer-0 paths stay in group 0..=2");
            } else {
                assert!((3..=4).contains(&l), "layer-1 paths stay in group 3..=4");
            }
        }
    }

    #[test]
    fn balanced_counts_are_even() {
        let mut layers = vec![0u8; 100];
        balance_layers(&mut layers, 1, 8);
        let mut counts = [0usize; 8];
        for &l in &layers {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 12 || c == 13));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_layer_rejected() {
        let mut layers = vec![3u8];
        balance_layers(&mut layers, 2, 4);
    }
}
