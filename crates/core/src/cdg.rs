//! Channel dependency graphs (CDGs) with path bookkeeping and a
//! resumable cycle search.
//!
//! Following Dally & Seitz, the CDG of a network and routing function has
//! one node per *channel* and an edge `(c_i, c_j)` whenever some route
//! uses `c_j` directly after `c_i`. A routing is deadlock-free if every
//! virtual layer's CDG is acyclic (sufficient condition; §III of the
//! paper).
//!
//! The offline DFSSSP algorithm needs two things beyond a plain digraph:
//!
//! 1. **Per-edge path lists** — to know which paths to move to the next
//!    layer when an edge is chosen for removal. Lists are append-only;
//!    entries become stale when a path moves on, and are filtered against
//!    the caller's `path_layer` array (cheaper than eager removal, which
//!    would make each move O(path length · edge degree)).
//! 2. **A resumable cycle search** — Algorithm 2's efficiency hinges on
//!    "the cycle search is resumed on the same place where the search
//!    aborted". [`CycleSearch`] keeps its DFS stack across edge removals:
//!    removing edges can never create cycles, so black (fully explored)
//!    nodes stay black, and only the stack suffix above the first dead
//!    tree edge must be re-opened.

use crate::paths::{PathId, PathSet};
use rustc_hash::FxHashMap;
use smallvec::SmallVec;

/// Index of a CDG edge within its [`Cdg`].
pub type EdgeId = u32;

/// A CDG edge `from → to` (both are channel indices) with the list of
/// paths that induce it.
#[derive(Debug)]
pub struct Edge {
    /// Source channel index.
    pub from: u32,
    /// Target channel index.
    pub to: u32,
    /// Number of *live* paths currently inducing this edge. The edge is
    /// part of the graph iff `count > 0`.
    pub count: u32,
    /// Paths ever added to this edge (may contain stale entries for paths
    /// that have since moved to another layer).
    pub paths: Vec<PathId>,
}

/// The channel dependency graph of one virtual layer.
pub struct Cdg {
    /// Outgoing edge ids per channel (append-only; dead edges skipped).
    out: Vec<SmallVec<[EdgeId; 4]>>,
    edges: Vec<Edge>,
    index: FxHashMap<u64, EdgeId>,
    live_edges: usize,
    live_paths: usize,
}

#[inline]
fn key(from: u32, to: u32) -> u64 {
    ((from as u64) << 32) | to as u64
}

impl Cdg {
    /// An empty CDG over `num_channels` channels.
    pub fn new(num_channels: usize) -> Cdg {
        Cdg {
            out: vec![SmallVec::new(); num_channels],
            edges: Vec::new(),
            index: FxHashMap::default(),
            live_edges: 0,
            live_paths: 0,
        }
    }

    /// Number of channels (CDG nodes).
    pub fn num_channels(&self) -> usize {
        self.out.len()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// Number of live paths added to this layer.
    pub fn num_paths(&self) -> usize {
        self.live_paths
    }

    /// The edge with the given id.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    /// Record a single dependency `from → to` without path bookkeeping
    /// (used by the verifier, which only needs acyclicity).
    pub fn add_dependency(&mut self, from: u32, to: u32) {
        self.bump(from, to, u32::MAX);
    }

    fn bump(&mut self, from: u32, to: u32, path: PathId) -> EdgeId {
        debug_assert_ne!(from, to, "self-dependency");
        let e = *self.index.entry(key(from, to)).or_insert_with(|| {
            let id = self.edges.len() as EdgeId;
            self.edges.push(Edge {
                from,
                to,
                count: 0,
                paths: Vec::new(),
            });
            self.out[from as usize].push(id);
            id
        });
        let edge = &mut self.edges[e as usize];
        if edge.count == 0 {
            self.live_edges += 1;
        }
        edge.count += 1;
        if path != u32::MAX {
            edge.paths.push(path);
        }
        e
    }

    /// Add path `p` (all consecutive channel pairs) to this layer.
    /// Paths with fewer than two channels add no edges but still count.
    pub fn add_path(&mut self, ps: &PathSet, p: PathId) {
        let chans = ps.channels(p);
        for w in chans.windows(2) {
            self.bump(w[0].0, w[1].0, p);
        }
        self.live_paths += 1;
    }

    /// Merge `other`'s edges and path bookkeeping into this CDG.
    ///
    /// Absorbing partial CDGs built over *contiguous, increasing* path-id
    /// ranges, in range order, reproduces a sequential
    /// [`Cdg::add_path`]-loop over the concatenated ranges exactly: edge
    /// ids come out in global first-occurrence order (every edge first
    /// seen in an earlier range precedes every edge first seen in a later
    /// one, and ties within a range keep the range's insertion order),
    /// and per-edge path lists concatenate in ascending path id. This is
    /// what lets the parallel layer-0 build be bit-identical to the
    /// sequential one.
    pub fn absorb(&mut self, other: &Cdg) {
        debug_assert_eq!(self.num_channels(), other.num_channels());
        for oe in &other.edges {
            let e = *self.index.entry(key(oe.from, oe.to)).or_insert_with(|| {
                let id = self.edges.len() as EdgeId;
                self.edges.push(Edge {
                    from: oe.from,
                    to: oe.to,
                    count: 0,
                    paths: Vec::new(),
                });
                self.out[oe.from as usize].push(id);
                id
            });
            let edge = &mut self.edges[e as usize];
            if edge.count == 0 && oe.count > 0 {
                self.live_edges += 1;
            }
            edge.count += oe.count;
            edge.paths.extend_from_slice(&oe.paths);
        }
        self.live_paths += other.live_paths;
    }

    /// Remove path `p`'s contribution from this layer. The path must have
    /// been added before (counts underflow otherwise, caught in debug).
    pub fn remove_path(&mut self, ps: &PathSet, p: PathId) {
        let chans = ps.channels(p);
        for w in chans.windows(2) {
            let e = self.index[&key(w[0].0, w[1].0)];
            let edge = &mut self.edges[e as usize];
            debug_assert!(edge.count > 0, "removing path not present");
            edge.count -= 1;
            if edge.count == 0 {
                self.live_edges -= 1;
            }
        }
        self.live_paths -= 1;
    }

    /// The live paths inducing edge `e`: the recorded list filtered by the
    /// caller's current layer assignment (`path_layer[p] == layer`).
    pub fn live_paths_of(&self, e: EdgeId, path_layer: &[u8], layer: u8) -> Vec<PathId> {
        self.edges[e as usize]
            .paths
            .iter()
            .copied()
            .filter(|&p| path_layer[p as usize] == layer)
            .collect()
    }

    /// Kill edge `e` outright (count to zero), regardless of how many
    /// dependencies were recorded on it. For drivers that manage path
    /// membership externally (tests, exact solvers); the engine code
    /// always removes whole paths instead.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let edge = &mut self.edges[e as usize];
        if edge.count > 0 {
            edge.count = 0;
            self.live_edges -= 1;
        }
    }

    /// Whether the live-edge graph is acyclic (iterative 3-color DFS).
    pub fn is_acyclic(&self) -> bool {
        let mut search = CycleSearch::new(self.num_channels());
        search.next_cycle(self).is_none()
    }

    /// Whether channel `to` is reachable from channel `from` over live
    /// edges. Early-exits; explores only `from`'s descendant cone —
    /// the workhorse of the online (per-path) cycle check, where a full
    /// graph scan per insertion would be ruinous.
    pub fn reaches(&self, from: u32, to: u32, seen: &mut [u32], epoch: u32) -> bool {
        if from == to {
            return true;
        }
        debug_assert!(seen.len() >= self.out.len());
        let mut stack = vec![from];
        seen[from as usize] = epoch;
        while let Some(u) = stack.pop() {
            for &e in &self.out[u as usize] {
                let edge = &self.edges[e as usize];
                if edge.count == 0 {
                    continue;
                }
                let v = edge.to;
                if v == to {
                    return true;
                }
                if seen[v as usize] != epoch {
                    seen[v as usize] = epoch;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Would adding path `p` close a cycle? Checked *after* tentatively
    /// adding it: any new cycle must traverse one of `p`'s edges
    /// `(c_i, c_(i+1))`, i.e. `c_(i+1)` must reach `c_i`. `seen`/`epoch`
    /// implement O(1) visited-set reset across calls (caller increments
    /// `epoch` per query).
    pub fn path_closes_cycle(
        &self,
        ps: &PathSet,
        p: PathId,
        seen: &mut [u32],
        epoch: &mut u32,
    ) -> bool {
        let chans = ps.channels(p);
        for w in chans.windows(2) {
            *epoch += 1;
            if self.reaches(w[1].0, w[0].0, seen, *epoch) {
                return true;
            }
        }
        false
    }

    /// Find one cycle in the live-edge graph, as a list of edge ids.
    pub fn find_cycle(&self) -> Option<Vec<EdgeId>> {
        let mut search = CycleSearch::new(self.num_channels());
        search.next_cycle(self)
    }

    /// Map an edge cycle (as returned by [`Cdg::find_cycle`] or
    /// [`CycleSearch::next_cycle`]) to the channel sequence it traverses:
    /// each edge contributes its source channel, so consecutive channels
    /// hold a dependency and the last one feeds the first.
    pub fn cycle_channels(&self, cycle: &[EdgeId]) -> Vec<fabric::ChannelId> {
        cycle
            .iter()
            .map(|&e| fabric::ChannelId(self.edges[e as usize].from))
            .collect()
    }
}

const WHITE: u8 = 0;
const GREY: u8 = 1;
const BLACK: u8 = 2;

struct Frame {
    chan: u32,
    /// Next position in `out[chan]` to inspect.
    pos: usize,
    /// Edge taken from the previous frame to reach this one
    /// (`u32::MAX` for root frames).
    via: EdgeId,
}

/// Resumable cycle search over a [`Cdg`].
///
/// Call [`CycleSearch::next_cycle`] to get a cycle; remove paths (which
/// kills edges) and call it again. The search continues from where it
/// stopped: black nodes stay settled (edge removal cannot create cycles),
/// and the stack is only unwound past dead tree edges.
pub struct CycleSearch {
    color: Vec<u8>,
    stack: Vec<Frame>,
    next_root: usize,
}

impl CycleSearch {
    /// Fresh search state over a graph with `num_channels` nodes.
    pub fn new(num_channels: usize) -> CycleSearch {
        CycleSearch {
            color: vec![WHITE; num_channels],
            stack: Vec::new(),
            next_root: 0,
        }
    }

    /// Repair the stack after the caller removed edges: unwind everything
    /// above the first dead tree edge, re-whitening unwound nodes. Since
    /// re-whitened nodes can sit below the root cursor, the cursor is
    /// reset whenever anything is popped (the rescan only skips over
    /// settled nodes, so it stays cheap).
    fn repair(&mut self, cdg: &Cdg) {
        let mut valid = self.stack.len();
        for (i, f) in self.stack.iter().enumerate() {
            if f.via != u32::MAX && cdg.edge(f.via).count == 0 {
                valid = i;
                break;
            }
        }
        if self.stack.len() > valid {
            self.next_root = 0;
        }
        while self.stack.len() > valid {
            let f = self.stack.pop().unwrap();
            self.color[f.chan as usize] = WHITE;
        }
    }

    /// Find the next cycle of `cdg`'s live edges, or `None` when acyclic.
    ///
    /// **Contract:** after a cycle is returned, the caller must remove at
    /// least one edge of that cycle (by removing all paths inducing it)
    /// before calling `next_cycle` again; otherwise nodes on the still
    /// existing cycle could be settled incorrectly.
    pub fn next_cycle(&mut self, cdg: &Cdg) -> Option<Vec<EdgeId>> {
        self.repair(cdg);
        loop {
            // Ensure there is a frame to work on.
            if self.stack.is_empty() {
                let root = (self.next_root..cdg.num_channels())
                    .find(|&c| self.color[c] == WHITE && !cdg.out[c].is_empty());
                match root {
                    None => return None,
                    Some(c) => {
                        self.next_root = c; // roots before c are settled
                        self.color[c] = GREY;
                        self.stack.push(Frame {
                            chan: c as u32,
                            pos: 0,
                            via: u32::MAX,
                        });
                    }
                }
            }
            // Advance the top frame.
            let top = self.stack.len() - 1;
            let chan = self.stack[top].chan as usize;
            let pos = self.stack[top].pos;
            match cdg.out[chan].get(pos) {
                None => {
                    // Exhausted: blacken and pop.
                    let f = self.stack.pop().unwrap();
                    self.color[f.chan as usize] = BLACK;
                }
                Some(&e) => {
                    self.stack[top].pos += 1;
                    let edge = cdg.edge(e);
                    if edge.count == 0 {
                        continue; // dead edge
                    }
                    match self.color[edge.to as usize] {
                        BLACK => {}
                        WHITE => {
                            self.color[edge.to as usize] = GREY;
                            self.stack.push(Frame {
                                chan: edge.to,
                                pos: 0,
                                via: e,
                            });
                        }
                        GREY => {
                            // Back edge: cycle = stack path from `to` to
                            // top, plus this closing edge.
                            let start = self
                                .stack
                                .iter()
                                .position(|f| f.chan == edge.to)
                                .expect("grey nodes are on the stack");
                            let mut cycle: Vec<EdgeId> =
                                self.stack[start + 1..].iter().map(|f| f.via).collect();
                            cycle.push(e);
                            return Some(cycle);
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a CDG with explicit unit dependencies.
    fn cdg_of(n: usize, deps: &[(u32, u32)]) -> Cdg {
        let mut cdg = Cdg::new(n);
        for &(a, b) in deps {
            cdg.add_dependency(a, b);
        }
        cdg
    }

    #[test]
    fn empty_and_dag_are_acyclic() {
        assert!(Cdg::new(0).is_acyclic());
        assert!(cdg_of(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).is_acyclic());
    }

    #[test]
    fn self_cycle_detected() {
        let cdg = cdg_of(3, &[(0, 1), (1, 0)]);
        assert!(!cdg.is_acyclic());
        let cycle = cdg.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn long_cycle_edges_chain() {
        let cdg = cdg_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)]);
        let cycle = cdg.find_cycle().unwrap();
        // Cycle must be 1->2->3->4->1.
        assert_eq!(cycle.len(), 4);
        for w in cycle.windows(2) {
            assert_eq!(cdg.edge(w[0]).to, cdg.edge(w[1]).from);
        }
        let first = cdg.edge(cycle[0]);
        let last = cdg.edge(*cycle.last().unwrap());
        assert_eq!(last.to, first.from);
        // The channel view is the edge sources, in order.
        let chans = cdg.cycle_channels(&cycle);
        assert_eq!(chans.len(), cycle.len());
        for (c, &e) in chans.iter().zip(&cycle) {
            assert_eq!(c.0, cdg.edge(e).from);
        }
    }

    #[test]
    fn resumable_search_drains_all_cycles() {
        // Two disjoint cycles plus a diamond.
        let mut cdg = cdg_of(
            8,
            &[
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 4),
                (4, 2),
                (5, 6),
                (6, 7),
                (5, 7),
            ],
        );
        let mut search = CycleSearch::new(cdg.num_channels());
        let mut found = 0;
        while let Some(cycle) = search.next_cycle(&cdg) {
            found += 1;
            // Kill the whole cycle by zeroing one edge's count.
            let e = cycle[0];
            cdg.edges[e as usize].count = 0;
            cdg.live_edges -= 1;
        }
        assert_eq!(found, 2);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn path_bookkeeping_counts() {
        // Fake a PathSet via Routes on a ring.
        use crate::engine::RoutingEngine;
        use crate::paths::PathSet;
        let net = fabric::topo::ring(5, 1);
        let routes = crate::sssp::Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let mut cdg = Cdg::new(net.num_channels());
        for p in ps.ids() {
            cdg.add_path(&ps, p);
        }
        assert_eq!(cdg.num_paths(), ps.len());
        assert!(cdg.num_edges() > 0);
        // Removing everything empties the graph.
        for p in ps.ids() {
            cdg.remove_path(&ps, p);
        }
        assert_eq!(cdg.num_paths(), 0);
        assert_eq!(cdg.num_edges(), 0);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn absorb_matches_sequential_build() {
        // Absorbing contiguous path-range partials in range order must
        // reproduce the sequential build bit for bit: same edge ids,
        // counts, path lists and adjacency rows.
        use crate::engine::{ComputeCtx, RoutingEngine};
        use crate::paths::PathSet;
        let net = fabric::topo::torus(&[3, 3], 1);
        let routes = crate::sssp::Sssp::new()
            .route_in(&net, &ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let mut seq = Cdg::new(net.num_channels());
        for p in ps.ids() {
            seq.add_path(&ps, p);
        }
        for blocks in [1usize, 3, 4, ps.len()] {
            let mut merged = Cdg::new(net.num_channels());
            let per = ps.len().div_ceil(blocks);
            for start in (0..ps.len()).step_by(per) {
                let mut part = Cdg::new(net.num_channels());
                for p in start..(start + per).min(ps.len()) {
                    part.add_path(&ps, p as PathId);
                }
                merged.absorb(&part);
            }
            assert_eq!(merged.num_paths(), seq.num_paths());
            assert_eq!(merged.num_edges(), seq.num_edges());
            assert_eq!(merged.edges.len(), seq.edges.len());
            for (a, b) in merged.edges.iter().zip(&seq.edges) {
                assert_eq!((a.from, a.to, a.count), (b.from, b.to, b.count));
                assert_eq!(a.paths, b.paths);
            }
            assert_eq!(merged.out, seq.out);
        }
    }

    #[test]
    fn live_paths_filter_stale_entries() {
        use crate::engine::RoutingEngine;
        use crate::paths::PathSet;
        let net = fabric::topo::ring(5, 1);
        let routes = crate::sssp::Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let mut cdg = Cdg::new(net.num_channels());
        let mut path_layer = vec![0u8; ps.len()];
        for p in ps.ids() {
            cdg.add_path(&ps, p);
        }
        // Find an edge with at least one path; move one of them "away".
        let e = (0..cdg.edges.len() as u32)
            .find(|&e| cdg.edge(e).count > 0 && !cdg.edge(e).paths.is_empty())
            .unwrap();
        let all = cdg.live_paths_of(e, &path_layer, 0);
        let victim = all[0];
        cdg.remove_path(&ps, victim);
        path_layer[victim as usize] = 1;
        let remaining = cdg.live_paths_of(e, &path_layer, 0);
        assert_eq!(remaining.len(), all.len() - 1);
        assert!(!remaining.contains(&victim));
    }

    #[test]
    fn black_nodes_survive_removals() {
        // Chain into a cycle: 0 -> 1 -> 2 -> 3 -> 2. After breaking
        // (3, 2), resuming must not revisit settled parts and must report
        // acyclic.
        let mut cdg = cdg_of(4, &[(0, 1), (1, 2), (2, 3), (3, 2)]);
        let mut search = CycleSearch::new(4);
        let cycle = search.next_cycle(&cdg).unwrap();
        assert_eq!(cycle.len(), 2);
        // Break the back edge (whichever edge closes the cycle works).
        let victim = *cycle.last().unwrap();
        cdg.edges[victim as usize].count = 0;
        cdg.live_edges -= 1;
        assert!(search.next_cycle(&cdg).is_none());
    }

    #[test]
    fn ring_sssp_dependencies_are_cyclic() {
        // The paper's Fig 2: SSSP on a 5-ring creates a cyclic CDG.
        use crate::engine::RoutingEngine;
        use crate::paths::PathSet;
        let net = fabric::topo::ring(5, 1);
        let routes = crate::sssp::Sssp::new()
            .route_in(&net, &crate::ComputeCtx::seq())
            .unwrap();
        let ps = PathSet::extract(&net, &routes).unwrap();
        let mut cdg = Cdg::new(net.num_channels());
        for p in ps.ids() {
            cdg.add_path(&ps, p);
        }
        assert!(!cdg.is_acyclic(), "5-ring SSSP must have a cyclic CDG");
    }
}
