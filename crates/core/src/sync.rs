//! Synchronisation shim: the crate's concurrent core ([`crate::pool`])
//! imports its primitives from here instead of `std` directly.
//!
//! * Default build: straight re-exports of `std::sync` — zero cost,
//!   identical semantics.
//! * `--features loom-tests`: re-exports of the [`weave`] model checker's
//!   primitives. Outside a `weave::model` run those pass through to
//!   `std`, so the crate's ordinary tests still behave normally; inside a
//!   model every operation becomes an exhaustively explored scheduling
//!   point.
//!
//! The module is public so the interleaving models in `src/models.rs`
//! can drive the exact production [`crate::pool::StealQueues`] type under
//! either configuration.

#[cfg(feature = "loom-tests")]
pub use weave::{
    sync::{atomic, Arc, Mutex, MutexGuard},
    thread::yield_now,
};

#[cfg(not(feature = "loom-tests"))]
pub use std::{
    sync::{atomic, Arc, Mutex, MutexGuard},
    thread::yield_now,
};
