//! The routing-engine interface shared by DFSSSP and all baselines.

use fabric::{Network, Routes};

/// Errors a routing engine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The network is not strongly connected; no routing can serve it.
    Disconnected,
    /// Deadlock-free layer assignment needs more virtual layers than the
    /// engine was allowed to use (`required` is a lower-bound hint: the
    /// layer count reached when the budget ran out).
    NeedMoreLayers {
        /// Layers the run would have needed at minimum.
        required: usize,
        /// Layers the engine was allowed.
        allowed: usize,
    },
    /// The engine only supports a topology family this network is not a
    /// member of (e.g. DOR needs coordinates, fat-tree routing needs
    /// levels). Mirrors OpenSM engines falling back / failing — the
    /// "missing bars" of the paper's Fig 4.
    UnsupportedTopology(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Disconnected => write!(f, "network is not strongly connected"),
            RouteError::NeedMoreLayers { required, allowed } => write!(
                f,
                "deadlock-free assignment needs >= {required} virtual layers, only {allowed} allowed"
            ),
            RouteError::UnsupportedTopology(why) => write!(f, "unsupported topology: {why}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A routing algorithm: consumes a network, produces forwarding tables
/// plus a virtual-layer assignment.
pub trait RoutingEngine {
    /// Engine name, as reported in tables/figures (e.g. `"DFSSSP"`).
    fn name(&self) -> &'static str;

    /// Compute routes for `net`.
    fn route(&self, net: &Network) -> Result<Routes, RouteError>;

    /// Whether the routes this engine produces are guaranteed
    /// deadlock-free on arbitrary topologies.
    fn deadlock_free(&self) -> bool;

    /// Current virtual-layer budget, when the engine has one. Engines
    /// without a layer knob (MinHop, plain SSSP) report `None`; the
    /// subnet manager's escalation ladder skips them.
    fn max_layers(&self) -> Option<usize> {
        None
    }

    /// Adjust the virtual-layer budget. Returns `false` when the engine
    /// has no such knob, so callers know the escalation was ignored.
    fn set_max_layers(&mut self, _layers: usize) -> bool {
        false
    }
}

/// Boxed engines route too, so runtime-selected engines (CLI flags,
/// fallback ladders) can drive generic consumers like `SmLoop`.
impl<T: RoutingEngine + ?Sized> RoutingEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route(&self, net: &Network) -> Result<Routes, RouteError> {
        (**self).route(net)
    }

    fn deadlock_free(&self) -> bool {
        (**self).deadlock_free()
    }

    fn max_layers(&self) -> Option<usize> {
        (**self).max_layers()
    }

    fn set_max_layers(&mut self, layers: usize) -> bool {
        (**self).set_max_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        let e = RouteError::NeedMoreLayers {
            required: 9,
            allowed: 8,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('8'));
        assert!(RouteError::Disconnected.to_string().contains("connected"));
        assert!(RouteError::UnsupportedTopology("no coords".into())
            .to_string()
            .contains("no coords"));
    }
}
