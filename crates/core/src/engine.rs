//! The routing-engine interface shared by DFSSSP and all baselines.

use fabric::{Network, Routes};
use telemetry::{counters, hists, phases, Recorder, RecorderHandle};

/// Errors a routing engine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The network is not strongly connected; no routing can serve it.
    Disconnected,
    /// Deadlock-free layer assignment needs more virtual layers than the
    /// engine was allowed to use (`required` is a lower-bound hint: the
    /// layer count reached when the budget ran out).
    NeedMoreLayers {
        /// Layers the run would have needed at minimum.
        required: usize,
        /// Layers the engine was allowed.
        allowed: usize,
    },
    /// The engine only supports a topology family this network is not a
    /// member of (e.g. DOR needs coordinates, fat-tree routing needs
    /// levels). Mirrors OpenSM engines falling back / failing — the
    /// "missing bars" of the paper's Fig 4.
    UnsupportedTopology(String),
    /// A [`crate::Budget`] axis ran out mid-run (`resource` is the axis:
    /// `deadline_ms`, `nodes` or `cdg_edges`; `limit` the configured
    /// bound). The run stopped promptly instead of hanging.
    BudgetExceeded {
        /// Which budget axis tripped.
        resource: &'static str,
        /// The configured bound on that axis.
        limit: u64,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Disconnected => write!(f, "network is not strongly connected"),
            RouteError::NeedMoreLayers { required, allowed } => write!(
                f,
                "deadlock-free assignment needs >= {required} virtual layers, only {allowed} allowed"
            ),
            RouteError::UnsupportedTopology(why) => write!(f, "unsupported topology: {why}"),
            RouteError::BudgetExceeded { resource, limit } => {
                write!(f, "routing budget exceeded: {resource} limit {limit}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Fallback chunk width when a parallel run leaves the wavefront width
/// on auto: wide enough to keep a handful of workers busy per chunk,
/// narrow enough that the balanced SSSP's weight feedback still steers
/// path spreading within a few destinations of the sequential schedule.
pub const DEFAULT_PAR_CHUNK: usize = 16;

/// Parallelism *request*: what the caller asked for, zeros meaning
/// "decide for me". Part of [`EngineConfig`] so every engine, CLI and
/// the subnet manager plumb the same knob. [`ComputeOpts::resolve`]
/// turns it into a concrete [`ComputeCtx`].
///
/// The default (`threads: 1, chunk: 0`) resolves to the exact
/// sequential algorithm — existing callers see byte-identical routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeOpts {
    /// Worker threads for the parallel sweeps; `0` = one per available
    /// core.
    pub threads: usize,
    /// Destinations per deterministic wavefront chunk of the balanced
    /// SSSP sweep (see DESIGN.md §15); `0` = auto: `1` when the
    /// resolved thread count is 1, [`DEFAULT_PAR_CHUNK`] otherwise.
    pub chunk: usize,
}

impl Default for ComputeOpts {
    fn default() -> Self {
        ComputeOpts {
            threads: 1,
            chunk: 0,
        }
    }
}

impl ComputeOpts {
    /// Sequential compute (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `threads` workers (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pin the wavefront chunk width (`0` = auto).
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Resolve the request against this host into concrete values.
    pub fn resolve(&self) -> ComputeCtx {
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            t => t,
        };
        let chunk = match self.chunk {
            0 if threads <= 1 => 1,
            0 => DEFAULT_PAR_CHUNK,
            c => c,
        };
        ComputeCtx { threads, chunk }
    }
}

/// Resolved compute context handed down the routing call tree: both
/// fields are concrete (≥ 1). Routes are a function of `chunk` alone —
/// `threads` changes wall-clock, never output — so reproducing a run on
/// any machine takes only the chunk value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeCtx {
    /// Worker threads (≥ 1).
    pub threads: usize,
    /// Balanced-sweep wavefront width (≥ 1); `1` reproduces the paper's
    /// sequential weight-update schedule exactly.
    pub chunk: usize,
}

impl ComputeCtx {
    /// Strictly sequential: one thread, chunk 1 — the paper's algorithm
    /// byte for byte.
    pub fn seq() -> Self {
        ComputeCtx {
            threads: 1,
            chunk: 1,
        }
    }

    /// Resolve explicit requests (zeros allowed, meaning auto).
    pub fn new(threads: usize, chunk: usize) -> Self {
        ComputeOpts { threads, chunk }.resolve()
    }

    /// Whether this context fans work across more than one worker.
    pub fn parallel(&self) -> bool {
        self.threads > 1
    }
}

/// Uniform configuration for configurable routing engines: the
/// virtual-layer budget, the post-assignment balancing toggle, the
/// telemetry sink, and the compute (parallelism) request. One struct
/// instead of one setter per knob, so the subnet manager's escalation
/// ladder, the CLIs and the benches all tune engines the same way
/// ([`RoutingEngine::with_config`]).
///
/// Engines apply the fields they understand and ignore the rest (a
/// balancing toggle means nothing to LASH); [`RoutingEngine::config`]
/// reports the engine's current view.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Virtual-layer budget. InfiniBand hardware allows 8 data VLs.
    pub max_layers: usize,
    /// Spread paths over unused layers after assignment.
    pub balance: bool,
    /// Telemetry sink; defaults to the shared no-op.
    pub recorder: RecorderHandle,
    /// Resource bounds for each `route()` call; unlimited by default.
    pub budget: crate::Budget,
    /// Parallelism request; sequential by default.
    pub compute: ComputeOpts,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_layers: 8,
            balance: true,
            recorder: telemetry::noop(),
            budget: crate::Budget::default(),
            compute: ComputeOpts::default(),
        }
    }
}

impl EngineConfig {
    /// The paper's defaults: 8 layers, balancing on, no telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the virtual-layer budget.
    pub fn max_layers(mut self, layers: usize) -> Self {
        self.max_layers = layers;
        self
    }

    /// Toggle post-assignment balancing.
    pub fn balance(mut self, on: bool) -> Self {
        self.balance = on;
        self
    }

    /// Attach a telemetry sink.
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Bound each `route()` call by `budget`.
    pub fn budget(mut self, budget: crate::Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Set the parallelism request.
    pub fn compute(mut self, compute: ComputeOpts) -> Self {
        self.compute = compute;
        self
    }
}

/// A routing algorithm: consumes a network, produces forwarding tables
/// plus a virtual-layer assignment.
///
/// The entry point is [`RoutingEngine::route_in`], which takes a
/// resolved [`ComputeCtx`]; engines that cannot parallelize simply
/// ignore it. (The legacy `route(&net)` shim from the engine-API
/// redesign has been removed; resolve the engine's own request with
/// `engine.config().compute.resolve()` when no explicit context is at
/// hand.)
pub trait RoutingEngine {
    /// Engine name, as reported in tables/figures (e.g. `"DFSSSP"`).
    fn name(&self) -> &'static str;

    /// Compute routes for `net` under the given compute context.
    ///
    /// Determinism contract: the routes may depend on `cx.chunk` (a
    /// declared algorithm parameter) but never on `cx.threads` — any
    /// thread count must produce bit-for-bit identical routes.
    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError>;

    /// Whether the routes this engine produces are guaranteed
    /// deadlock-free on arbitrary topologies.
    fn deadlock_free(&self) -> bool;

    /// Whether this engine acts on [`RoutingEngine::set_config`].
    /// Engines without tunables (MinHop, plain SSSP, DOR) report
    /// `false`; the subnet manager's escalation ladder then skips the
    /// widen-VLs rung *intentionally* instead of silently.
    fn tunables(&self) -> bool {
        false
    }

    /// The engine's current configuration. Total: engines without
    /// tunables report the defaults they effectively run with. Check
    /// [`RoutingEngine::tunables`] to learn whether `set_config` would
    /// change anything.
    fn config(&self) -> EngineConfig {
        EngineConfig::default()
    }

    /// Apply a configuration. Total: engines without tunables
    /// ([`RoutingEngine::tunables`] `== false`) accept and ignore it.
    fn set_config(&mut self, _config: EngineConfig) {}

    /// Builder form of [`RoutingEngine::set_config`].
    fn with_config(mut self, config: EngineConfig) -> Self
    where
        Self: Sized,
    {
        self.set_config(config);
        self
    }
}

/// Boxed engines route too, so runtime-selected engines (CLI flags,
/// fallback ladders) can drive generic consumers like `SmLoop`.
impl<T: RoutingEngine + ?Sized> RoutingEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
        (**self).route_in(net, cx)
    }

    fn deadlock_free(&self) -> bool {
        (**self).deadlock_free()
    }

    fn tunables(&self) -> bool {
        (**self).tunables()
    }

    fn config(&self) -> EngineConfig {
        (**self).config()
    }

    fn set_config(&mut self, config: EngineConfig) {
        (**self).set_config(config)
    }
}

/// Wraps any engine so every `route` call is measured: wall-clock as
/// the `route_total` phase plus the standard route-quality metrics
/// ([`record_route_metrics`]). This is what makes baseline comparisons
/// apples-to-apples — MinHop and DFSSSP go through the identical
/// measurement path. Costs nothing when the recorder is disabled.
#[derive(Clone, Debug)]
pub struct Recorded<E> {
    /// The measured engine.
    pub inner: E,
    recorder: RecorderHandle,
}

impl<E: RoutingEngine> Recorded<E> {
    /// Measure `inner` through `recorder`.
    pub fn new(inner: E, recorder: RecorderHandle) -> Self {
        Recorded { inner, recorder }
    }

    /// Unwrap the measured engine.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: RoutingEngine> RoutingEngine for Recorded<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn route_in(&self, net: &Network, cx: &ComputeCtx) -> Result<Routes, RouteError> {
        let routes = telemetry::timed(&*self.recorder, phases::ROUTE_TOTAL, || {
            self.inner.route_in(net, cx)
        })?;
        record_route_metrics(net, &routes, &*self.recorder);
        Ok(routes)
    }

    fn deadlock_free(&self) -> bool {
        self.inner.deadlock_free()
    }

    fn tunables(&self) -> bool {
        self.inner.tunables()
    }

    fn config(&self) -> EngineConfig {
        self.inner.config()
    }

    fn set_config(&mut self, config: EngineConfig) {
        self.inner.set_config(config)
    }
}

/// Record one parallel phase's pool counters: items fanned out, steals,
/// and the per-worker wall-time spread. A no-op when the recorder is
/// disabled, and entirely skipped by the engines' sequential fast paths.
pub(crate) fn record_par_stats(rec: &dyn Recorder, stats: &crate::pool::RunStats) {
    if !rec.enabled() {
        return;
    }
    rec.add(counters::PAR_TASKS, stats.tasks);
    rec.add(counters::STEAL_COUNT, stats.steals);
    for &ns in &stats.worker_ns {
        rec.observe(hists::PAR_WORKER_US, ns / 1_000);
    }
}

/// Record the standard quality metrics of a finished routing: the
/// `paths_routed` / `vls_used` counters and the `path_length` /
/// `vl_channels` / `edge_load` histograms. A no-op (not even a table
/// walk) when the recorder is disabled.
pub fn record_route_metrics(net: &Network, routes: &Routes, rec: &dyn Recorder) {
    if !rec.enabled() {
        return;
    }
    let num_layers = routes.num_layers() as usize;
    rec.add(counters::VLS_USED, num_layers as u64);
    let mut layer_channels = vec![vec![false; net.num_channels()]; num_layers];
    let mut loads = vec![0u64; net.num_channels()];
    let mut paths = 0u64;
    for (src_t, &src) in net.terminals().iter().enumerate() {
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            if src == dst {
                continue;
            }
            let Ok(channels) = routes.path_channels(net, src, dst) else {
                continue;
            };
            paths += 1;
            rec.observe(hists::PATH_LENGTH, channels.len() as u64);
            let layer = routes.layer(src_t, dst_t) as usize;
            for c in &channels {
                loads[c.idx()] += 1;
                if layer < num_layers {
                    layer_channels[layer][c.idx()] = true;
                }
            }
        }
    }
    rec.add(counters::PATHS_ROUTED, paths);
    for used in &layer_channels {
        let distinct = used.iter().filter(|&&u| u).count() as u64;
        rec.observe(hists::VL_CHANNELS, distinct);
    }
    for &load in &loads {
        rec.observe(hists::EDGE_LOAD, load);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cross_thread_boundaries() {
        // The route server hands engine configs (and the recorders
        // inside them) to background writer threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineConfig>();
        assert_send_sync::<RouteError>();
        let config = EngineConfig::new().max_layers(4);
        let moved = std::thread::spawn(move || config.max_layers)
            .join()
            .unwrap();
        assert_eq!(moved, 4);
    }

    #[test]
    fn compute_opts_resolve_zeros() {
        // Defaults are the exact sequential algorithm.
        let cx = ComputeOpts::default().resolve();
        assert_eq!(cx, ComputeCtx::seq());
        assert!(!cx.parallel());
        // threads=0 resolves to this host's core count (>= 1); chunk
        // auto widens only when the run is actually parallel.
        let cx = ComputeOpts::new().threads(0).resolve();
        assert!(cx.threads >= 1);
        if cx.threads > 1 {
            assert_eq!(cx.chunk, DEFAULT_PAR_CHUNK);
        } else {
            assert_eq!(cx.chunk, 1);
        }
        let cx = ComputeOpts::new().threads(4).chunk(0).resolve();
        assert_eq!(
            cx,
            ComputeCtx {
                threads: 4,
                chunk: DEFAULT_PAR_CHUNK
            }
        );
        // Explicit values pass through untouched.
        let cx = ComputeOpts::new().threads(3).chunk(5).resolve();
        assert_eq!(
            cx,
            ComputeCtx {
                threads: 3,
                chunk: 5
            }
        );
        assert_eq!(
            ComputeCtx::new(2, 7),
            ComputeCtx {
                threads: 2,
                chunk: 7
            }
        );
    }

    #[test]
    fn config_defaults_are_sequential() {
        let config = EngineConfig::default();
        assert_eq!(config.compute, ComputeOpts::default());
        let config = config.compute(ComputeOpts::new().threads(2));
        assert_eq!(config.compute.threads, 2);
    }

    #[test]
    fn errors_format_usefully() {
        let e = RouteError::NeedMoreLayers {
            required: 9,
            allowed: 8,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('8'));
        assert!(RouteError::Disconnected.to_string().contains("connected"));
        assert!(RouteError::UnsupportedTopology("no coords".into())
            .to_string()
            .contains("no coords"));
    }
}
