//! The routing-engine interface shared by DFSSSP and all baselines.

use fabric::{Network, Routes};
use telemetry::{counters, hists, phases, Recorder, RecorderHandle};

/// Errors a routing engine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The network is not strongly connected; no routing can serve it.
    Disconnected,
    /// Deadlock-free layer assignment needs more virtual layers than the
    /// engine was allowed to use (`required` is a lower-bound hint: the
    /// layer count reached when the budget ran out).
    NeedMoreLayers {
        /// Layers the run would have needed at minimum.
        required: usize,
        /// Layers the engine was allowed.
        allowed: usize,
    },
    /// The engine only supports a topology family this network is not a
    /// member of (e.g. DOR needs coordinates, fat-tree routing needs
    /// levels). Mirrors OpenSM engines falling back / failing — the
    /// "missing bars" of the paper's Fig 4.
    UnsupportedTopology(String),
    /// A [`crate::Budget`] axis ran out mid-run (`resource` is the axis:
    /// `deadline_ms`, `nodes` or `cdg_edges`; `limit` the configured
    /// bound). The run stopped promptly instead of hanging.
    BudgetExceeded {
        /// Which budget axis tripped.
        resource: &'static str,
        /// The configured bound on that axis.
        limit: u64,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Disconnected => write!(f, "network is not strongly connected"),
            RouteError::NeedMoreLayers { required, allowed } => write!(
                f,
                "deadlock-free assignment needs >= {required} virtual layers, only {allowed} allowed"
            ),
            RouteError::UnsupportedTopology(why) => write!(f, "unsupported topology: {why}"),
            RouteError::BudgetExceeded { resource, limit } => {
                write!(f, "routing budget exceeded: {resource} limit {limit}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Uniform configuration for configurable routing engines: the
/// virtual-layer budget, the post-assignment balancing toggle, and the
/// telemetry sink. One struct instead of one setter per knob, so the
/// subnet manager's escalation ladder, the CLIs and the benches all
/// tune engines the same way ([`RoutingEngine::with_config`]).
///
/// Engines apply the fields they understand and ignore the rest (a
/// balancing toggle means nothing to LASH); [`RoutingEngine::config`]
/// reports the engine's current view.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Virtual-layer budget. InfiniBand hardware allows 8 data VLs.
    pub max_layers: usize,
    /// Spread paths over unused layers after assignment.
    pub balance: bool,
    /// Telemetry sink; defaults to the shared no-op.
    pub recorder: RecorderHandle,
    /// Resource bounds for each `route()` call; unlimited by default.
    pub budget: crate::Budget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_layers: 8,
            balance: true,
            recorder: telemetry::noop(),
            budget: crate::Budget::default(),
        }
    }
}

impl EngineConfig {
    /// The paper's defaults: 8 layers, balancing on, no telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the virtual-layer budget.
    pub fn max_layers(mut self, layers: usize) -> Self {
        self.max_layers = layers;
        self
    }

    /// Toggle post-assignment balancing.
    pub fn balance(mut self, on: bool) -> Self {
        self.balance = on;
        self
    }

    /// Attach a telemetry sink.
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Bound each `route()` call by `budget`.
    pub fn budget(mut self, budget: crate::Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// A routing algorithm: consumes a network, produces forwarding tables
/// plus a virtual-layer assignment.
pub trait RoutingEngine {
    /// Engine name, as reported in tables/figures (e.g. `"DFSSSP"`).
    fn name(&self) -> &'static str;

    /// Compute routes for `net`.
    fn route(&self, net: &Network) -> Result<Routes, RouteError>;

    /// Whether the routes this engine produces are guaranteed
    /// deadlock-free on arbitrary topologies.
    fn deadlock_free(&self) -> bool;

    /// The engine's current configuration. Engines without tunables
    /// (MinHop, plain SSSP) report `None`; the subnet manager's
    /// escalation ladder skips them.
    fn config(&self) -> Option<EngineConfig> {
        None
    }

    /// Apply a configuration. Returns `false` when the engine has no
    /// tunables, so callers know the request was ignored.
    fn set_config(&mut self, _config: EngineConfig) -> bool {
        false
    }

    /// Builder form of [`RoutingEngine::set_config`].
    fn with_config(mut self, config: EngineConfig) -> Self
    where
        Self: Sized,
    {
        self.set_config(config);
        self
    }
}

/// Boxed engines route too, so runtime-selected engines (CLI flags,
/// fallback ladders) can drive generic consumers like `SmLoop`.
impl<T: RoutingEngine + ?Sized> RoutingEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route(&self, net: &Network) -> Result<Routes, RouteError> {
        (**self).route(net)
    }

    fn deadlock_free(&self) -> bool {
        (**self).deadlock_free()
    }

    fn config(&self) -> Option<EngineConfig> {
        (**self).config()
    }

    fn set_config(&mut self, config: EngineConfig) -> bool {
        (**self).set_config(config)
    }
}

/// Wraps any engine so every `route` call is measured: wall-clock as
/// the `route_total` phase plus the standard route-quality metrics
/// ([`record_route_metrics`]). This is what makes baseline comparisons
/// apples-to-apples — MinHop and DFSSSP go through the identical
/// measurement path. Costs nothing when the recorder is disabled.
#[derive(Clone, Debug)]
pub struct Recorded<E> {
    /// The measured engine.
    pub inner: E,
    recorder: RecorderHandle,
}

impl<E: RoutingEngine> Recorded<E> {
    /// Measure `inner` through `recorder`.
    pub fn new(inner: E, recorder: RecorderHandle) -> Self {
        Recorded { inner, recorder }
    }

    /// Unwrap the measured engine.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: RoutingEngine> RoutingEngine for Recorded<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn route(&self, net: &Network) -> Result<Routes, RouteError> {
        let routes = telemetry::timed(&*self.recorder, phases::ROUTE_TOTAL, || {
            self.inner.route(net)
        })?;
        record_route_metrics(net, &routes, &*self.recorder);
        Ok(routes)
    }

    fn deadlock_free(&self) -> bool {
        self.inner.deadlock_free()
    }

    fn config(&self) -> Option<EngineConfig> {
        self.inner.config()
    }

    fn set_config(&mut self, config: EngineConfig) -> bool {
        self.inner.set_config(config)
    }
}

/// Record the standard quality metrics of a finished routing: the
/// `paths_routed` / `vls_used` counters and the `path_length` /
/// `vl_channels` / `edge_load` histograms. A no-op (not even a table
/// walk) when the recorder is disabled.
pub fn record_route_metrics(net: &Network, routes: &Routes, rec: &dyn Recorder) {
    if !rec.enabled() {
        return;
    }
    let num_layers = routes.num_layers() as usize;
    rec.add(counters::VLS_USED, num_layers as u64);
    let mut layer_channels = vec![vec![false; net.num_channels()]; num_layers];
    let mut loads = vec![0u64; net.num_channels()];
    let mut paths = 0u64;
    for (src_t, &src) in net.terminals().iter().enumerate() {
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            if src == dst {
                continue;
            }
            let Ok(channels) = routes.path_channels(net, src, dst) else {
                continue;
            };
            paths += 1;
            rec.observe(hists::PATH_LENGTH, channels.len() as u64);
            let layer = routes.layer(src_t, dst_t) as usize;
            for c in &channels {
                loads[c.idx()] += 1;
                if layer < num_layers {
                    layer_channels[layer][c.idx()] = true;
                }
            }
        }
    }
    rec.add(counters::PATHS_ROUTED, paths);
    for used in &layer_channels {
        let distinct = used.iter().filter(|&&u| u).count() as u64;
        rec.observe(hists::VL_CHANNELS, distinct);
    }
    for &load in &loads {
        rec.observe(hists::EDGE_LOAD, load);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cross_thread_boundaries() {
        // The route server hands engine configs (and the recorders
        // inside them) to background writer threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineConfig>();
        assert_send_sync::<RouteError>();
        let config = EngineConfig::new().max_layers(4);
        let moved = std::thread::spawn(move || config.max_layers)
            .join()
            .unwrap();
        assert_eq!(moved, 4);
    }

    #[test]
    fn errors_format_usefully() {
        let e = RouteError::NeedMoreLayers {
            required: 9,
            allowed: 8,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('8'));
        assert!(RouteError::Disconnected.to_string().contains("connected"));
        assert!(RouteError::UnsupportedTopology("no coords".into())
            .to_string()
            .contains("no coords"));
    }
}
