//! MinHop routing: minimal paths with per-channel load balancing.
//!
//! OpenSM's default engine. For every destination it computes hop counts
//! (BFS) and then lets each node forward over the least-loaded channel
//! among those on a minimal path. Delivers the second-highest bandwidth
//! after SSSP/DFSSSP in the paper's measurements, but is **not**
//! deadlock-free (its CDG can be cyclic, e.g. on rings and tori).

use dfsssp_core::{ComputeCtx, RouteError, RoutingEngine};
use fabric::{Network, Routes};

/// The MinHop engine.
#[derive(Clone, Debug, Default)]
pub struct MinHop;

impl MinHop {
    /// New MinHop engine.
    pub fn new() -> Self {
        MinHop
    }
}

impl RoutingEngine for MinHop {
    fn name(&self) -> &'static str {
        "MinHop"
    }

    fn route_in(&self, net: &Network, _cx: &ComputeCtx) -> Result<Routes, RouteError> {
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        let mut routes = Routes::new(net, self.name());
        // Per-channel route counters, persistent across destinations:
        // this is OpenSM's port-load balancing.
        let mut load = vec![0u32; net.num_channels()];
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let hops = net.hops_to(dst);
            for (v, _) in net.nodes() {
                if v == dst || hops[v.idx()] == u32::MAX {
                    continue;
                }
                let best = net
                    .out_channels(v)
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let u = net.channel(c).dst;
                        // Next hop must be closer AND able to forward
                        // (a switch) or be the destination itself.
                        (net.is_switch(u) || u == dst)
                            && hops[u.idx()] != u32::MAX
                            && hops[u.idx()] + 1 == hops[v.idx()]
                    })
                    .min_by_key(|&c| (load[c.idx()], c.0))
                    .expect("connected network always has a minimal next hop");
                routes.set_next(v, dst_t, best);
                load[best.idx()] += 1;
            }
        }
        Ok(routes)
    }

    fn deadlock_free(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::verify::{deadlock_report, verify_minimal};
    use fabric::topo;

    #[test]
    fn connects_all_pairs_minimally() {
        let net = topo::kary_ntree(3, 2);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let nt = net.num_terminals();
        assert_eq!(routes.validate_connectivity(&net).unwrap(), nt * (nt - 1));
        verify_minimal(&net, &routes).unwrap();
    }

    #[test]
    fn balances_across_parallel_uplinks() {
        // Two leaves connected via two spines: loads must split.
        let net = topo::clos2(8, 2, 4, 2, 2);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let loads = routes.channel_loads(&net).unwrap();
        let spine_loads: Vec<u32> = net
            .channels()
            .filter(|(_, c)| net.is_switch(c.src) && net.is_switch(c.dst))
            .map(|(id, _)| loads[id.idx()])
            .collect();
        let max = *spine_loads.iter().max().unwrap();
        let min = *spine_loads.iter().min().unwrap();
        assert!(max - min <= max / 2 + 1, "loads {spine_loads:?} unbalanced");
    }

    #[test]
    fn cyclic_on_ring() {
        // MinHop is not deadlock-free: the 5-ring CDG must be cyclic.
        let net = topo::ring(5, 1);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let report = deadlock_report(&net, &routes).unwrap();
        assert!(!report.is_deadlock_free());
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 4);
        let t0 = b.add_terminal("t0");
        b.link(t0, s0).unwrap();
        let s1 = b.add_switch("s1", 4);
        let t1 = b.add_terminal("t1");
        b.link(t1, s1).unwrap();
        assert_eq!(
            MinHop::new()
                .route_in(&b.build(), &ComputeCtx::seq())
                .unwrap_err(),
            RouteError::Disconnected
        );
    }
}
