//! Baseline routing engines the paper compares DFSSSP against (all are
//! engines of the InfiniBand Open Subnet Manager):
//!
//! * [`MinHop`] — port-load-balanced minimal routing (not deadlock-free).
//! * [`UpDown`] — cycle-free Up*/Down* routing.
//! * [`Dor`] — dimension-order routing for coordinate topologies
//!   (not deadlock-free on tori).
//! * [`Lash`] — layered shortest path: plain shortest paths plus the
//!   online one-cycle-search-per-path layer assignment.
//! * [`FatTree`] — destination-balanced up/down routing for k-ary n-trees
//!   and XGFTs (fails on non-tree topologies, like OpenSM's engine).

pub mod dor;
pub mod fattree;
pub mod lash;
pub mod minhop;
pub mod updown;

pub use dor::Dor;
pub use fattree::FatTree;
pub use lash::Lash;
pub use minhop::MinHop;
pub use updown::UpDown;

use dfsssp_core::{DfSssp, RoutingEngine, Sssp};

/// All engines of the paper's Figure 4/8 comparison, in display order.
/// (DOR is included; it fails on non-coordinate topologies.)
pub fn all_engines() -> Vec<Box<dyn RoutingEngine + Send + Sync>> {
    vec![
        Box::new(MinHop::new()),
        Box::new(UpDown::new()),
        Box::new(Dor::new()),
        Box::new(Lash::new()),
        Box::new(FatTree::new()),
        Box::new(Sssp::new()),
        Box::new(DfSssp::new()),
    ]
}
