//! Up*/Down* routing.
//!
//! Channels are oriented "up" (toward a root) or "down" from a BFS
//! spanning orientation; a legal path uses zero or more up channels
//! followed by zero or more down channels, which makes the channel
//! dependency graph acyclic (deadlock-free) but forbids many minimal
//! paths — the bandwidth limitation the paper measures against.
//!
//! Destination-based tables are built per destination with a Dijkstra
//! over (node, phase) states, settling each node with a *consistent*
//! choice: a node may forward down into `u` only if `u` itself settled
//! on an all-down continuation. Ties prefer down continuations (to keep
//! more down options open for predecessors), then the lesser channel
//! load (balancing like MinHop).

use dfsssp_core::{ComputeCtx, RouteError, RoutingEngine};
use fabric::{ChannelId, Network, NodeId, Routes};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: `(dist, up_flag, load, node, via_channel)` — `up_flag`
/// orders all-down continuations first among equal distances.
type HeapEntry = (u32, u8, u32, u32, u32);

/// The Up*/Down* engine.
#[derive(Clone, Debug, Default)]
pub struct UpDown {
    /// Optional explicit root switch; `None` picks the minimum-eccentricity
    /// switch.
    pub root: Option<NodeId>,
}

impl UpDown {
    /// Up*/Down* with automatic root selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick the root of the switch component containing the most
    /// switches: the switch minimizing its eccentricity over the
    /// switch-only graph, ties to the lowest id (OpenSM-style ranking).
    /// Multi-component fabrics (e.g. XGFTs with multi-homed terminals,
    /// whose switch graph splits into disjoint "planes") get one root
    /// per component internally.
    pub fn select_root(net: &Network) -> Option<NodeId> {
        let levels = Self::orientation(net, None);
        net.switches()
            .iter()
            .copied()
            .find(|&s| levels[s.idx()] == 0)
    }

    /// Per-node levels over the switch-only graph, one BFS ranking per
    /// switch component (terminals never forward, so up/down legality is
    /// meaningful per component; terminal links are directed by kind).
    /// `forced_root` pins the root of its own component.
    fn orientation(net: &Network, forced_root: Option<NodeId>) -> Vec<u32> {
        // Switch-only adjacency.
        let switch_neighbors = |s: NodeId| {
            net.out_channels(s)
                .iter()
                .map(|&c| net.channel(c).dst)
                .filter(|&d| net.is_switch(d))
                .collect::<Vec<_>>()
        };
        let n = net.num_nodes();
        let mut levels = vec![u32::MAX; n];
        let mut component = vec![u32::MAX; n];
        // Label components.
        let mut comp_members: Vec<Vec<NodeId>> = Vec::new();
        for &s in net.switches() {
            if component[s.idx()] != u32::MAX {
                continue;
            }
            let cid = comp_members.len() as u32;
            let mut members = vec![s];
            component[s.idx()] = cid;
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for v in switch_neighbors(u) {
                    if component[v.idx()] == u32::MAX {
                        component[v.idx()] = cid;
                        members.push(v);
                        stack.push(v);
                    }
                }
            }
            comp_members.push(members);
        }
        // Per component: min-eccentricity root (or the forced one), then
        // BFS levels from it.
        for members in &comp_members {
            let bfs = |root: NodeId| {
                let mut dist = vec![u32::MAX; n];
                let mut q = std::collections::VecDeque::new();
                dist[root.idx()] = 0;
                q.push_back(root);
                while let Some(u) = q.pop_front() {
                    for v in switch_neighbors(u) {
                        if dist[v.idx()] == u32::MAX {
                            dist[v.idx()] = dist[u.idx()] + 1;
                            q.push_back(v);
                        }
                    }
                }
                dist
            };
            let root = match forced_root {
                Some(r) if members.contains(&r) => r,
                _ => members
                    .iter()
                    .copied()
                    .map(|s| {
                        let dist = bfs(s);
                        let ecc = members
                            .iter()
                            .map(|m| dist[m.idx()])
                            .max()
                            .unwrap_or(u32::MAX);
                        (ecc, s)
                    })
                    .min_by_key(|&(ecc, s)| (ecc, s.0))
                    .map(|(_, s)| s)
                    .expect("component is non-empty"),
            };
            let dist = bfs(root);
            for &m in members {
                levels[m.idx()] = dist[m.idx()];
            }
        }
        // Terminals sit one level below their lowest parent (value is
        // only informational; legality uses the kind rule).
        for &t in net.terminals() {
            let min_parent = net
                .out_channels(t)
                .iter()
                .map(|&c| levels[net.channel(c).dst.idx()])
                .min()
                .unwrap_or(u32::MAX - 1);
            levels[t.idx()] = min_parent.saturating_add(1);
        }
        levels
    }

    /// Whether channel `c` is an "up" channel: terminal→switch is always
    /// up, switch→terminal always down; switch↔switch compares levels
    /// (toward the component root), ties broken by node id.
    #[inline]
    fn is_up(net: &Network, levels: &[u32], c: ChannelId) -> bool {
        let ch = net.channel(c);
        if net.is_terminal(ch.src) {
            return true;
        }
        if net.is_terminal(ch.dst) {
            return false;
        }
        let (ls, ld) = (levels[ch.src.idx()], levels[ch.dst.idx()]);
        ld < ls || (ld == ls && ch.dst.0 < ch.src.0)
    }
}

impl RoutingEngine for UpDown {
    fn name(&self) -> &'static str {
        "Up*/Down*"
    }

    fn route_in(&self, net: &Network, _cx: &ComputeCtx) -> Result<Routes, RouteError> {
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        if net.num_switches() == 0 {
            return Err(RouteError::UnsupportedTopology("no switches".into()));
        }
        let levels = Self::orientation(net, self.root);
        let mut routes = Routes::new(net, self.name());
        let mut load = vec![0u32; net.num_channels()];

        // Per node: settled distance, whether its chosen continuation is
        // all-down, and the chosen channel.
        let n = net.num_nodes();
        let mut dist = vec![u32::MAX; n];
        let mut all_down = vec![false; n];
        let mut choice: Vec<Option<ChannelId>> = vec![None; n];
        let mut settled = vec![false; n];

        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            settled.iter_mut().for_each(|s| *s = false);
            all_down.iter_mut().for_each(|a| *a = false);
            choice.iter_mut().for_each(|c| *c = None);
            dist[dst.idx()] = 0;
            all_down[dst.idx()] = true;
            // Heap entries: (dist, !down_pref, load, node, via_channel).
            // down_pref is a tie-break so that all-down continuations win.
            let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
            heap.push(Reverse((0, 0, 0, dst.0, u32::MAX)));
            while let Some(Reverse((d, up_flag, _ld, v, via))) = heap.pop() {
                let v = NodeId(v);
                if settled[v.idx()] {
                    continue;
                }
                settled[v.idx()] = true;
                dist[v.idx()] = d;
                if via != u32::MAX {
                    let c = ChannelId(via);
                    choice[v.idx()] = Some(c);
                    // Continuation is all-down iff this first hop is down
                    // (up_flag 0) and the rest is all-down; encoded below.
                    all_down[v.idx()] = up_flag == 0;
                    load[c.idx()] += 1;
                    routes.set_next(v, dst_t, c);
                }
                // Terminals never forward: only the destination and
                // switches are expanded.
                if v != dst && net.is_terminal(v) {
                    continue;
                }
                // Relax predecessors: channel c = (w -> v).
                for &c in net.in_channels(v) {
                    let w = net.channel(c).src;
                    if settled[w.idx()] {
                        continue;
                    }
                    let up = Self::is_up(net, &levels, c);
                    if !up && !all_down[v.idx()] {
                        // Going down into v requires v's continuation to
                        // be all-down.
                        continue;
                    }
                    heap.push(Reverse((d + 1, u8::from(up), load[c.idx()], w.0, c.0)));
                }
            }
            // Consistency requires relaxing from settled nodes only; a
            // node settled via an up hop can still be entered by further
            // up hops, which the relaxation above already allows.
            if settled.iter().any(|&s| !s) {
                return Err(RouteError::UnsupportedTopology(format!(
                    "up*/down* could not reach every node toward {}",
                    net.node(dst).name
                )));
            }
        }
        Ok(routes)
    }

    fn deadlock_free(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::verify::verify_deadlock_free;
    use fabric::topo;

    fn assert_valid(net: &Network) -> Routes {
        let routes = UpDown::new().route_in(net, &ComputeCtx::seq()).unwrap();
        let nt = net.num_terminals();
        assert_eq!(routes.validate_connectivity(net).unwrap(), nt * (nt - 1));
        verify_deadlock_free(net, &routes).unwrap();
        routes
    }

    #[test]
    fn deadlock_free_on_ring() {
        // The whole point: unlike SSSP/MinHop, Up*/Down* has an acyclic
        // CDG even on rings.
        assert_valid(&topo::ring(6, 1));
    }

    #[test]
    fn deadlock_free_on_torus() {
        assert_valid(&topo::torus(&[4, 4], 1));
    }

    #[test]
    fn deadlock_free_on_tree_and_minimal_there() {
        let net = topo::kary_ntree(2, 3);
        let routes = assert_valid(&net);
        // On a tree every legal path is minimal.
        dfsssp_core::verify::verify_minimal(&net, &routes).unwrap();
    }

    #[test]
    fn paths_follow_up_then_down() {
        let net = topo::torus(&[3, 3], 1);
        let levels = UpDown::orientation(&net, None);
        let routes = assert_valid(&net);
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                let mut gone_down = false;
                for c in routes.path_channels(&net, src, dst).unwrap() {
                    let up = UpDown::is_up(&net, &levels, c);
                    if up {
                        assert!(!gone_down, "up after down on {src:?}->{dst:?}");
                    } else {
                        gone_down = true;
                    }
                }
            }
        }
    }

    #[test]
    fn root_selection_prefers_center() {
        // On a line of switches the center minimizes eccentricity.
        let net = topo::mesh(&[5], 1);
        let root = UpDown::select_root(&net).unwrap();
        assert_eq!(net.node(root).name, "s2");
    }

    #[test]
    fn explicit_root_is_respected() {
        let net = topo::ring(5, 1);
        let root = net.node_by_name("s3").unwrap();
        let engine = UpDown { root: Some(root) };
        let routes = engine.route_in(&net, &ComputeCtx::seq()).unwrap();
        verify_deadlock_free(&net, &routes).unwrap();
    }

    #[test]
    fn works_on_irregular_random_topology() {
        let spec = fabric::topo::RandomTopoSpec {
            switches: 12,
            radix: 12,
            terminals_per_switch: 3,
            interswitch_links: 20,
        };
        for seed in 0..3 {
            let net = fabric::topo::random_topology(&spec, seed);
            assert_valid(&net);
        }
    }
}
