//! LASH — layered shortest path routing (Skeie/Lysne et al.).
//!
//! LASH routes along plain (unbalanced) shortest paths and assigns each
//! *switch-pair* path to a virtual layer such that every layer's channel
//! dependency graph stays acyclic — the *online* approach of the paper's
//! §IV, one cycle check per added path. Working at switch granularity
//! (as the real OpenSM engine does) keeps the path count at `|S|²`
//! instead of `|T|²`.
//!
//! Deadlock-free on arbitrary topologies, but its paths are not
//! load-balanced, which is why its effective bisection bandwidth trails
//! SSSP-based routing on fat trees (Fig 5) while matching it on Kautz
//! graphs (Fig 6).

use dfsssp_core::budget::record_trip;
use dfsssp_core::dfsssp::assign_layers_online_budgeted;
use dfsssp_core::paths::PathSet;
use dfsssp_core::{Budget, ComputeCtx, ComputeOpts, EngineConfig, RouteError, RoutingEngine};
use fabric::{ChannelId, Network, NodeId, Routes};
use rustc_hash::FxHashMap;
use telemetry::{phases, Recorder, RecorderHandle};

/// The LASH engine.
#[derive(Clone, Debug)]
pub struct Lash {
    /// Virtual-layer budget (InfiniBand: 8 in hardware).
    pub max_layers: usize,
    /// Telemetry sink (`cycle_search`/`layer_assign` phases of the
    /// online assignment; `cdg_build` covers tree + path extraction).
    pub recorder: RecorderHandle,
    /// Resource bounds for each run (see [`Budget`]).
    pub budget: Budget,
    /// Parallelism request, kept so configs round-trip through
    /// [`RoutingEngine::set_config`]. LASH's online assignment is
    /// inherently sequential (each placement depends on all earlier
    /// ones), so the engine runs single-threaded regardless.
    pub compute: ComputeOpts,
}

impl Default for Lash {
    fn default() -> Self {
        Lash {
            max_layers: 8,
            recorder: telemetry::noop(),
            budget: Budget::default(),
            compute: ComputeOpts::default(),
        }
    }
}

/// A delivery tree: multi-source BFS over the switch graph from a
/// terminal's attachment switches. Terminals with the same attachment
/// set share one tree.
struct Tree {
    /// Per node: the channel toward the nearest attachment switch
    /// (`None` at attachment switches themselves and for terminals).
    parent: Vec<Option<ChannelId>>,
    /// Per node: switch-hops to the nearest attachment.
    dist: Vec<u32>,
}

impl Lash {
    /// LASH with the hardware-default 8 layers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attachment switches of a terminal, sorted (the tree key).
    fn attachments(net: &Network, t: NodeId) -> Vec<u32> {
        let mut a: Vec<u32> = net
            .out_channels(t)
            .iter()
            .map(|&c| net.channel(c).dst.0)
            .filter(|&d| net.is_switch(NodeId(d)))
            .collect();
        a.sort_unstable();
        a.dedup();
        a
    }

    /// Multi-source BFS over the switch graph.
    fn build_tree(net: &Network, attachments: &[u32]) -> Tree {
        let n = net.num_nodes();
        let mut dist = vec![u32::MAX; n];
        let mut parent: Vec<Option<ChannelId>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        for &a in attachments {
            dist[a as usize] = 0;
            queue.push_back(NodeId(a));
        }
        while let Some(u) = queue.pop_front() {
            for &c in net.in_channels(u) {
                let v = net.channel(c).src;
                if !net.is_switch(v) {
                    continue;
                }
                if dist[v.idx()] == u32::MAX {
                    dist[v.idx()] = dist[u.idx()] + 1;
                    parent[v.idx()] = Some(c);
                    queue.push_back(v);
                }
            }
        }
        Tree { parent, dist }
    }

    /// Route and also return the number of layers used (Fig 9/10 data).
    pub fn route_with_layers(&self, net: &Network) -> Result<(Routes, usize), RouteError> {
        record_trip(&*self.recorder, self.route_with_layers_inner(net))
    }

    fn route_with_layers_inner(&self, net: &Network) -> Result<(Routes, usize), RouteError> {
        let guard = self.budget.start();
        guard.admit(net)?;
        let max_layers = guard.clamp_layers(self.max_layers);
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        let rec: &dyn Recorder = &*self.recorder;
        let (trees, terminal_tree, index_of, ps) =
            telemetry::timed(rec, phases::CDG_BUILD, || {
                // One tree per distinct attachment set.
                let mut tree_of_key: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
                let mut trees: Vec<Tree> = Vec::new();
                let mut terminal_tree: Vec<u32> = Vec::with_capacity(net.num_terminals());
                for &t in net.terminals() {
                    guard.check_deadline()?;
                    let key = Self::attachments(net, t);
                    let id = *tree_of_key.entry(key.clone()).or_insert_with(|| {
                        trees.push(Self::build_tree(net, &key));
                        (trees.len() - 1) as u32
                    });
                    terminal_tree.push(id);
                }

                // Switch-pair paths for the layer assignment: for every
                // tree and every switch, the channel walk to the nearest
                // attachment.
                let mut channels: Vec<ChannelId> = Vec::new();
                let mut offsets = vec![0u64];
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                for (tid, tree) in trees.iter().enumerate() {
                    for &s in net.switches() {
                        if tree.dist[s.idx()] == u32::MAX {
                            return Err(RouteError::Disconnected);
                        }
                        if tree.dist[s.idx()] == 0 {
                            continue;
                        }
                        let mut at = s;
                        while let Some(c) = tree.parent[at.idx()] {
                            channels.push(c);
                            at = net.channel(c).dst;
                        }
                        offsets.push(channels.len() as u64);
                        pairs.push((s.0, tid as u32));
                    }
                }
                let index_of: FxHashMap<(u32, u32), usize> =
                    pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
                let ps = PathSet::from_parts(channels, offsets, pairs);
                Ok((trees, terminal_tree, index_of, ps))
            })?;
        let (path_layer, stats) = assign_layers_online_budgeted(&ps, max_layers, rec, &guard)?;

        // Compile destination-based tables.
        let mut routes = Routes::new(net, self.name());
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            guard.check_deadline()?;
            let tree = &trees[terminal_tree[dst_t] as usize];
            for &s in net.switches() {
                match tree.parent[s.idx()] {
                    Some(c) => routes.set_next(s, dst_t, c),
                    None => {
                        // Attachment switch: deliver directly.
                        let c = net
                            .channel_between(s, dst)
                            .or_else(|| net.channels_between(s, dst).first().copied())
                            .ok_or_else(|| {
                                RouteError::UnsupportedTopology(
                                    "attachment switch without delivery channel".into(),
                                )
                            })?;
                        routes.set_next(s, dst_t, c);
                    }
                }
            }
            // Terminals inject via the attachment closest to dst.
            for (src_t, &src) in net.terminals().iter().enumerate() {
                if src == dst {
                    continue;
                }
                let inj = net
                    .out_channels(src)
                    .iter()
                    .copied()
                    .filter(|&c| net.is_switch(net.channel(c).dst))
                    .min_by_key(|&c| (tree.dist[net.channel(c).dst.idx()], c.0))
                    .ok_or_else(|| {
                        RouteError::UnsupportedTopology("terminal without switch".into())
                    })?;
                routes.set_next(src, dst_t, inj);
                // The pair's layer is the layer of its switch path.
                let src_sw = net.channel(inj).dst;
                let layer = index_of
                    .get(&(src_sw.0, terminal_tree[dst_t]))
                    .map_or(0, |&i| path_layer[i]);
                routes.set_layer(src_t, dst_t, layer);
            }
        }
        routes.recompute_num_layers();
        Ok((routes, stats.layers_used))
    }
}

impl RoutingEngine for Lash {
    fn name(&self) -> &'static str {
        "LASH"
    }

    fn route_in(&self, net: &Network, _cx: &ComputeCtx) -> Result<Routes, RouteError> {
        // Online assignment is order-dependent; LASH ignores the context.
        self.route_with_layers(net).map(|(r, _)| r)
    }

    fn deadlock_free(&self) -> bool {
        true
    }

    fn tunables(&self) -> bool {
        true
    }

    fn config(&self) -> EngineConfig {
        EngineConfig {
            max_layers: self.max_layers,
            // LASH has no balancing step; report the config default.
            balance: true,
            recorder: self.recorder.clone(),
            budget: self.budget.clone(),
            compute: self.compute,
        }
    }

    fn set_config(&mut self, config: EngineConfig) {
        self.max_layers = config.max_layers;
        self.recorder = config.recorder;
        self.budget = config.budget;
        self.compute = config.compute;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::verify::{verify_deadlock_free, verify_minimal};
    use fabric::topo;

    fn assert_valid(net: &Network) -> usize {
        let (routes, layers) = Lash::new().route_with_layers(net).unwrap();
        let nt = net.num_terminals();
        assert_eq!(routes.validate_connectivity(net).unwrap(), nt * (nt - 1));
        verify_deadlock_free(net, &routes).unwrap();
        verify_minimal(net, &routes).unwrap();
        layers
    }

    #[test]
    fn ring_needs_two_layers() {
        let layers = assert_valid(&topo::ring(5, 1));
        assert_eq!(layers, 2);
    }

    #[test]
    fn tree_needs_one_layer() {
        let layers = assert_valid(&topo::kary_ntree(2, 3));
        assert_eq!(layers, 1);
    }

    #[test]
    fn torus_within_hardware_budget() {
        // Odd extents: minimal paths have a unique ring direction, so the
        // dependency cycles of the classic torus hazard are guaranteed.
        let layers = assert_valid(&topo::torus(&[5, 5], 1));
        assert!((2..=8).contains(&layers), "layers = {layers}");
    }

    #[test]
    fn layer_budget_enforced() {
        let engine = Lash {
            max_layers: 1,
            ..Lash::new()
        };
        let err = engine
            .route_in(&topo::ring(5, 1), &ComputeCtx::seq())
            .unwrap_err();
        assert!(matches!(err, RouteError::NeedMoreLayers { .. }));
    }

    #[test]
    fn random_topology_supported() {
        let spec = fabric::topo::RandomTopoSpec {
            switches: 10,
            radix: 12,
            terminals_per_switch: 2,
            interswitch_links: 15,
        };
        let net = fabric::topo::random_topology(&spec, 5);
        let layers = assert_valid(&net);
        assert!(layers <= 8);
    }

    #[test]
    fn multi_homed_terminals_deliver_via_nearest_attachment() {
        let net = fabric::topo::realworld::RealSystem::Chic.build(0.2);
        assert_valid(&net);
    }

    #[test]
    fn same_switch_pairs_use_layer_zero() {
        let net = topo::ring(5, 3);
        let (routes, _) = Lash::new().route_with_layers(&net).unwrap();
        // Terminals 0,1,2 share switch s0.
        assert_eq!(routes.layer(0, 1), 0);
        assert_eq!(routes.layer(2, 0), 0);
    }
}
