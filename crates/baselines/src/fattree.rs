//! Fat-tree routing for k-ary n-trees and XGFTs.
//!
//! Classic destination-based fat-tree routing: below the least common
//! ancestor level a packet climbs, choosing the uplink by destination
//! index (which statically spreads destinations over the root set); above
//! it the downward path to any destination is unique. Requires a leveled
//! tree topology — on anything else the engine refuses, matching
//! OpenSM's ftree engine failing on the paper's irregular systems.

use dfsssp_core::{ComputeCtx, RouteError, RoutingEngine};
use fabric::{Network, Routes};

/// The fat-tree engine.
#[derive(Clone, Debug, Default)]
pub struct FatTree;

impl FatTree {
    /// New fat-tree engine.
    pub fn new() -> Self {
        FatTree
    }
}

impl RoutingEngine for FatTree {
    fn name(&self) -> &'static str {
        "FatTree"
    }

    fn route_in(&self, net: &Network, _cx: &ComputeCtx) -> Result<Routes, RouteError> {
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        // Every switch must carry a level, and every channel must move
        // exactly one level (a proper multi-stage tree). Terminals sit one
        // level below their (unique-level) attachment switches.
        let mut level = vec![0i32; net.num_nodes()];
        for (id, node) in net.nodes() {
            if node.kind == fabric::NodeKind::Switch {
                level[id.idx()] = match node.level {
                    Some(l) => l as i32,
                    None => {
                        return Err(RouteError::UnsupportedTopology(format!(
                            "switch {} has no tree level",
                            node.name
                        )))
                    }
                };
            }
        }
        for &t in net.terminals() {
            let attach = net
                .out_channels(t)
                .iter()
                .map(|&c| level[net.channel(c).dst.idx()])
                .min()
                .ok_or_else(|| {
                    RouteError::UnsupportedTopology("terminal without attachment".into())
                })?;
            level[t.idx()] = attach - 1;
        }
        for (_, ch) in net.channels() {
            let d = level[ch.src.idx()] - level[ch.dst.idx()];
            if d.abs() != 1 {
                return Err(RouteError::UnsupportedTopology(format!(
                    "link {} - {} does not cross exactly one level",
                    net.node(ch.src).name,
                    net.node(ch.dst).name
                )));
            }
        }
        let mut routes = Routes::new(net, self.name());
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let hops = net.hops_to(dst);
            for (v, _) in net.nodes() {
                if v == dst || hops[v.idx()] == u32::MAX {
                    continue;
                }
                let mut candidates: Vec<_> = net
                    .out_channels(v)
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let u = net.channel(c).dst;
                        (net.is_switch(u) || u == dst)
                            && hops[u.idx()] != u32::MAX
                            && hops[u.idx()] + 1 == hops[v.idx()]
                    })
                    .collect();
                if candidates.is_empty() {
                    return Err(RouteError::UnsupportedTopology(
                        "no minimal tree step".into(),
                    ));
                }
                // Downward candidates are unique in a proper tree; upward
                // candidates are spread by destination index.
                candidates.sort_by_key(|c| c.0);
                let pick = candidates[dst_t % candidates.len()];
                routes.set_next(v, dst_t, pick);
            }
        }
        Ok(routes)
    }

    fn deadlock_free(&self) -> bool {
        true // up-then-down paths on a tree have an acyclic CDG
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::verify::{verify_deadlock_free, verify_minimal};
    use fabric::topo;

    #[test]
    fn routes_kary_ntree() {
        let net = topo::kary_ntree(4, 2);
        let routes = FatTree::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let nt = net.num_terminals();
        assert_eq!(routes.validate_connectivity(&net).unwrap(), nt * (nt - 1));
        verify_minimal(&net, &routes).unwrap();
        verify_deadlock_free(&net, &routes).unwrap();
    }

    #[test]
    fn routes_xgft() {
        let net = topo::xgft(2, &[4, 4], &[2, 2]);
        let routes = FatTree::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        verify_minimal(&net, &routes).unwrap();
        verify_deadlock_free(&net, &routes).unwrap();
    }

    #[test]
    fn spreads_destinations_over_roots() {
        let net = topo::kary_ntree(4, 2);
        let routes = FatTree::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let loads = routes.channel_loads(&net).unwrap();
        let up_loads: Vec<u32> = net
            .channels()
            .filter(|(_, c)| {
                net.is_switch(c.src)
                    && net.is_switch(c.dst)
                    && net.node(c.dst).level > net.node(c.src).level
            })
            .map(|(id, _)| loads[id.idx()])
            .collect();
        let max = *up_loads.iter().max().unwrap();
        let min = *up_loads.iter().min().unwrap();
        assert!(max <= 2 * min.max(1), "uplink loads {up_loads:?}");
    }

    #[test]
    fn refuses_ring() {
        let err = FatTree::new()
            .route_in(&topo::ring(5, 1), &ComputeCtx::seq())
            .unwrap_err();
        assert!(matches!(err, RouteError::UnsupportedTopology(_)));
    }

    #[test]
    fn refuses_torus() {
        let err = FatTree::new()
            .route_in(&topo::torus(&[3, 3], 1), &ComputeCtx::seq())
            .unwrap_err();
        assert!(matches!(err, RouteError::UnsupportedTopology(_)));
    }
}
