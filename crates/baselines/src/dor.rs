//! Dimension-order routing (DOR) for coordinate topologies.
//!
//! Routes correct coordinates one dimension at a time (dimension 0 first),
//! taking the shorter wrap direction on tori. Only defined on networks
//! whose switches carry coordinates (meshes, tori, hypercubes); on
//! anything else it fails like OpenSM's engine does on the paper's
//! irregular systems (the missing Fig 4 bars).
//!
//! DOR is deadlock-free on meshes but **not** on tori (wraparound links
//! close dependency cycles) — LASH is its cycle-free derivative.

use dfsssp_core::{ComputeCtx, RouteError, RoutingEngine};
use fabric::{ChannelId, Network, NodeId, Routes};

/// The DOR engine.
#[derive(Clone, Debug, Default)]
pub struct Dor;

impl Dor {
    /// New DOR engine.
    pub fn new() -> Self {
        Dor
    }

    /// Dimension extents, inferred as `max(coord) + 1` per dimension.
    fn extents(net: &Network) -> Result<Vec<u16>, RouteError> {
        let mut extents: Vec<u16> = Vec::new();
        for &s in net.switches() {
            let coord = net.node(s).coord.as_ref().ok_or_else(|| {
                RouteError::UnsupportedTopology(format!(
                    "switch {} has no coordinates",
                    net.node(s).name
                ))
            })?;
            if extents.is_empty() {
                extents = vec![0; coord.len()];
            }
            if coord.len() != extents.len() {
                return Err(RouteError::UnsupportedTopology(
                    "inconsistent coordinate dimensionality".into(),
                ));
            }
            for (d, &x) in coord.iter().enumerate() {
                extents[d] = extents[d].max(x + 1);
            }
        }
        if extents.is_empty() {
            return Err(RouteError::UnsupportedTopology("no switches".into()));
        }
        Ok(extents)
    }

    /// The switch a terminal hangs off.
    fn home_switch(net: &Network, t: NodeId) -> Result<NodeId, RouteError> {
        net.out_channels(t)
            .iter()
            .map(|&c| net.channel(c).dst)
            .find(|&s| net.is_switch(s))
            .ok_or_else(|| RouteError::UnsupportedTopology("terminal without switch".into()))
    }

    /// Per-dimension wraparound detection: dimension `d` wraps iff some
    /// switch pair differing only in `d` by `extent - 1` is connected.
    fn wrap_dims(net: &Network, extents: &[u16]) -> Vec<bool> {
        let mut wraps = vec![false; extents.len()];
        for (_, ch) in net.channels() {
            if !(net.is_switch(ch.src) && net.is_switch(ch.dst)) {
                continue;
            }
            let (Some(a), Some(b)) = (
                net.node(ch.src).coord.as_deref(),
                net.node(ch.dst).coord.as_deref(),
            ) else {
                continue;
            };
            let diffs: Vec<usize> = (0..a.len()).filter(|&d| a[d] != b[d]).collect();
            if let [d] = diffs[..] {
                if a[d].abs_diff(b[d]) == extents[d] - 1 && extents[d] > 2 {
                    wraps[d] = true;
                }
            }
        }
        wraps
    }

    /// Next coordinate from `at` toward `goal` in dimension-order:
    /// modular-shortest direction in wrapping dimensions, direct
    /// direction otherwise. `None` when already at `goal`.
    fn next_coord(at: &[u16], goal: &[u16], extents: &[u16], wraps: &[bool]) -> Option<Vec<u16>> {
        for d in 0..at.len() {
            if at[d] == goal[d] {
                continue;
            }
            let size = extents[d] as i32;
            let (a, g) = (at[d] as i32, goal[d] as i32);
            let step = if wraps[d] {
                let fwd = (g - a).rem_euclid(size);
                let bwd = (a - g).rem_euclid(size);
                if fwd <= bwd {
                    1
                } else {
                    size - 1
                }
            } else if g > a {
                1
            } else {
                size - 1 // -1 modulo size; never actually wraps since g < a
            };
            let mut next = at.to_vec();
            next[d] = ((a + step).rem_euclid(size)) as u16;
            return Some(next);
        }
        None
    }

    /// Channel from switch `s` to the neighboring switch at `coord`.
    fn channel_to_coord(net: &Network, s: NodeId, coord: &[u16]) -> Option<ChannelId> {
        net.out_channels(s).iter().copied().find(|&c| {
            let d = net.channel(c).dst;
            net.is_switch(d) && net.node(d).coord.as_deref() == Some(coord)
        })
    }
}

impl RoutingEngine for Dor {
    fn name(&self) -> &'static str {
        "DOR"
    }

    fn route_in(&self, net: &Network, _cx: &ComputeCtx) -> Result<Routes, RouteError> {
        if !net.is_strongly_connected() {
            return Err(RouteError::Disconnected);
        }
        let extents = Self::extents(net)?;
        let wraps = Self::wrap_dims(net, &extents);
        let mut routes = Routes::new(net, self.name());
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let home = Self::home_switch(net, dst)?;
            let goal = net.node(home).coord.clone().unwrap();
            // Terminals inject toward their own switch.
            for &t in net.terminals() {
                if t == dst {
                    continue;
                }
                let sw = Self::home_switch(net, t)?;
                let c = net
                    .channel_between(t, sw)
                    .ok_or_else(|| RouteError::UnsupportedTopology("parallel injection".into()))?;
                routes.set_next(t, dst_t, c);
            }
            // Switches correct dimensions in order.
            for &s in net.switches() {
                if s == home {
                    let c = net.channel_between(s, dst).ok_or_else(|| {
                        RouteError::UnsupportedTopology("missing delivery channel".into())
                    })?;
                    routes.set_next(s, dst_t, c);
                    continue;
                }
                let at = net.node(s).coord.as_ref().unwrap();
                let next = Self::next_coord(at, &goal, &extents, &wraps).ok_or_else(|| {
                    RouteError::UnsupportedTopology("duplicate switch coordinates".into())
                })?;
                let c = Self::channel_to_coord(net, s, &next).ok_or_else(|| {
                    RouteError::UnsupportedTopology(format!(
                        "no channel from {at:?} toward {next:?}"
                    ))
                })?;
                routes.set_next(s, dst_t, c);
            }
        }
        Ok(routes)
    }

    fn deadlock_free(&self) -> bool {
        false // deadlock-free on meshes, but not on tori
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::verify::{deadlock_report, verify_minimal};
    use fabric::topo;

    #[test]
    fn routes_mesh_minimally_and_deadlock_free() {
        let net = topo::mesh(&[4, 3], 1);
        let routes = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let nt = net.num_terminals();
        assert_eq!(routes.validate_connectivity(&net).unwrap(), nt * (nt - 1));
        verify_minimal(&net, &routes).unwrap();
        // On a mesh, DOR's CDG is acyclic.
        assert!(deadlock_report(&net, &routes).unwrap().is_deadlock_free());
    }

    #[test]
    fn routes_torus_minimally_but_cyclically() {
        let net = topo::torus(&[4, 4], 1);
        let routes = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        verify_minimal(&net, &routes).unwrap();
        // Wraparound closes dependency cycles: the classical result.
        assert!(!deadlock_report(&net, &routes).unwrap().is_deadlock_free());
    }

    #[test]
    fn dimension_zero_corrected_first() {
        let net = topo::mesh(&[3, 3], 1);
        let routes = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        // From (0,0) to (2,2): path must go through (1,0), (2,0), (2,1).
        let src = net.terminals()[0]; // attached to s0 = (0,0)
        let dst = net.terminals()[8]; // attached to s8 = (2,2)
        let path = routes.path_channels(&net, src, dst).unwrap();
        let mids: Vec<&str> = path
            .iter()
            .map(|&c| net.node(net.channel(c).dst).name.as_str())
            .collect();
        assert_eq!(mids, vec!["s0", "s3", "s6", "s7", "s8", "t8"]);
    }

    #[test]
    fn torus_wrap_direction_is_shorter_side() {
        let net = topo::torus(&[5], 1);
        let routes = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        // s0 to s4 is one wrap hop, not four forward hops.
        let src = net.terminals()[0];
        let dst = net.terminals()[4];
        assert_eq!(routes.path_channels(&net, src, dst).unwrap().len(), 3);
    }

    #[test]
    fn fails_without_coordinates() {
        let net = topo::kary_ntree(2, 2);
        let err = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap_err();
        assert!(matches!(err, RouteError::UnsupportedTopology(_)));
    }

    #[test]
    fn hypercube_supported() {
        let net = topo::hypercube(3, 1);
        let routes = Dor::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        verify_minimal(&net, &routes).unwrap();
    }
}
