//! Traffic-pattern generators.
//!
//! A pattern is a list of flows `(src_t, dst_t)` over terminal indices.
//! The central one for the paper is [`Pattern::random_bisection`]; the
//! others serve the application models and the wider test surface.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A traffic pattern: simultaneous flows between terminal indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    /// Flows as `(src_t, dst_t)` pairs, `src_t != dst_t`.
    pub flows: Vec<(u32, u32)>,
}

impl Pattern {
    /// A random bisection: the terminals are split into two random equal
    /// halves, matched one-to-one, and each pair exchanges traffic in
    /// both directions (Netgauge's eBB benchmark does 1 MiB ping-pongs).
    /// With an odd terminal count one endpoint sits out.
    pub fn random_bisection(num_terminals: usize, seed: u64) -> Pattern {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..num_terminals as u32).collect();
        ids.shuffle(&mut rng);
        let half = num_terminals / 2;
        let mut flows = Vec::with_capacity(2 * half);
        for i in 0..half {
            let (a, b) = (ids[i], ids[half + i]);
            flows.push((a, b));
            flows.push((b, a));
        }
        Pattern { flows }
    }

    /// A random permutation: every terminal sends to a distinct target
    /// (fixed-point-free where possible).
    pub fn random_permutation(num_terminals: usize, seed: u64) -> Pattern {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut targets: Vec<u32> = (0..num_terminals as u32).collect();
        targets.shuffle(&mut rng);
        // Remove fixed points by rotating them onto their neighbor.
        for i in 0..targets.len() {
            if targets[i] == i as u32 {
                let j = (i + 1) % targets.len();
                targets.swap(i, j);
            }
        }
        let flows = targets
            .into_iter()
            .enumerate()
            .filter(|&(i, t)| i as u32 != t)
            .map(|(i, t)| (i as u32, t))
            .collect();
        Pattern { flows }
    }

    /// Cyclic shift: terminal `i` sends to `i + k (mod n)`.
    pub fn shift(num_terminals: usize, k: usize) -> Pattern {
        let n = num_terminals as u32;
        let flows = (0..n)
            .filter(|&i| (i + k as u32) % n != i)
            .map(|i| (i, (i + k as u32) % n))
            .collect();
        Pattern { flows }
    }

    /// Bit complement on the nearest power-of-two prefix of terminals.
    pub fn bit_complement(num_terminals: usize) -> Pattern {
        let bits = usize::BITS - 1 - num_terminals.leading_zeros();
        let n = 1u32 << bits;
        let mask = n - 1;
        let flows = (0..n)
            .filter(|&i| (i ^ mask) != i)
            .map(|i| (i, i ^ mask))
            .collect();
        Pattern { flows }
    }

    /// Matrix transpose on a `rows x cols` process grid laid out
    /// row-major over the first `rows*cols` terminals.
    pub fn transpose(rows: usize, cols: usize) -> Pattern {
        let mut flows = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let src = (r * cols + c) as u32;
                let dst = (c * rows + r) as u32;
                if src != dst && (c * rows + r) < rows * cols {
                    flows.push((src, dst));
                }
            }
        }
        Pattern { flows }
    }

    /// 2D nearest-neighbor stencil (4-point, non-periodic) on a
    /// `rows x cols` grid: each rank exchanges with its grid neighbors.
    pub fn stencil2d(rows: usize, cols: usize) -> Pattern {
        let mut flows = Vec::new();
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if r + 1 < rows {
                    flows.push((id(r, c), id(r + 1, c)));
                    flows.push((id(r + 1, c), id(r, c)));
                }
                if c + 1 < cols {
                    flows.push((id(r, c), id(r, c + 1)));
                    flows.push((id(r, c + 1), id(r, c)));
                }
            }
        }
        Pattern { flows }
    }

    /// One phase of a phased all-to-all over `n` ranks: in phase `p`,
    /// rank `i` sends to `(i + p) mod n` — the classic ring schedule MPI
    /// implementations use for large messages.
    pub fn alltoall_phase(n: usize, phase: usize) -> Pattern {
        Pattern::shift(n, phase)
    }

    /// Tornado pattern on a ring-ordered rank space: rank `i` sends to
    /// `i + ceil(n/2) - 1` — the classic adversary for minimal routing on
    /// rings/tori.
    pub fn tornado(num_terminals: usize) -> Pattern {
        Pattern::shift(
            num_terminals,
            num_terminals.div_ceil(2).saturating_sub(1).max(1),
        )
    }

    /// Hotspot: every rank sends to one victim (rank 0), modeling an
    /// incast (e.g. a parallel file system target).
    pub fn hotspot(num_terminals: usize, victim: u32) -> Pattern {
        let flows = (0..num_terminals as u32)
            .filter(|&i| i != victim)
            .map(|i| (i, victim))
            .collect();
        Pattern { flows }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the pattern has no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashSet;

    #[test]
    fn bisection_is_perfect_matching_both_ways() {
        let p = Pattern::random_bisection(16, 1);
        assert_eq!(p.len(), 16);
        let mut sends = FxHashSet::default();
        let mut recvs = FxHashSet::default();
        for &(s, d) in &p.flows {
            assert_ne!(s, d);
            assert!(sends.insert(s), "each terminal sends once");
            assert!(recvs.insert(d), "each terminal receives once");
        }
        assert_eq!(sends.len(), 16);
    }

    #[test]
    fn bisection_deterministic_per_seed() {
        assert_eq!(
            Pattern::random_bisection(32, 7),
            Pattern::random_bisection(32, 7)
        );
        assert_ne!(
            Pattern::random_bisection(32, 7),
            Pattern::random_bisection(32, 8)
        );
    }

    #[test]
    fn odd_terminal_count_leaves_one_out() {
        let p = Pattern::random_bisection(9, 0);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn permutation_has_no_fixed_points() {
        for seed in 0..10 {
            let p = Pattern::random_permutation(17, seed);
            for &(s, d) in &p.flows {
                assert_ne!(s, d);
            }
            // All sources distinct, all destinations distinct.
            let srcs: FxHashSet<u32> = p.flows.iter().map(|f| f.0).collect();
            let dsts: FxHashSet<u32> = p.flows.iter().map(|f| f.1).collect();
            assert_eq!(srcs.len(), p.len());
            assert_eq!(dsts.len(), p.len());
        }
    }

    #[test]
    fn shift_wraps() {
        let p = Pattern::shift(4, 1);
        assert_eq!(p.flows, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(Pattern::shift(4, 0).is_empty());
        assert!(Pattern::shift(4, 4).is_empty());
    }

    #[test]
    fn bit_complement_pairs_up() {
        let p = Pattern::bit_complement(8);
        assert_eq!(p.len(), 8);
        for &(s, d) in &p.flows {
            assert_eq!(s ^ d, 7);
        }
        // Non-power-of-two truncates to the prefix.
        let p = Pattern::bit_complement(10);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn transpose_square() {
        let p = Pattern::transpose(3, 3);
        // Diagonal ranks don't send; 6 off-diagonal flows.
        assert_eq!(p.len(), 6);
        for &(s, d) in &p.flows {
            let (r, c) = (s / 3, s % 3);
            assert_eq!(d, c * 3 + r);
        }
    }

    #[test]
    fn stencil_flow_count() {
        // 3x3 grid: 12 undirected neighbor pairs => 24 flows.
        let p = Pattern::stencil2d(3, 3);
        assert_eq!(p.len(), 24);
    }

    #[test]
    fn tornado_is_half_ring_shift() {
        let p = Pattern::tornado(8);
        assert_eq!(p.flows[0], (0, 3));
        assert_eq!(p.len(), 8);
        let p = Pattern::tornado(9);
        assert_eq!(p.flows[0], (0, 4));
    }

    #[test]
    fn hotspot_targets_one_victim() {
        let p = Pattern::hotspot(6, 2);
        assert_eq!(p.len(), 5);
        assert!(p.flows.iter().all(|&(s, d)| d == 2 && s != 2));
    }

    #[test]
    fn alltoall_phases_cover_everyone() {
        let n = 5;
        let mut seen = FxHashSet::default();
        for phase in 1..n {
            for &(s, d) in &Pattern::alltoall_phase(n, phase).flows {
                assert!(seen.insert((s, d)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1));
    }
}
