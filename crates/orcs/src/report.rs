//! Summary statistics for simulation results.

/// Mean / min / max / standard deviation of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample; an empty sample yields zeros.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
                n: 0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Summary {
            mean,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            stddev: var.sqrt(),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.4} (min {:.4}, max {:.4}, sd {:.4}, n={})",
            self.mean, self.min, self.max, self.stddev, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0]);
        let out = s.to_string();
        assert!(out.contains("mean 1.5"));
        assert!(out.contains("n=2"));
    }
}
