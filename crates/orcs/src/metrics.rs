//! Aggregation metrics: how one pattern's congestion becomes one number.
//!
//! The real ORCS offers several accumulation modes (`sum_max_cong`,
//! `max_cong`, `hist_*` …) because different studies care about
//! different tails. We provide the modes the paper's evaluation implies
//! plus histogram support for the distribution plots.

use crate::patterns::Pattern;
use crate::sim::{congestion_profile, flow_bandwidths};
use fabric::{Network, Routes, RoutesError};

/// How to reduce one pattern's simulation to a scalar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Mean over flows of `1 / max congestion along the flow` — the
    /// effective-bandwidth metric used throughout the reproduction.
    MeanFlowBandwidth,
    /// Bandwidth of the slowest flow (the completion-time view an
    /// all-to-all phase takes).
    MinFlowBandwidth,
    /// Largest channel congestion anywhere (ORCS `max_cong`).
    MaxCongestion,
    /// Sum over flows of their path's max congestion (ORCS
    /// `sum_max_cong`; lower is better).
    SumMaxCongestion,
}

impl Metric {
    /// All modes.
    pub const ALL: [Metric; 4] = [
        Metric::MeanFlowBandwidth,
        Metric::MinFlowBandwidth,
        Metric::MaxCongestion,
        Metric::SumMaxCongestion,
    ];

    /// Evaluate the metric for one pattern.
    pub fn eval(
        self,
        net: &Network,
        routes: &Routes,
        pattern: &Pattern,
    ) -> Result<f64, RoutesError> {
        match self {
            Metric::MeanFlowBandwidth => {
                let bws = flow_bandwidths(net, routes, pattern)?;
                Ok(bws.iter().sum::<f64>() / bws.len().max(1) as f64)
            }
            Metric::MinFlowBandwidth => {
                let bws = flow_bandwidths(net, routes, pattern)?;
                Ok(bws.iter().copied().fold(f64::INFINITY, f64::min).min(1.0))
            }
            Metric::MaxCongestion => {
                let profile = congestion_profile(net, routes, pattern)?;
                Ok(profile.into_iter().max().unwrap_or(0) as f64)
            }
            Metric::SumMaxCongestion => {
                let bws = flow_bandwidths(net, routes, pattern)?;
                Ok(bws.iter().map(|b| 1.0 / b).sum())
            }
        }
    }

    /// Whether larger values of this metric are better.
    pub fn higher_is_better(self) -> bool {
        matches!(self, Metric::MeanFlowBandwidth | Metric::MinFlowBandwidth)
    }
}

/// A fixed-bucket histogram over `[0, 1]` flow bandwidths (the ORCS
/// `hist_*` modes), for distribution plots.
#[derive(Clone, Debug, PartialEq)]
pub struct BandwidthHistogram {
    /// Bucket counts; bucket `i` covers `(i/n, (i+1)/n]`.
    pub buckets: Vec<usize>,
    /// Samples seen.
    pub samples: usize,
}

impl BandwidthHistogram {
    /// New histogram with `n` buckets.
    pub fn new(n: usize) -> BandwidthHistogram {
        assert!(n >= 1);
        BandwidthHistogram {
            buckets: vec![0; n],
            samples: 0,
        }
    }

    /// Accumulate one pattern's flow bandwidths.
    pub fn add_pattern(
        &mut self,
        net: &Network,
        routes: &Routes,
        pattern: &Pattern,
    ) -> Result<(), RoutesError> {
        for bw in flow_bandwidths(net, routes, pattern)? {
            let n = self.buckets.len();
            let idx = ((bw * n as f64).ceil() as usize).clamp(1, n) - 1;
            self.buckets[idx] += 1;
            self.samples += 1;
        }
        Ok(())
    }

    /// Fraction of flows at full (unshared) bandwidth.
    pub fn full_speed_fraction(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        *self.buckets.last().unwrap() as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;

    fn setup() -> (Network, Routes) {
        let net = topo::kary_ntree(4, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        (net, routes)
    }

    #[test]
    fn metrics_agree_on_a_lone_flow() {
        let (net, routes) = setup();
        let p = Pattern {
            flows: vec![(0, 9)],
        };
        assert_eq!(
            Metric::MeanFlowBandwidth.eval(&net, &routes, &p).unwrap(),
            1.0
        );
        assert_eq!(
            Metric::MinFlowBandwidth.eval(&net, &routes, &p).unwrap(),
            1.0
        );
        assert_eq!(Metric::MaxCongestion.eval(&net, &routes, &p).unwrap(), 1.0);
        assert_eq!(
            Metric::SumMaxCongestion.eval(&net, &routes, &p).unwrap(),
            1.0
        );
    }

    #[test]
    fn incast_stresses_every_metric() {
        let (net, routes) = setup();
        let nt = net.num_terminals();
        let p = Pattern::hotspot(nt, 0);
        let mean = Metric::MeanFlowBandwidth.eval(&net, &routes, &p).unwrap();
        let min = Metric::MinFlowBandwidth.eval(&net, &routes, &p).unwrap();
        let maxc = Metric::MaxCongestion.eval(&net, &routes, &p).unwrap();
        assert!(min <= mean && mean < 1.0);
        assert_eq!(maxc, (nt - 1) as f64, "ejection link carries everyone");
        assert!(!Metric::MaxCongestion.higher_is_better());
        assert!(Metric::MeanFlowBandwidth.higher_is_better());
    }

    #[test]
    fn sum_max_congestion_is_flowwise_sum() {
        let (net, routes) = setup();
        let p = Pattern::shift(net.num_terminals(), 1);
        let sum = Metric::SumMaxCongestion.eval(&net, &routes, &p).unwrap();
        let bws = flow_bandwidths(&net, &routes, &p).unwrap();
        let expect: f64 = bws.iter().map(|b| 1.0 / b).sum();
        assert!((sum - expect).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_flows() {
        let (net, routes) = setup();
        let mut h = BandwidthHistogram::new(4);
        let p = Pattern {
            flows: vec![(0, 9)],
        };
        h.add_pattern(&net, &routes, &p).unwrap();
        assert_eq!(h.samples, 1);
        assert_eq!(h.buckets, vec![0, 0, 0, 1]);
        assert_eq!(h.full_speed_fraction(), 1.0);
        // A congested pattern lands in lower buckets.
        let incast = Pattern::hotspot(net.num_terminals(), 0);
        h.add_pattern(&net, &routes, &incast).unwrap();
        assert!(h.buckets[0] > 0);
        assert!(h.full_speed_fraction() < 1.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = BandwidthHistogram::new(3);
        assert_eq!(h.full_speed_fraction(), 0.0);
    }
}
