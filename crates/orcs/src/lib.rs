//! ORCS — an Oblivious Routing Congestion Simulator.
//!
//! Reimplementation of the simulator the paper uses for its §V
//! evaluation: given a network, routing tables and a traffic pattern, it
//! counts how many flows cross each channel and charges every flow the
//! reciprocal of the worst congestion on its path. The *effective
//! bisection bandwidth* is the average flow bandwidth over many random
//! bisection patterns (random perfect matchings between two random
//! halves of the endpoints).
//!
//! * [`patterns`] — pattern generators: random bisections, permutations,
//!   shifts, transpose/bit-complement, stencils and all-to-all phases.
//! * [`sim`] — congestion accounting and the eBB driver (rayon-parallel
//!   over patterns, deterministic per seed).
//! * [`report`] — small summary-statistics helpers shared by the
//!   reproduction binaries.

pub mod metrics;
pub mod patterns;
pub mod report;
pub mod sim;

pub use metrics::{BandwidthHistogram, Metric};
pub use patterns::Pattern;
pub use report::Summary;
pub use sim::{
    effective_bisection_bandwidth, effective_bisection_bandwidth_recorded, flow_bandwidths,
    EbbOptions,
};
