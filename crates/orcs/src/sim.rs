//! Congestion accounting and the effective-bisection-bandwidth driver.

use crate::patterns::Pattern;
use crate::report::Summary;
use fabric::{Network, Routes, RoutesError};
use rayon::prelude::*;

/// Per-flow relative bandwidths under `pattern`: every channel's
/// congestion is the number of flows crossing it, and a flow's bandwidth
/// is `1 / max(congestion along its path)` (ORCS's model: the bottleneck
/// link is shared fairly among its flows). `1.0` means unshared
/// full-speed; the terminal injection channel always carries at least the
/// flow itself.
pub fn flow_bandwidths(
    net: &Network,
    routes: &Routes,
    pattern: &Pattern,
) -> Result<Vec<f64>, RoutesError> {
    let mut congestion = vec![0u32; net.num_channels()];
    let terminals = net.terminals();
    // Two walks: count congestion, then score flows.
    for &(s, d) in &pattern.flows {
        let (src, dst) = (terminals[s as usize], terminals[d as usize]);
        for step in routes.path(net, src, dst)? {
            congestion[step?.idx()] += 1;
        }
    }
    let mut out = Vec::with_capacity(pattern.flows.len());
    for &(s, d) in &pattern.flows {
        let (src, dst) = (terminals[s as usize], terminals[d as usize]);
        let mut worst = 1u32;
        for step in routes.path(net, src, dst)? {
            worst = worst.max(congestion[step?.idx()]);
        }
        out.push(1.0 / worst as f64);
    }
    Ok(out)
}

/// Options for the eBB simulation.
#[derive(Clone, Copy, Debug)]
pub struct EbbOptions {
    /// Number of random bisection patterns (the paper uses 1000 for the
    /// Netgauge runs; §V plots use ORCS defaults).
    pub patterns: usize,
    /// Base RNG seed; pattern `i` uses `seed + i`.
    pub seed: u64,
    /// Physical per-link bandwidth used to scale the relative result
    /// (e.g. 946.0 MiB/s for Deimos' PCIe 1.1 HCAs); `1.0` keeps the
    /// result relative.
    pub link_bandwidth: f64,
}

impl Default for EbbOptions {
    fn default() -> Self {
        EbbOptions {
            patterns: 1000,
            seed: 0x0DF5_55B0,
            link_bandwidth: 1.0,
        }
    }
}

/// Effective bisection bandwidth: the mean flow bandwidth over
/// `opts.patterns` random bisections, scaled by `opts.link_bandwidth`.
/// The returned [`Summary`] aggregates per-pattern means.
pub fn effective_bisection_bandwidth(
    net: &Network,
    routes: &Routes,
    opts: &EbbOptions,
) -> Result<Summary, RoutesError> {
    effective_bisection_bandwidth_recorded(net, routes, opts, &telemetry::Noop)
}

/// [`effective_bisection_bandwidth`] with telemetry: the whole sweep
/// reports as one `ebb` phase, each pattern bumps `patterns_simulated`,
/// and per-pattern mean bandwidths land in the `pattern_bw_milli`
/// histogram (relative bandwidth × 1000, so 1000 = unshared
/// full speed). Identical results either way — the recorder only
/// observes.
pub fn effective_bisection_bandwidth_recorded(
    net: &Network,
    routes: &Routes,
    opts: &EbbOptions,
    rec: &dyn telemetry::Recorder,
) -> Result<Summary, RoutesError> {
    let nt = net.num_terminals();
    let per_pattern: Result<Vec<f64>, RoutesError> =
        telemetry::timed(rec, telemetry::phases::EBB, || {
            (0..opts.patterns)
                .into_par_iter()
                .map(|i| {
                    let pattern = Pattern::random_bisection(nt, opts.seed.wrapping_add(i as u64));
                    let bws = flow_bandwidths(net, routes, &pattern)?;
                    let mean = bws.iter().sum::<f64>() / bws.len().max(1) as f64;
                    if rec.enabled() {
                        rec.add(telemetry::counters::PATTERNS_SIMULATED, 1);
                        rec.observe(
                            telemetry::hists::PATTERN_BW_MILLI,
                            (mean * 1000.0).round() as u64,
                        );
                    }
                    Ok(mean * opts.link_bandwidth)
                })
                .collect()
        });
    Ok(Summary::of(&per_pattern?))
}

/// Per-channel congestion profile of one pattern: how many flows cross
/// each channel. The raw material for hotspot analysis and the
/// `channel_loads`-style reports of the repro binaries.
pub fn congestion_profile(
    net: &Network,
    routes: &Routes,
    pattern: &Pattern,
) -> Result<Vec<u32>, RoutesError> {
    let mut congestion = vec![0u32; net.num_channels()];
    let terminals = net.terminals();
    for &(s, d) in &pattern.flows {
        let (src, dst) = (terminals[s as usize], terminals[d as usize]);
        for step in routes.path(net, src, dst)? {
            congestion[step?.idx()] += 1;
        }
    }
    Ok(congestion)
}

/// Hotspot summary of a pattern: `(max congestion, mean congestion over
/// used channels, number of used channels)`. The paper's balancing claim
/// is precisely that SSSP-based routing lowers the max while raising the
/// used-channel count.
pub fn hotspots(
    net: &Network,
    routes: &Routes,
    pattern: &Pattern,
) -> Result<(u32, f64, usize), RoutesError> {
    let profile = congestion_profile(net, routes, pattern)?;
    let used: Vec<u32> = profile.into_iter().filter(|&c| c > 0).collect();
    if used.is_empty() {
        return Ok((0, 0.0, 0));
    }
    let max = *used.iter().max().unwrap();
    let mean = used.iter().map(|&c| c as f64).sum::<f64>() / used.len() as f64;
    Ok((max, mean, used.len()))
}

/// Mean flow bandwidth for one explicit pattern (building block for the
/// application models).
pub fn pattern_bandwidth(
    net: &Network,
    routes: &Routes,
    pattern: &Pattern,
) -> Result<f64, RoutesError> {
    if pattern.is_empty() {
        return Ok(1.0);
    }
    let bws = flow_bandwidths(net, routes, pattern)?;
    Ok(bws.iter().sum::<f64>() / bws.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine, Sssp};
    use fabric::topo;

    #[test]
    fn lone_pair_gets_full_bandwidth() {
        let net = topo::kary_ntree(2, 2);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let pattern = Pattern {
            flows: vec![(0, 3)],
        };
        let bws = flow_bandwidths(&net, &routes, &pattern).unwrap();
        assert_eq!(bws, vec![1.0]);
    }

    #[test]
    fn shared_bottleneck_halves_bandwidth() {
        // Two switches, one cable, two flows crossing it.
        let mut b = fabric::NetworkBuilder::new();
        let s0 = b.add_switch("s0", 8);
        let s1 = b.add_switch("s1", 8);
        b.link(s0, s1).unwrap();
        let mut ts = Vec::new();
        for i in 0..4 {
            let t = b.add_terminal(format!("t{i}"));
            b.link(t, if i < 2 { s0 } else { s1 }).unwrap();
            ts.push(t);
        }
        let net = b.build();
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let pattern = Pattern {
            flows: vec![(0, 2), (1, 3)],
        };
        let bws = flow_bandwidths(&net, &routes, &pattern).unwrap();
        assert_eq!(bws, vec![0.5, 0.5]);
    }

    #[test]
    fn ebb_is_deterministic_and_bounded() {
        let net = topo::kary_ntree(2, 3);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let opts = EbbOptions {
            patterns: 50,
            ..Default::default()
        };
        let a = effective_bisection_bandwidth(&net, &routes, &opts).unwrap();
        let b = effective_bisection_bandwidth(&net, &routes, &opts).unwrap();
        assert_eq!(a.mean, b.mean);
        assert!(a.mean > 0.0 && a.mean <= 1.0);
        assert!(a.min <= a.mean && a.mean <= a.max);
    }

    #[test]
    fn full_fat_tree_achieves_high_ebb() {
        // A non-oversubscribed 2-level tree should give most flows full
        // bandwidth under balanced minimal routing.
        let net = topo::kary_ntree(4, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let opts = EbbOptions {
            patterns: 100,
            ..Default::default()
        };
        let s = effective_bisection_bandwidth(&net, &routes, &opts).unwrap();
        assert!(s.mean > 0.5, "eBB {s:?} too low for a full fat tree");
    }

    #[test]
    fn balanced_routing_beats_unbalanced() {
        let net = topo::kary_ntree(4, 2);
        let opts = EbbOptions {
            patterns: 100,
            ..Default::default()
        };
        let sssp = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let plain = dfsssp_core::sssp::unbalanced_shortest_paths(&net).unwrap();
        let a = effective_bisection_bandwidth(&net, &sssp, &opts).unwrap();
        let b = effective_bisection_bandwidth(&net, &plain, &opts).unwrap();
        assert!(
            a.mean > b.mean,
            "balanced {} should beat unbalanced {}",
            a.mean,
            b.mean
        );
    }

    #[test]
    fn link_bandwidth_scales_result() {
        let net = topo::kary_ntree(2, 2);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let rel = effective_bisection_bandwidth(
            &net,
            &routes,
            &EbbOptions {
                patterns: 10,
                link_bandwidth: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let scaled = effective_bisection_bandwidth(
            &net,
            &routes,
            &EbbOptions {
                patterns: 10,
                link_bandwidth: 946.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((scaled.mean - rel.mean * 946.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_profile_counts_hops() {
        let net = topo::kary_ntree(2, 2);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let p = Pattern {
            flows: vec![(0, 3), (1, 2)],
        };
        let profile = congestion_profile(&net, &routes, &p).unwrap();
        let total: u32 = profile.iter().sum();
        let hops: usize = p
            .flows
            .iter()
            .map(|&(s, d)| {
                routes
                    .path_channels(
                        &net,
                        net.terminals()[s as usize],
                        net.terminals()[d as usize],
                    )
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(total as usize, hops);
    }

    #[test]
    fn hotspot_analysis_shows_incast() {
        let net = topo::kary_ntree(4, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let incast = Pattern::hotspot(net.num_terminals(), 0);
        let (max, mean, used) = hotspots(&net, &routes, &incast).unwrap();
        // All 15 flows funnel into terminal 0's ejection channel.
        assert_eq!(max, 15);
        assert!(mean >= 1.0 && used > 0);
    }

    #[test]
    fn balanced_routing_spreads_hotspots() {
        let net = topo::kary_ntree(4, 2);
        let balanced = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let plain = dfsssp_core::sssp::unbalanced_shortest_paths(&net).unwrap();
        let p = Pattern::random_permutation(net.num_terminals(), 3);
        let (max_b, _, used_b) = hotspots(&net, &balanced, &p).unwrap();
        let (max_u, _, used_u) = hotspots(&net, &plain, &p).unwrap();
        assert!(max_b <= max_u, "balanced max {max_b} > unbalanced {max_u}");
        assert!(used_b >= used_u, "balanced uses fewer channels");
    }

    #[test]
    fn pattern_bandwidth_empty_is_full() {
        let net = topo::kary_ntree(2, 2);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let p = Pattern { flows: vec![] };
        assert_eq!(pattern_bandwidth(&net, &routes, &p).unwrap(), 1.0);
    }
}
