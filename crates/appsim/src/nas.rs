//! NAS Parallel Benchmark communication models (Figs 14–16, Table II).
//!
//! Each benchmark is reduced to its per-iteration communication phases
//! (pattern + bytes per flow) plus a routing-independent compute term:
//!
//! * **BT / SP / LU** — pencil/multipartition solvers: face exchanges
//!   with grid neighbors on a near-square process grid, several sweeps
//!   per iteration (SP sweeps most — its communication-to-computation
//!   ratio is higher, as the paper notes).
//! * **MG** — V-cycle neighbor exchanges, single variable.
//! * **CG** — row/column exchanges (modeled as a transpose) plus
//!   recursive-doubling reductions.
//! * **FT** — the 3D-FFT transpose: a full all-to-all, the most
//!   collective-heavy code (which is why the paper sees DFSSSP gains on
//!   FT "even for smaller numbers of cores").
//!
//! Phase durations come from the congestion simulator (slowest flow of
//! the phase); compute time is `flops / (P · RANK_GFLOPS)`. Absolute
//! Gflop/s are *not* calibrated against real NAS runs — only the
//! routing-induced differences and scaling shapes are meaningful
//! (DESIGN.md §3).

use crate::alloc::Allocation;
use fabric::{Network, Routes};
use orcs::Pattern;

/// Per-rank sustained compute rate (Gflop/s) of the modeled hosts
/// (Deimos-era Opteron cores).
pub const RANK_GFLOPS: f64 = 1.0;

/// Link bandwidth (MiB/s) of the modeled hosts (PCIe 1.1 HCAs, §VI).
pub const LINK_MIBS: f64 = 946.0;

/// The six modeled NAS kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NasBenchmark {
    /// Block-tridiagonal solver.
    BT,
    /// Conjugate gradient.
    CG,
    /// 3D FFT.
    FT,
    /// Lower-upper Gauss-Seidel.
    LU,
    /// Multigrid.
    MG,
    /// Scalar-pentadiagonal solver.
    SP,
}

/// Result of one modeled run.
#[derive(Clone, Copy, Debug)]
pub struct NasResult {
    /// Total Gflop/s across all ranks.
    pub gflops_total: f64,
    /// Fraction of iteration time spent communicating.
    pub comm_fraction: f64,
    /// Modeled communication seconds per iteration.
    pub comm_seconds: f64,
    /// Modeled compute seconds per iteration.
    pub comp_seconds: f64,
}

impl NasBenchmark {
    /// All six, alphabetical (the paper tables BT, CG, FT, LU*, MG, SP;
    /// LU is among the "similar characteristics" kernels of §VI-B).
    pub const ALL: [NasBenchmark; 6] = [
        NasBenchmark::BT,
        NasBenchmark::CG,
        NasBenchmark::FT,
        NasBenchmark::LU,
        NasBenchmark::MG,
        NasBenchmark::SP,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NasBenchmark::BT => "BT",
            NasBenchmark::CG => "CG",
            NasBenchmark::FT => "FT",
            NasBenchmark::LU => "LU",
            NasBenchmark::MG => "MG",
            NasBenchmark::SP => "SP",
        }
    }

    /// Grid extent of the modeled problem (class-C-like sizes).
    fn grid_n(self) -> f64 {
        match self {
            NasBenchmark::BT | NasBenchmark::SP => 162.0,
            NasBenchmark::LU => 162.0,
            NasBenchmark::MG => 512.0,
            NasBenchmark::FT => 512.0,
            NasBenchmark::CG => 150_000.0, // vector length
        }
    }

    /// Total floating-point operations per iteration.
    fn flops_per_iter(self) -> f64 {
        let n = self.grid_n();
        match self {
            NasBenchmark::BT => 250.0 * n * n * n,
            NasBenchmark::SP => 120.0 * n * n * n,
            NasBenchmark::LU => 180.0 * n * n * n,
            NasBenchmark::MG => 25.0 * n * n * n,
            NasBenchmark::FT => 5.0 * n * n * n * (n).log2(),
            NasBenchmark::CG => 2.0 * n * 15.0 * 20.0, // nnz sweeps
        }
    }

    /// Communication phases per iteration: `(pattern, bytes_per_flow,
    /// repeats)` in rank space.
    fn phases(self, cores: usize) -> Vec<(Pattern, f64, usize)> {
        let (r, c) = near_square(cores);
        let n = self.grid_n();
        let p = cores as f64;
        match self {
            NasBenchmark::BT | NasBenchmark::SP | NasBenchmark::LU => {
                // Face exchange: each rank owns n^3/P cells; a face is
                // (cells)^(2/3) entries of 5 doubles.
                let face = (n * n * n / p).powf(2.0 / 3.0) * 5.0 * 8.0;
                let sweeps = match self {
                    NasBenchmark::BT => 6,
                    NasBenchmark::SP => 12,
                    _ => 4,
                };
                vec![(Pattern::stencil2d(r, c), face, sweeps)]
            }
            NasBenchmark::MG => {
                let face = (n * n * n / p).powf(2.0 / 3.0) * 8.0;
                // V-cycle: exchanges at each level, roughly halving.
                vec![(Pattern::stencil2d(r, c), face * 2.0, 8)]
            }
            NasBenchmark::CG => {
                let seg = 8.0 * n / (p).sqrt();
                let mut phases = vec![(Pattern::transpose(r, c), seg, 2)];
                // Recursive-doubling allreduce of a scalar-ish payload.
                let mut k = 1;
                while k < cores {
                    phases.push((xor_pairs(cores, k), 64.0, 1));
                    k <<= 1;
                }
                phases
            }
            NasBenchmark::FT => {
                // Transpose all-to-all: 16 B/cell complex grid split P^2
                // ways, as ring phases.
                let per_pair = 16.0 * n * n * n / (p * p);
                (1..cores)
                    .map(|ph| (Pattern::alltoall_phase(cores, ph), per_pair, 1))
                    .collect()
            }
        }
    }

    /// The benchmark's per-iteration communication pairs in *rank*
    /// space, each phase's flows repeated by its sweep count. This is
    /// the raw material the open-loop trace generator
    /// ([`crate::traffic`]) replays as a query stream: the pair
    /// frequencies reproduce the kernel's traffic skew (stencil
    /// locality, transpose diagonals, FT's all-to-all) without any
    /// bandwidth modeling.
    pub fn comm_pairs(self, cores: usize) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for (pattern, _bytes, repeats) in self.phases(cores) {
            for _ in 0..repeats {
                pairs.extend_from_slice(&pattern.flows);
            }
        }
        pairs
    }

    /// Model the benchmark on `cores` ranks over the given fabric.
    pub fn run(
        self,
        net: &Network,
        routes: &Routes,
        cores: usize,
        alloc: Allocation,
    ) -> Result<NasResult, fabric::RoutesError> {
        let mut comm = 0.0;
        for (pattern, bytes, repeats) in self.phases(cores) {
            if pattern.is_empty() {
                continue;
            }
            let mapped = alloc.map_pattern(net, cores, &pattern);
            let bws = orcs::flow_bandwidths(net, routes, &mapped)?;
            let worst = bws.iter().copied().fold(f64::INFINITY, f64::min);
            let mib = bytes / (1024.0 * 1024.0);
            comm += repeats as f64 * mib / (LINK_MIBS * worst);
        }
        let comp = self.flops_per_iter() / (cores as f64 * RANK_GFLOPS * 1e9);
        let total = comm + comp;
        Ok(NasResult {
            gflops_total: self.flops_per_iter() / total / 1e9,
            comm_fraction: comm / total,
            comm_seconds: comm,
            comp_seconds: comp,
        })
    }
}

/// Near-square factorization `r * c = p`, `r <= c`, maximizing `r`.
fn near_square(p: usize) -> (usize, usize) {
    let mut r = (p as f64).sqrt() as usize;
    while r > 1 && !p.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), p / r.max(1))
}

/// Recursive-doubling phase: every rank pairs with `rank ^ k` (flows in
/// both directions where the partner exists).
fn xor_pairs(cores: usize, k: usize) -> Pattern {
    let flows = (0..cores as u32)
        .filter_map(|i| {
            let j = i ^ (k as u32);
            ((j as usize) < cores && j != i).then_some((i, j))
        })
        .collect();
    Pattern { flows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;

    #[test]
    fn near_square_factorizations() {
        assert_eq!(near_square(16), (4, 4));
        assert_eq!(near_square(121), (11, 11));
        assert_eq!(near_square(12), (3, 4));
        assert_eq!(near_square(7), (1, 7));
    }

    #[test]
    fn xor_pairs_are_symmetric() {
        let p = xor_pairs(8, 2);
        for &(a, b) in &p.flows {
            assert!(p.flows.contains(&(b, a)));
            assert_eq!(a ^ b, 2);
        }
    }

    #[test]
    fn comm_fraction_grows_with_scale() {
        // Strong scaling on an oversubscribed tree: communication share
        // must grow (the Fig 14/15 divergence mechanism).
        let net = topo::xgft(2, &[8, 8], &[2, 2]);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let small = NasBenchmark::SP
            .run(&net, &routes, 16, Allocation::Spread)
            .unwrap();
        let large = NasBenchmark::SP
            .run(&net, &routes, 64, Allocation::Spread)
            .unwrap();
        assert!(large.comm_fraction > small.comm_fraction);
    }

    #[test]
    fn ft_prefers_better_routing_even_small() {
        // FT's all-to-all hits congestion immediately: DFSSSP must not
        // lose to MinHop on an oversubscribed fabric.
        let net = topo::xgft(2, &[8, 8], &[2, 2]);
        let minhop = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let dfsssp = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let a = NasBenchmark::FT
            .run(&net, &minhop, 32, Allocation::Spread)
            .unwrap();
        let b = NasBenchmark::FT
            .run(&net, &dfsssp, 32, Allocation::Spread)
            .unwrap();
        assert!(
            b.gflops_total >= a.gflops_total * 0.99,
            "DFSSSP {} vs MinHop {}",
            b.gflops_total,
            a.gflops_total
        );
    }

    #[test]
    fn all_benchmarks_produce_finite_results() {
        let net = topo::kary_ntree(4, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        for bench in NasBenchmark::ALL {
            let r = bench.run(&net, &routes, 16, Allocation::Packed).unwrap();
            assert!(r.gflops_total.is_finite() && r.gflops_total > 0.0);
            assert!((0.0..=1.0).contains(&r.comm_fraction));
            assert!(r.comm_seconds >= 0.0 && r.comp_seconds > 0.0);
        }
    }

    #[test]
    fn compute_term_is_routing_independent() {
        let net = topo::kary_ntree(2, 3);
        let a = NasBenchmark::BT
            .run(
                &net,
                &MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
                8,
                Allocation::Packed,
            )
            .unwrap();
        let b = NasBenchmark::BT
            .run(
                &net,
                &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
                8,
                Allocation::Packed,
            )
            .unwrap();
        assert_eq!(a.comp_seconds, b.comp_seconds);
    }
}
