//! MPI collective-operation models over the congestion simulator.
//!
//! §VI of the paper attributes the largest DFSSSP gains to
//! collective-heavy codes ("when communication is performed, it involves
//! all processes at the same time"). This module models the classic
//! algorithms MPI implementations schedule, phase by phase, and times
//! each phase with the same congestion accounting as everything else:
//! a phase completes when its slowest flow finishes.

use crate::alloc::Allocation;
use fabric::{Network, Routes};
use orcs::Pattern;

/// A collective operation over `P` ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Collective {
    /// Ring all-to-all (pairwise exchange), `P-1` phases.
    AllToAll,
    /// Ring allgather: `P-1` phases of neighbor forwarding.
    AllGather,
    /// Recursive-doubling allreduce: `log2(P)` exchange phases.
    AllReduce,
    /// Binomial-tree broadcast from rank 0: `log2(P)` phases.
    Broadcast,
    /// Binomial-tree reduce to rank 0: `log2(P)` phases.
    Reduce,
}

impl Collective {
    /// All modeled collectives.
    pub const ALL: [Collective; 5] = [
        Collective::AllToAll,
        Collective::AllGather,
        Collective::AllReduce,
        Collective::Broadcast,
        Collective::Reduce,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Collective::AllToAll => "alltoall",
            Collective::AllGather => "allgather",
            Collective::AllReduce => "allreduce",
            Collective::Broadcast => "bcast",
            Collective::Reduce => "reduce",
        }
    }

    /// The communication phases for `ranks` participants:
    /// `(pattern, bytes-per-flow factor)` where the factor scales the
    /// caller's per-rank payload (e.g. allgather forwards growing
    /// segments).
    pub fn phases(self, ranks: usize) -> Vec<(Pattern, f64)> {
        assert!(ranks >= 2, "a collective needs at least two ranks");
        match self {
            Collective::AllToAll => (1..ranks)
                .map(|p| (Pattern::alltoall_phase(ranks, p), 1.0 / ranks as f64))
                .collect(),
            Collective::AllGather => {
                // Ring: each phase forwards one 1/P segment to the right.
                (0..ranks - 1)
                    .map(|_| (Pattern::shift(ranks, 1), 1.0 / ranks as f64))
                    .collect()
            }
            Collective::AllReduce => {
                let mut phases = Vec::new();
                let mut k = 1;
                while k < ranks {
                    phases.push((xor_pairs(ranks, k), 1.0));
                    k <<= 1;
                }
                phases
            }
            Collective::Broadcast | Collective::Reduce => {
                // Binomial tree, top-down: strides halve so every sender
                // already holds the data. Reduce is the time-reverse of
                // bcast (phases reversed, flows mirrored) and costs the
                // same under our symmetric-channel model.
                let mut strides = Vec::new();
                let mut k = 1;
                while k < ranks {
                    strides.push(k);
                    k <<= 1;
                }
                strides.reverse(); // largest stride first for broadcast
                let mut phases: Vec<(Pattern, f64)> = strides
                    .into_iter()
                    .map(|k| {
                        let flows: Vec<(u32, u32)> = (0..ranks)
                            .filter(|&i| i % (2 * k) == 0 && i + k < ranks)
                            .map(|i| {
                                let (a, b) = (i as u32, (i + k) as u32);
                                if self == Collective::Broadcast {
                                    (a, b)
                                } else {
                                    (b, a)
                                }
                            })
                            .collect();
                        (Pattern { flows }, 1.0)
                    })
                    .collect();
                if self == Collective::Reduce {
                    phases.reverse(); // leaves combine first
                }
                phases
            }
        }
    }

    /// Modeled completion time (seconds) for `bytes_per_rank` payloads on
    /// `link_mibs` MiB/s links.
    pub fn time(
        self,
        net: &Network,
        routes: &Routes,
        ranks: usize,
        alloc: Allocation,
        bytes_per_rank: usize,
        link_mibs: f64,
    ) -> Result<f64, fabric::RoutesError> {
        let mut total = 0.0;
        for (pattern, factor) in self.phases(ranks) {
            if pattern.is_empty() {
                continue;
            }
            let mapped = alloc.map_pattern(net, ranks, &pattern);
            let bws = orcs::flow_bandwidths(net, routes, &mapped)?;
            let worst = bws.iter().copied().fold(f64::INFINITY, f64::min);
            let mib = bytes_per_rank as f64 * factor / (1024.0 * 1024.0);
            total += mib / (link_mibs * worst);
        }
        Ok(total)
    }
}

/// Recursive-doubling phase: rank `i` exchanges with `i ^ k` (both
/// directions, partners within range only).
fn xor_pairs(ranks: usize, k: usize) -> Pattern {
    let flows = (0..ranks as u32)
        .filter_map(|i| {
            let j = i ^ (k as u32);
            ((j as usize) < ranks && j != i).then_some((i, j))
        })
        .collect();
    Pattern { flows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;
    use rustc_hash::FxHashSet;

    #[test]
    fn alltoall_phases_cover_all_pairs() {
        let mut seen = FxHashSet::default();
        for (p, _) in Collective::AllToAll.phases(6) {
            for f in p.flows {
                assert!(seen.insert(f));
            }
        }
        assert_eq!(seen.len(), 6 * 5);
    }

    #[test]
    fn broadcast_reaches_everyone_once() {
        let mut received: FxHashSet<u32> = [0].into_iter().collect();
        for (p, _) in Collective::Broadcast.phases(13) {
            for (s, d) in p.flows {
                assert!(received.contains(&s), "sender {s} must already hold data");
                assert!(received.insert(d), "rank {d} received twice");
            }
        }
        assert_eq!(received.len(), 13);
    }

    #[test]
    fn reduce_is_time_reversed_broadcast() {
        let b = Collective::Broadcast.phases(8);
        let r = Collective::Reduce.phases(8);
        assert_eq!(b.len(), r.len());
        for ((pb, _), (pr, _)) in b.iter().zip(r.iter().rev()) {
            let mirrored: Vec<(u32, u32)> = pr.flows.iter().map(|&(s, d)| (d, s)).collect();
            assert_eq!(pb.flows, mirrored);
        }
        // And every rank's contribution arrives at the root exactly once.
        let mut absorbed: FxHashSet<u32> = (1..8).collect();
        for (p, _) in r {
            for (s, _) in p.flows {
                assert!(absorbed.remove(&s), "rank {s} combined twice");
            }
        }
        assert!(absorbed.is_empty());
    }

    #[test]
    fn allreduce_has_log_phases() {
        assert_eq!(Collective::AllReduce.phases(8).len(), 3);
        assert_eq!(Collective::AllReduce.phases(16).len(), 4);
        // Non-power-of-two still terminates (partners out of range skip).
        assert_eq!(Collective::AllReduce.phases(10).len(), 4);
    }

    #[test]
    fn times_are_positive_and_scale_with_payload() {
        let net = topo::kary_ntree(4, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        for c in Collective::ALL {
            let t1 = c
                .time(&net, &routes, 16, Allocation::Packed, 1 << 16, 946.0)
                .unwrap();
            let t4 = c
                .time(&net, &routes, 16, Allocation::Packed, 1 << 18, 946.0)
                .unwrap();
            assert!(t1 > 0.0, "{}", c.name());
            assert!((t4 / t1 - 4.0).abs() < 1e-9, "{}", c.name());
        }
    }

    #[test]
    fn alltoall_benefits_most_from_balanced_routing() {
        // On an oversubscribed tree, the all-to-all should gain at least
        // as much from DFSSSP as the sparse binomial broadcast does.
        let net = topo::xgft(2, &[8, 8], &[2, 2]);
        let mh = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let df = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let ranks = 32;
        let speedup = |c: Collective| {
            let a = c
                .time(&net, &mh, ranks, Allocation::Spread, 1 << 18, 946.0)
                .unwrap();
            let b = c
                .time(&net, &df, ranks, Allocation::Spread, 1 << 18, 946.0)
                .unwrap();
            a / b
        };
        let a2a = speedup(Collective::AllToAll);
        let bcast = speedup(Collective::Broadcast);
        assert!(
            a2a >= bcast * 0.95,
            "alltoall speedup {a2a:.3} vs bcast {bcast:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn singleton_rejected() {
        Collective::AllToAll.phases(1);
    }
}
