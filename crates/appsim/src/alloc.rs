//! Rank-to-terminal allocation policies.
//!
//! A benchmark runs on `cores` MPI ranks placed on fabric terminals; the
//! placement shapes congestion. The paper used fixed allocations per core
//! count ("we used the same nodes (allocation) for identical number of
//! cores"); we provide the two canonical schedulers plus a seeded random
//! one.

use fabric::Network;
use orcs::Pattern;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How ranks map onto terminals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Allocation {
    /// Ranks fill terminals in index order (packed onto few switches).
    Packed,
    /// Ranks are spread evenly across the terminal range (one per node
    /// group, like one-core-per-node runs).
    Spread,
    /// Random distinct terminals, deterministic per seed.
    Random(u64),
}

impl Allocation {
    /// Terminal indices for `cores` ranks.
    ///
    /// # Panics
    /// Panics if `cores` exceeds the terminal count.
    pub fn place(self, net: &Network, cores: usize) -> Vec<u32> {
        let nt = net.num_terminals();
        assert!(cores <= nt, "allocation of {cores} ranks on {nt} terminals");
        match self {
            Allocation::Packed => (0..cores as u32).collect(),
            Allocation::Spread => (0..cores).map(|i| ((i * nt) / cores) as u32).collect(),
            Allocation::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut ids: Vec<u32> = (0..nt as u32).collect();
                ids.shuffle(&mut rng);
                ids.truncate(cores);
                ids
            }
        }
    }

    /// Map a rank-space pattern to a terminal-space pattern under this
    /// allocation.
    pub fn map_pattern(self, net: &Network, cores: usize, pattern: &Pattern) -> Pattern {
        let place = self.place(net, cores);
        Pattern {
            flows: pattern
                .flows
                .iter()
                .map(|&(s, d)| (place[s as usize], place[d as usize]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    #[test]
    fn packed_is_prefix() {
        let net = topo::kary_ntree(4, 2);
        assert_eq!(Allocation::Packed.place(&net, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spread_covers_the_range() {
        let net = topo::kary_ntree(4, 2); // 16 terminals
        let p = Allocation::Spread.place(&net, 4);
        assert_eq!(p, vec![0, 4, 8, 12]);
    }

    #[test]
    fn random_is_distinct_and_deterministic() {
        let net = topo::kary_ntree(4, 2);
        let a = Allocation::Random(3).place(&net, 10);
        let b = Allocation::Random(3).place(&net, 10);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn pattern_mapping_translates_ranks() {
        let net = topo::kary_ntree(4, 2);
        let p = Pattern {
            flows: vec![(0, 1), (1, 2)],
        };
        let mapped = Allocation::Spread.map_pattern(&net, 4, &p);
        assert_eq!(mapped.flows, vec![(0, 4), (4, 8)]);
    }

    #[test]
    #[should_panic(expected = "allocation")]
    fn overallocation_panics() {
        let net = topo::ring(3, 1);
        Allocation::Packed.place(&net, 10);
    }
}
