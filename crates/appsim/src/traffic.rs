//! Open-loop traffic traces: timestamped query streams for overload
//! testing.
//!
//! Closed-loop load (issue, wait, repeat) can never overdrive a server —
//! the client self-throttles to the server's pace, which is exactly how
//! real route-resolution traffic does *not* behave. This module builds
//! **open-loop** traces instead: every query carries an arrival time
//! drawn from a Poisson or bursty process, and the replayer submits at
//! those times whether or not the server kept up. Offered load is a
//! property of the trace, achieved load is the measurement.
//!
//! Three orthogonal axes compose a trace ([`TraceSpec`]):
//!
//! * [`Arrivals`] — the point process (Poisson, or on/off bursts with
//!   Poisson arrivals inside each burst);
//! * [`Mix`] — which `(src, dst)` pairs are asked for: uniform random,
//!   a hotspot concentration, or the communication pairs of a NAS
//!   kernel ([`NasBenchmark::comm_pairs`]) so the skew of a real
//!   application's traffic hits the serving path;
//! * [`Shape`] — rate modulation over the trace: flat, a diurnal
//!   triangle wave, or a flash crowd multiplying the rate inside a
//!   window.
//!
//! Generation uses Lewis–Shedler thinning at the peak rate, entirely
//! from a seeded [`splitmix64`] stream: the same spec and seed produce
//! byte-identical traces on every platform — benches replay, CI gates.

use crate::alloc::Allocation;
use crate::nas::NasBenchmark;
use fabric::{Network, NodeId};

/// The admission class a trace query should be submitted under. Mirrors
/// `serve::QueryClass` without a dependency on the serving crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Latency-sensitive traffic.
    Interactive,
    /// Best-effort traffic (sheddable under overload).
    Bulk,
}

/// One timestamped query of an open-loop trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceQuery {
    /// Arrival time, microseconds from trace start.
    pub at_us: u64,
    /// Source terminal.
    pub src: NodeId,
    /// Destination terminal (always distinct from `src`).
    pub dst: NodeId,
    /// Admission class.
    pub class: TrafficClass,
}

/// The arrival point process.
#[derive(Clone, Copy, Debug)]
pub enum Arrivals {
    /// Memoryless arrivals at the shaped rate.
    Poisson,
    /// On/off bursts: Poisson arrivals during `on_ms`, silence during
    /// `off_ms`, repeating. The *average* rate stays the spec's rate —
    /// the on-phase rate is scaled up by `(on+off)/on` — so bursts
    /// stress queues without changing total offered work.
    Bursty {
        /// Burst length, milliseconds.
        on_ms: u64,
        /// Gap length, milliseconds.
        off_ms: u64,
    },
}

/// Which pairs the trace asks for.
#[derive(Clone, Debug)]
pub enum Mix {
    /// Uniform random distinct terminal pairs.
    Uniform,
    /// `hot_permille` of queries target one of the first `targets`
    /// terminals (an incast onto popular destinations); the rest are
    /// uniform.
    Hotspot {
        /// Fraction of queries aimed at the hot set, permille.
        hot_permille: u32,
        /// Size of the hot destination set.
        targets: usize,
    },
    /// Pairs drawn from a NAS kernel's communication structure, with
    /// each pair's frequency proportional to how often the kernel
    /// exercises it per iteration (`ranks` MPI ranks, spread-allocated
    /// over the fabric's terminals).
    Nas {
        /// The kernel whose traffic skew to replay.
        bench: NasBenchmark,
        /// MPI ranks (must not exceed the terminal count).
        ranks: usize,
    },
}

/// Rate modulation across the trace.
#[derive(Clone, Copy, Debug)]
pub enum Shape {
    /// Constant rate.
    Flat,
    /// A triangle wave between 50% and 100% of the rate with the given
    /// period — a compressed diurnal cycle.
    Diurnal {
        /// Cycle period, milliseconds.
        period_ms: u64,
    },
    /// Baseline rate, multiplied by `boost` inside the window starting
    /// at `at_ms` for `for_ms`.
    FlashCrowd {
        /// Window start, milliseconds from trace start.
        at_ms: u64,
        /// Window length, milliseconds.
        for_ms: u64,
        /// Rate multiplier inside the window (≥ 1).
        boost: u32,
    },
}

/// A full trace specification; see the module docs for the axes.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Average offered rate, queries per second.
    pub rate_qps: f64,
    /// Trace length, milliseconds.
    pub duration_ms: u64,
    /// RNG seed; same spec + seed → identical trace.
    pub seed: u64,
    /// Fraction of queries submitted as [`TrafficClass::Bulk`], permille.
    pub bulk_permille: u32,
    /// Pair selection.
    pub mix: Mix,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Rate modulation.
    pub shape: Shape,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from one splitmix64 draw (53 mantissa bits).
fn uniform(rng: &mut u64) -> f64 {
    (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64
}

/// The shape's instantaneous rate multiplier at `t_us` (≤ its peak).
fn shape_factor(shape: &Shape, t_us: u64) -> f64 {
    match *shape {
        Shape::Flat => 1.0,
        Shape::Diurnal { period_ms } => {
            let period = (period_ms.max(1)) * 1000;
            let phase = (t_us % period) as f64 / period as f64; // [0,1)
                                                                // Triangle between 0.5 and 1.0: peak mid-period.
            let tri = 1.0 - (2.0 * phase - 1.0).abs(); // 0→0, .5→1, 1→0
            0.5 + 0.5 * tri
        }
        Shape::FlashCrowd {
            at_ms,
            for_ms,
            boost,
        } => {
            let (start, end) = (at_ms * 1000, (at_ms + for_ms) * 1000);
            if (start..end).contains(&t_us) {
                f64::from(boost.max(1))
            } else {
                1.0
            }
        }
    }
}

/// The largest multiplier `shape_factor` can return, for thinning.
fn shape_peak(shape: &Shape) -> f64 {
    match *shape {
        Shape::Flat | Shape::Diurnal { .. } => 1.0,
        Shape::FlashCrowd { boost, .. } => f64::from(boost.max(1)),
    }
}

/// Whether `t_us` falls inside a burst, and the on-phase rate scale
/// that keeps the average rate at spec.
fn burst_gate(arrivals: &Arrivals, t_us: u64) -> f64 {
    match *arrivals {
        Arrivals::Poisson => 1.0,
        Arrivals::Bursty { on_ms, off_ms } => {
            let on = on_ms.max(1) * 1000;
            let cycle = on + off_ms * 1000;
            if t_us % cycle < on {
                cycle as f64 / on as f64
            } else {
                0.0
            }
        }
    }
}

fn burst_peak(arrivals: &Arrivals) -> f64 {
    match *arrivals {
        Arrivals::Poisson => 1.0,
        Arrivals::Bursty { on_ms, off_ms } => {
            let on = on_ms.max(1) * 1000;
            let cycle = on + off_ms * 1000;
            cycle as f64 / on as f64
        }
    }
}

/// Generate the trace. Arrival times are strictly increasing; every
/// query's endpoints are distinct terminals of `net`.
///
/// # Panics
/// Panics if the network has fewer than two terminals, the rate is not
/// positive, or a [`Mix::Nas`] asks for more ranks than terminals.
pub fn generate(net: &Network, spec: &TraceSpec) -> Vec<TraceQuery> {
    let terminals = net.terminals();
    assert!(terminals.len() >= 2, "a trace needs at least two terminals");
    assert!(spec.rate_qps > 0.0, "offered rate must be positive");

    // For the NAS mix, materialize the kernel's weighted pair list once
    // (in terminal space); self-pairs are dropped up front.
    let nas_pairs: Vec<(NodeId, NodeId)> = match &spec.mix {
        Mix::Nas { bench, ranks } => {
            let place = Allocation::Spread.place(net, *ranks);
            bench
                .comm_pairs(*ranks)
                .into_iter()
                .map(|(s, d)| {
                    (
                        terminals[place[s as usize] as usize],
                        terminals[place[d as usize] as usize],
                    )
                })
                .filter(|(s, d)| s != d)
                .collect()
        }
        _ => Vec::new(),
    };

    let mut rng = spec.seed;
    let peak_per_us =
        spec.rate_qps * shape_peak(&spec.shape) * burst_peak(&spec.arrivals) / 1_000_000.0;
    let horizon_us = spec.duration_ms * 1000;
    let mut queries = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential gap at the peak rate; thinning keeps the sub-peak
        // intervals honest (Lewis–Shedler).
        let u = uniform(&mut rng).max(f64::MIN_POSITIVE);
        t += -u.ln() / peak_per_us;
        let at_us = t as u64;
        if at_us >= horizon_us {
            break;
        }
        let intensity = shape_factor(&spec.shape, at_us) * burst_gate(&spec.arrivals, at_us);
        if uniform(&mut rng) * shape_peak(&spec.shape) * burst_peak(&spec.arrivals) >= intensity {
            continue; // thinned: this instant's rate is below peak
        }
        let (src, dst) = match &spec.mix {
            Mix::Uniform => pick_distinct(terminals, &mut rng),
            Mix::Hotspot {
                hot_permille,
                targets,
            } => {
                if splitmix64(&mut rng) % 1000 < u64::from(*hot_permille) {
                    let hot = (*targets).clamp(1, terminals.len());
                    let dst = terminals[(splitmix64(&mut rng) % hot as u64) as usize];
                    let src = loop {
                        let s = terminals[(splitmix64(&mut rng) % terminals.len() as u64) as usize];
                        if s != dst {
                            break s;
                        }
                    };
                    (src, dst)
                } else {
                    pick_distinct(terminals, &mut rng)
                }
            }
            Mix::Nas { .. } => nas_pairs[(splitmix64(&mut rng) % nas_pairs.len() as u64) as usize],
        };
        let class = if splitmix64(&mut rng) % 1000 < u64::from(spec.bulk_permille) {
            TrafficClass::Bulk
        } else {
            TrafficClass::Interactive
        };
        queries.push(TraceQuery {
            at_us,
            src,
            dst,
            class,
        });
    }
    queries
}

fn pick_distinct(terminals: &[NodeId], rng: &mut u64) -> (NodeId, NodeId) {
    let src = terminals[(splitmix64(rng) % terminals.len() as u64) as usize];
    loop {
        let dst = terminals[(splitmix64(rng) % terminals.len() as u64) as usize];
        if dst != src {
            return (src, dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::topo;

    fn spec(mix: Mix, arrivals: Arrivals, shape: Shape) -> TraceSpec {
        TraceSpec {
            rate_qps: 50_000.0,
            duration_ms: 200,
            seed: 7,
            bulk_permille: 850,
            mix,
            arrivals,
            shape,
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(Mix::Uniform, Arrivals::Poisson, Shape::Flat);
        let a = generate(&net, &s);
        let b = generate(&net, &s);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.at_us, x.src, x.dst, x.class),
                (y.at_us, y.src, y.dst, y.class)
            );
        }
        let c = generate(&net, &TraceSpec { seed: 8, ..s });
        assert_ne!(a.len(), c.len(), "different seed, different trace");
    }

    #[test]
    fn flat_poisson_hits_the_offered_rate() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(Mix::Uniform, Arrivals::Poisson, Shape::Flat);
        let trace = generate(&net, &s);
        let expected = s.rate_qps * s.duration_ms as f64 / 1000.0;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "offered {expected}, generated {got}"
        );
        // Arrivals are ordered and in-horizon, with both classes present.
        assert!(trace.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(trace.iter().all(|q| q.at_us < s.duration_ms * 1000));
        assert!(trace.iter().any(|q| q.class == TrafficClass::Bulk));
        assert!(trace.iter().any(|q| q.class == TrafficClass::Interactive));
    }

    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(
            Mix::Uniform,
            Arrivals::Poisson,
            Shape::FlashCrowd {
                at_ms: 100,
                for_ms: 20,
                boost: 8,
            },
        );
        let trace = generate(&net, &s);
        let window = trace
            .iter()
            .filter(|q| (100_000..120_000).contains(&q.at_us))
            .count();
        let baseline = trace
            .iter()
            .filter(|q| (60_000..80_000).contains(&q.at_us))
            .count();
        assert!(
            window > baseline * 4,
            "flash window {window} vs baseline {baseline}"
        );
    }

    #[test]
    fn bursty_arrivals_leave_silent_gaps_but_keep_the_average() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(
            Mix::Uniform,
            Arrivals::Bursty {
                on_ms: 10,
                off_ms: 10,
            },
            Shape::Flat,
        );
        let trace = generate(&net, &s);
        assert!(
            trace.iter().all(|q| (q.at_us % 20_000) < 10_000),
            "arrival inside an off-gap"
        );
        let expected = s.rate_qps * s.duration_ms as f64 / 1000.0;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "bursts must conserve the average rate: {expected} vs {got}"
        );
    }

    #[test]
    fn hotspot_mix_concentrates_destinations() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(
            Mix::Hotspot {
                hot_permille: 900,
                targets: 2,
            },
            Arrivals::Poisson,
            Shape::Flat,
        );
        let trace = generate(&net, &s);
        let hot: Vec<NodeId> = net.terminals()[..2].to_vec();
        let onto_hot = trace.iter().filter(|q| hot.contains(&q.dst)).count();
        assert!(
            onto_hot as f64 > trace.len() as f64 * 0.8,
            "hotspot mix not concentrated: {onto_hot}/{}",
            trace.len()
        );
    }

    #[test]
    fn nas_mix_replays_the_kernels_pairs() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(
            Mix::Nas {
                bench: NasBenchmark::FT,
                ranks: 16,
            },
            Arrivals::Poisson,
            Shape::Flat,
        );
        let trace = generate(&net, &s);
        assert!(!trace.is_empty());
        let terminals = net.terminals();
        for q in &trace {
            assert_ne!(q.src, q.dst);
            assert!(terminals.contains(&q.src) && terminals.contains(&q.dst));
        }
    }

    #[test]
    fn diurnal_shape_modulates_but_preserves_order() {
        let net = topo::kary_ntree(4, 2);
        let s = spec(
            Mix::Uniform,
            Arrivals::Poisson,
            Shape::Diurnal { period_ms: 100 },
        );
        let trace = generate(&net, &s);
        assert!(!trace.is_empty());
        // Mid-period (peak of the triangle) must out-arrive the edges.
        let peak = trace
            .iter()
            .filter(|q| (40_000..60_000).contains(&(q.at_us % 100_000)))
            .count();
        let trough = trace
            .iter()
            .filter(|q| (q.at_us % 100_000) < 20_000)
            .count();
        assert!(peak > trough, "diurnal peak {peak} vs trough {trough}");
    }
}
