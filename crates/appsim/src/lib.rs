//! Application-level benchmark models over the congestion simulator.
//!
//! The paper's §VI validates DFSSSP on the Deimos cluster with Netgauge's
//! effective-bisection-bandwidth benchmark, an all-to-all microbenchmark
//! and the NAS Parallel Benchmarks. We have no 724-node InfiniBand
//! cluster, so this crate models those workloads' *communication
//! patterns* and derives their timing from the same congestion simulator
//! the paper's §V uses (see DESIGN.md §3 for why this substitution
//! preserves the comparisons): compute time is routing-independent, so
//! every difference between routings comes from congestion on the modeled
//! traffic — exactly the paper's argument.
//!
//! * [`alloc`] — mapping benchmark ranks onto fabric terminals.
//! * [`netgauge`] — the eBB measurement (Fig 12).
//! * [`alltoall`] — phased all-to-all timing (Fig 13).
//! * [`nas`] — NAS BT/CG/FT/LU/MG/SP models (Figs 14–16, Table II).
//! * [`traffic`] — open-loop query traces (Poisson/bursty arrivals,
//!   NAS/hotspot/diurnal/flash-crowd mixes) for overload-testing the
//!   serving path.

pub mod alloc;
pub mod alltoall;
pub mod collectives;
pub mod nas;
pub mod netgauge;
pub mod traffic;

pub use alloc::Allocation;
pub use alltoall::alltoall_time;
pub use collectives::Collective;
pub use nas::{NasBenchmark, NasResult};
pub use netgauge::{netgauge_ebb, point_to_point_reference};
pub use traffic::{Arrivals, Mix, Shape, TraceQuery, TraceSpec, TrafficClass};
