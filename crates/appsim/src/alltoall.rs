//! Phased all-to-all timing (Fig 13).
//!
//! Large-message MPI all-to-all implementations schedule `P-1` ring
//! phases; in phase `p`, rank `i` exchanges with rank `i ± p`. Each
//! phase's duration is the per-pair message time divided by the worst
//! congestion-shared bandwidth the fabric gives that phase's pattern.

use crate::alloc::Allocation;
use fabric::{Network, Routes};
use orcs::Pattern;

/// Time (seconds) for an all-to-all of `bytes_per_pair` bytes among
/// `cores` ranks, with `link_mibs` MiB/s links.
pub fn alltoall_time(
    net: &Network,
    routes: &Routes,
    cores: usize,
    alloc: Allocation,
    bytes_per_pair: usize,
    link_mibs: f64,
) -> Result<f64, fabric::RoutesError> {
    let mut total = 0.0;
    for phase in 1..cores {
        let pattern = Pattern::alltoall_phase(cores, phase);
        let mapped = alloc.map_pattern(net, cores, &pattern);
        let bws = orcs::flow_bandwidths(net, routes, &mapped)?;
        // The phase completes when its slowest pair finishes.
        let worst = bws.iter().copied().fold(f64::INFINITY, f64::min);
        let mib = bytes_per_pair as f64 / (1024.0 * 1024.0);
        total += mib / (link_mibs * worst);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;

    #[test]
    fn time_scales_linearly_with_message_size() {
        let net = topo::kary_ntree(2, 3);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let t1 = alltoall_time(&net, &routes, 8, Allocation::Packed, 1 << 10, 946.0).unwrap();
        let t2 = alltoall_time(&net, &routes, 8, Allocation::Packed, 1 << 12, 946.0).unwrap();
        assert!((t2 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn more_cores_take_longer() {
        let net = topo::kary_ntree(4, 2);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let t8 = alltoall_time(&net, &routes, 8, Allocation::Spread, 1 << 14, 946.0).unwrap();
        let t16 = alltoall_time(&net, &routes, 16, Allocation::Spread, 1 << 14, 946.0).unwrap();
        assert!(t16 > t8);
    }

    #[test]
    fn congestion_free_bound_matches_analytic() {
        // 2 ranks: one phase, full bandwidth both ways.
        let net = topo::kary_ntree(2, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let bytes = 1 << 20; // 1 MiB
        let t = alltoall_time(&net, &routes, 2, Allocation::Spread, bytes, 1000.0).unwrap();
        assert!((t - 0.001).abs() < 1e-9, "t = {t}");
    }
}
