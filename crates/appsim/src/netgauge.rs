//! Netgauge's effective-bisection-bandwidth benchmark (Fig 12).
//!
//! The real tool partitions the ranks into two random halves, pairs them
//! up, and measures 1 MiB ping-pongs over many random partitions. We
//! generate the same patterns over the allocated subset of terminals and
//! charge each pair the congestion-shared bandwidth the fabric gives it.

use crate::alloc::Allocation;
use fabric::{Network, Routes};
use orcs::report::Summary;
use orcs::Pattern;
use rayon::prelude::*;

/// Simulated Netgauge eBB: mean per-pair bandwidth (in `link_mibs`
/// units, e.g. 946 MiB/s for Deimos' PCIe 1.1 hosts) over `partitions`
/// random bisections of `cores` ranks.
pub fn netgauge_ebb(
    net: &Network,
    routes: &Routes,
    cores: usize,
    alloc: Allocation,
    partitions: usize,
    link_mibs: f64,
    seed: u64,
) -> Result<Summary, fabric::RoutesError> {
    let samples: Result<Vec<f64>, fabric::RoutesError> = (0..partitions)
        .into_par_iter()
        .map(|i| {
            let pattern = Pattern::random_bisection(cores, seed.wrapping_add(i as u64));
            let mapped = alloc.map_pattern(net, cores, &pattern);
            let bws = orcs::flow_bandwidths(net, routes, &mapped)?;
            Ok(bws.iter().sum::<f64>() / bws.len().max(1) as f64 * link_mibs)
        })
        .collect();
    Ok(Summary::of(&samples?))
}

/// The §VI-A reference measurement: rank 0 sends `message_mib` MiB to
/// every other rank *sequentially* (no congestion), with a per-hop
/// latency of `hop_us` microseconds. Returns `(min, avg, max)` achieved
/// bandwidth in MiB/s over destinations.
///
/// The paper's point: "all routing algorithms delivered the same
/// bandwidths due to the absence of congestions and shortest path
/// routing" — every minimal engine produces identical numbers here,
/// while path-restricting engines (Up*/Down* off-tree) fall behind via
/// their longer paths.
pub fn point_to_point_reference(
    net: &Network,
    routes: &Routes,
    src_t: usize,
    message_mib: f64,
    link_mibs: f64,
    hop_us: f64,
) -> Result<(f64, f64, f64), fabric::RoutesError> {
    let terminals = net.terminals();
    let src = terminals[src_t];
    let mut bws = Vec::with_capacity(terminals.len() - 1);
    for (dst_t, &dst) in terminals.iter().enumerate() {
        if dst_t == src_t {
            continue;
        }
        let hops = routes.path_channels(net, src, dst)?.len() as f64;
        let seconds = hops * hop_us * 1e-6 + message_mib / link_mibs;
        bws.push(message_mib / seconds);
    }
    let min = bws.iter().copied().fold(f64::INFINITY, f64::min);
    let max = bws.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg = bws.iter().sum::<f64>() / bws.len().max(1) as f64;
    Ok((min, avg, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine};
    use fabric::topo;

    #[test]
    fn small_runs_get_full_bandwidth_on_big_tree() {
        // 4 ranks spread over a 64-terminal full fat tree barely contend.
        let net = topo::kary_ntree(4, 3);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let s = netgauge_ebb(&net, &routes, 4, Allocation::Spread, 20, 946.0, 1).unwrap();
        assert!(s.mean > 0.8 * 946.0, "{s}");
    }

    #[test]
    fn ebb_decreases_with_scale_like_fig12() {
        // On an oversubscribed topology, more cores = more congestion.
        let net = topo::xgft(2, &[8, 8], &[2, 2]);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let small = netgauge_ebb(&net, &routes, 16, Allocation::Spread, 50, 946.0, 1).unwrap();
        let large = netgauge_ebb(&net, &routes, 64, Allocation::Spread, 50, 946.0, 1).unwrap();
        assert!(
            large.mean < small.mean,
            "64-core eBB {} should trail 16-core {}",
            large.mean,
            small.mean
        );
    }

    #[test]
    fn p2p_reference_is_routing_independent_for_minimal_engines() {
        // §VI-A: without congestion, minimal engines tie exactly.
        let net = topo::torus(&[4, 4], 1);
        let a = point_to_point_reference(
            &net,
            &MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
            0,
            2.5,
            946.0,
            1.0,
        )
        .unwrap();
        let b = point_to_point_reference(
            &net,
            &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
            0,
            2.5,
            946.0,
            1.0,
        )
        .unwrap();
        assert_eq!(a, b);
        // Large messages amortize latency: avg close to line rate.
        assert!(a.1 > 0.99 * 946.0, "avg {:.1}", a.1);
    }

    #[test]
    fn p2p_reference_penalizes_path_restricting_engines() {
        use baselines::UpDown;
        let net = topo::torus(&[5, 5], 1);
        // Tiny messages expose per-hop latency differences; average the
        // per-source averages so sources far from the Up*/Down* root
        // (whose legal paths detour) are represented.
        let df = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let ud = UpDown::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let mean_over_sources = |routes: &fabric::Routes| {
            let nt = net.num_terminals();
            (0..nt)
                .map(|s| {
                    point_to_point_reference(&net, routes, s, 0.001, 946.0, 10.0)
                        .unwrap()
                        .1
                })
                .sum::<f64>()
                / nt as f64
        };
        let minimal = mean_over_sources(&df);
        let restricted = mean_over_sources(&ud);
        assert!(
            restricted < minimal,
            "up*/down* avg {restricted:.2} should trail minimal {minimal:.2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let net = topo::kary_ntree(2, 3);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let a = netgauge_ebb(&net, &routes, 8, Allocation::Packed, 10, 1.0, 7).unwrap();
        let b = netgauge_ebb(&net, &routes, 8, Allocation::Packed, 10, 1.0, 7).unwrap();
        assert_eq!(a.mean, b.mean);
    }
}
