//! A buffer-level network simulator with virtual channels and deadlock
//! detection.
//!
//! This is the executable counterpart of the paper's §III deadlock
//! argument: switches have **finite input buffers per (channel, virtual
//! lane)**, a physical channel transmits one packet per cycle (shared by
//! its virtual lanes, credit-style: a packet only moves when the target
//! buffer has a free slot), and terminals always consume. A routing whose
//! channel dependency graph is cyclic can reach a configuration where
//! every buffer on a cycle is full and waits on the next — the simulator
//! detects this as a cycle with zero movement and reports
//! [`Outcome::Deadlock`]. DFSSSP's layer assignment provably avoids it;
//! `examples/ring_deadlock.rs` and the Fig 2 repro binary show both
//! sides.

pub mod sim;
pub mod throughput;
pub mod workload;

pub use sim::{
    simulate, simulate_detailed, simulate_recorded, OccupancyStats, Outcome, SimConfig, SimStats,
};
pub use throughput::{load_sweep, open_loop, LoadPoint, OpenLoopConfig};
pub use workload::Workload;
