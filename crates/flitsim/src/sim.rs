//! The cycle-based simulation core.
//!
//! Model, per cycle:
//!
//! 1. Every physical channel transmits at most one packet: it arbitrates
//!    round-robin among the head packets (over all input buffers and
//!    injection queues at its source node, and all virtual lanes) that
//!    want it *and* whose target buffer `(channel, vl)` has a free slot
//!    (credit flow control).
//! 2. A packet arriving at its destination terminal is consumed
//!    immediately (terminals always sink — deadlock condition 4 can only
//!    come from switch buffers).
//!
//! Deadlock detection: if undelivered packets remain but no packet moved
//! during a full cycle, no packet can ever move again (the enabled-move
//! predicate is monotone in buffer occupancy, which is unchanged), so the
//! simulator reports [`Outcome::Deadlock`] immediately.

use crate::workload::Workload;
use fabric::{ChannelId, Network, NodeId, Routes};

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Packets each `(channel, vl)` input buffer can hold.
    pub buffer_capacity: usize,
    /// Hard cycle budget; exceeding it yields [`Outcome::CycleLimit`].
    pub max_cycles: u64,
    /// Flits per packet (virtual cut-through): a transmission occupies
    /// its channel for this many cycles and the packet only becomes
    /// forwardable at the next hop once its tail arrives. `1` recovers
    /// the pure packet model.
    pub packet_flits: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_capacity: 2,
            max_cycles: 1_000_000,
            packet_flits: 1,
        }
    }
}

/// Completed-run statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Packets delivered.
    pub delivered: usize,
    /// Cycles simulated.
    pub cycles: u64,
    /// Mean packet latency in cycles, from workload start (cycle 0) to
    /// consumption — includes source queuing time for burst workloads.
    pub avg_latency: f64,
    /// Worst packet latency.
    pub max_latency: u64,
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All packets delivered.
    Completed(SimStats),
    /// No movement with packets outstanding: a genuine deadlock.
    Deadlock {
        /// Cycle at which the network wedged.
        cycle: u64,
        /// Packets stuck in buffers or queues.
        stuck: usize,
        /// Packets that made it out before the wedge.
        delivered: usize,
    },
    /// `max_cycles` exhausted (should not happen for sane configs).
    CycleLimit(SimStats),
}

impl Outcome {
    /// Whether the run delivered everything.
    pub fn completed(&self) -> bool {
        matches!(self, Outcome::Completed(_))
    }

    /// Whether the run wedged.
    pub fn deadlocked(&self) -> bool {
        matches!(self, Outcome::Deadlock { .. })
    }
}

#[derive(Clone, Copy)]
struct Packet {
    dst_t: u32,
    vl: u8,
    injected_at: u64,
}

/// One `(channel, vl)` input buffer: FIFO of packet ids.
type Buffer = std::collections::VecDeque<u32>;

/// Buffer-occupancy observations of one run.
#[derive(Clone, Debug, Default)]
pub struct OccupancyStats {
    /// Peak packets queued in any single `(channel, vl)` buffer, per VL.
    /// This is what the balancing step of Algorithm 2 equalizes: spread
    /// layers keep per-VL peaks low, concentrated layers pile onto VL 0.
    pub per_vl_peak: Vec<u32>,
}

impl OccupancyStats {
    /// The worst per-VL peak.
    pub fn max_peak(&self) -> u32 {
        self.per_vl_peak.iter().copied().max().unwrap_or(0)
    }
}

/// Run `workload` over `net`/`routes` under `config`.
///
/// Virtual lanes come from `routes` (a path's packets travel on its
/// assigned layer end to end, like InfiniBand SL-to-VL mapping).
pub fn simulate(
    net: &Network,
    routes: &Routes,
    workload: &Workload,
    config: &SimConfig,
) -> Outcome {
    simulate_detailed(net, routes, workload, config).0
}

/// [`simulate`] with telemetry: the run reports as one `flitsim` phase
/// and bumps the `packets_delivered` / `sim_cycles` counters from the
/// outcome (deadlocked runs report the packets that escaped before the
/// wedge). Identical outcome either way — the recorder only observes.
pub fn simulate_recorded(
    net: &Network,
    routes: &Routes,
    workload: &Workload,
    config: &SimConfig,
    rec: &dyn telemetry::Recorder,
) -> Outcome {
    let outcome = telemetry::timed(rec, telemetry::phases::FLITSIM, || {
        simulate(net, routes, workload, config)
    });
    if rec.enabled() {
        let (delivered, cycles) = match &outcome {
            Outcome::Completed(s) | Outcome::CycleLimit(s) => (s.delivered, s.cycles),
            Outcome::Deadlock {
                cycle, delivered, ..
            } => (*delivered, *cycle),
        };
        rec.add(telemetry::counters::PACKETS_DELIVERED, delivered as u64);
        rec.add(telemetry::counters::SIM_CYCLES, cycles);
    }
    outcome
}

/// [`simulate`] plus per-VL buffer occupancy statistics.
pub fn simulate_detailed(
    net: &Network,
    routes: &Routes,
    workload: &Workload,
    config: &SimConfig,
) -> (Outcome, OccupancyStats) {
    let num_vls = routes.num_layers() as usize;
    let nc = net.num_channels();
    assert_eq!(workload.queues.len(), net.num_terminals());
    assert!(config.buffer_capacity >= 1);
    assert!(config.packet_flits >= 1);
    let flits = config.packet_flits;

    let mut packets: Vec<Packet> = Vec::new();
    // Injection queues per terminal (front = next to inject).
    let mut inject: Vec<std::collections::VecDeque<u32>> = workload
        .queues
        .iter()
        .enumerate()
        .map(|(src_t, dsts)| {
            dsts.iter()
                .map(|&d| {
                    let id = packets.len() as u32;
                    packets.push(Packet {
                        dst_t: d,
                        vl: routes.layer(src_t, d as usize),
                        injected_at: 0,
                    });
                    id
                })
                .collect()
        })
        .collect();

    // buffers[c * num_vls + v] = input buffer at dst(c) for (c, v).
    let mut buffers: Vec<Buffer> = vec![Buffer::new(); nc * num_vls];
    // Round-robin arbitration pointer per channel.
    let mut rr: Vec<usize> = vec![0; nc];
    // Virtual cut-through: cycle until which each channel is serializing,
    // and the cycle each packet's tail arrives at its current buffer.
    let mut channel_busy_until: Vec<u64> = vec![0; nc];
    let mut ready_at: Vec<u64> = Vec::new();
    let mut occupancy = OccupancyStats {
        per_vl_peak: vec![0; num_vls],
    };

    let total = packets.len();
    ready_at.resize(total, 0);
    // A packet traverses at most one channel per cycle.
    let mut moved_at: Vec<u64> = vec![u64::MAX; total];
    let mut delivered = 0usize;
    let mut latency_sum = 0u64;
    let mut max_latency = 0u64;
    let mut cycle = 0u64;

    let terminals = net.terminals();
    // Per channel: the requester slots = (buffers at src node + injection
    // if src is a terminal) x vls. Precompute per-channel input lists.
    let in_slots: Vec<Vec<ChannelId>> = (0..net.num_nodes())
        .map(|n| net.in_channels(NodeId(n as u32)).to_vec())
        .collect();

    while delivered < total {
        if cycle >= config.max_cycles {
            return (
                Outcome::CycleLimit(stats(delivered, cycle, latency_sum, max_latency)),
                occupancy,
            );
        }
        let mut moved = false;

        // Each physical channel arbitrates one transmission.
        for (c, rr_c) in rr.iter_mut().enumerate() {
            if channel_busy_until[c] > cycle {
                continue; // still serializing a previous packet's flits
            }
            let ch = net.channel(ChannelId(c as u32));
            let src = ch.src;
            // Build the requester slot list lazily: slot index ->
            // (Some(in_channel) | None for injection, vl).
            let ins = &in_slots[src.idx()];
            let n_inject = usize::from(net.is_terminal(src));
            let n_slots = (ins.len() + n_inject) * num_vls;
            if n_slots == 0 {
                continue;
            }
            let start = *rr_c % n_slots;
            for k in 0..n_slots {
                let slot = (start + k) % n_slots;
                let (src_buf, vl) = (slot / num_vls, slot % num_vls);
                // Identify the candidate packet at this slot's head.
                let pkt = if src_buf < ins.len() {
                    buffers[ins[src_buf].idx() * num_vls + vl].front().copied()
                } else {
                    // Injection slot: terminal's next packet, if its vl
                    // matches this slot's vl (each packet occupies one
                    // virtual queue).
                    let ti = net.terminal_index(src).unwrap();
                    inject[ti]
                        .front()
                        .copied()
                        .filter(|&p| packets[p as usize].vl as usize == vl)
                };
                let Some(p) = pkt else { continue };
                if moved_at[p as usize] == cycle || ready_at[p as usize] > cycle {
                    continue; // already hopped, or tail still arriving
                }
                let pk = packets[p as usize];
                // Does this packet want channel c?
                let at = src;
                let next = routes.next_hop(at, pk.dst_t as usize);
                if next != Some(ChannelId(c as u32)) {
                    continue;
                }
                // Credit check on the target buffer.
                let tgt = c * num_vls + pk.vl as usize;
                if buffers[tgt].len() >= config.buffer_capacity {
                    continue;
                }
                // Transmit: pop from source, handle arrival.
                if src_buf < ins.len() {
                    buffers[ins[src_buf].idx() * num_vls + vl].pop_front();
                } else {
                    let ti = net.terminal_index(src).unwrap();
                    inject[ti].pop_front();
                }
                let arrive = ch.dst;
                channel_busy_until[c] = cycle + flits;
                if terminals.get(pk.dst_t as usize) == Some(&arrive) {
                    // Consumed at destination (when the tail lands).
                    delivered += 1;
                    let lat = cycle + flits - pk.injected_at;
                    latency_sum += lat;
                    max_latency = max_latency.max(lat);
                } else {
                    buffers[tgt].push_back(p);
                    ready_at[p as usize] = cycle + flits;
                    let occ = buffers[tgt].len() as u32;
                    let peak = &mut occupancy.per_vl_peak[pk.vl as usize];
                    *peak = (*peak).max(occ);
                }
                moved_at[p as usize] = cycle;
                moved = true;
                *rr_c = (slot + 1) % n_slots;
                break;
            }
        }

        cycle += 1;
        // With multi-flit packets, a quiet cycle can be transient: a
        // channel may still be serializing, or a tail may still be in
        // flight. Only an all-idle quiet cycle is a wedge.
        let transient = flits > 1
            && (channel_busy_until.iter().any(|&b| b >= cycle)
                || ready_at.iter().any(|&r| r >= cycle));
        if !moved && !transient {
            // Occupancies unchanged and the enabled-move predicate is
            // static: wedged forever.
            return (
                Outcome::Deadlock {
                    cycle,
                    stuck: total - delivered,
                    delivered,
                },
                occupancy,
            );
        }
    }
    (
        Outcome::Completed(stats(delivered, cycle, latency_sum, max_latency)),
        occupancy,
    )
}

fn stats(delivered: usize, cycles: u64, latency_sum: u64, max_latency: u64) -> SimStats {
    SimStats {
        delivered,
        cycles,
        avg_latency: if delivered > 0 {
            latency_sum as f64 / delivered as f64
        } else {
            0.0
        },
        max_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine, Sssp};
    use fabric::topo;

    #[test]
    fn single_packet_traverses_cleanly() {
        let net = topo::kary_ntree(2, 2);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let mut w = Workload::new(net.num_terminals());
        w.queues[0] = vec![3];
        let out = simulate(&net, &routes, &w, &SimConfig::default());
        let Outcome::Completed(stats) = out else {
            panic!("expected completion, got {out:?}");
        };
        assert_eq!(stats.delivered, 1);
        // Latency = hop count of the path.
        let hops = routes
            .path_channels(&net, net.terminals()[0], net.terminals()[3])
            .unwrap()
            .len() as u64;
        assert_eq!(stats.max_latency, hops);
    }

    /// The paper's Figure 2: a 5-ring where everyone sends two hops
    /// clockwise deadlocks under SSSP routing with finite buffers...
    #[test]
    fn fig2_ring_deadlocks_under_sssp() {
        let net = topo::ring(5, 1);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::shift(5, 2, 8);
        let config = SimConfig {
            buffer_capacity: 1,
            max_cycles: 100_000,
            ..SimConfig::default()
        };
        let out = simulate(&net, &routes, &w, &config);
        assert!(out.deadlocked(), "expected deadlock, got {out:?}");
    }

    /// ...and completes under DFSSSP with the same buffers.
    #[test]
    fn fig2_ring_completes_under_dfsssp() {
        let net = topo::ring(5, 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        assert!(routes.num_layers() >= 2);
        let w = Workload::shift(5, 2, 8);
        let config = SimConfig {
            buffer_capacity: 1,
            max_cycles: 100_000,
            ..SimConfig::default()
        };
        let out = simulate(&net, &routes, &w, &config);
        let Outcome::Completed(stats) = out else {
            panic!("expected completion, got {out:?}");
        };
        assert_eq!(stats.delivered, 40);
    }

    #[test]
    fn heavy_torus_traffic_completes_under_dfsssp() {
        let net = topo::torus(&[3, 3], 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::uniform_random(9, 20, 7);
        let out = simulate(&net, &routes, &w, &SimConfig::default());
        assert!(out.completed(), "got {out:?}");
    }

    #[test]
    fn minhop_can_wedge_on_odd_torus() {
        // MinHop is not deadlock-free; saturating an odd ring wedges it.
        let net = topo::ring(7, 1);
        let routes = MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::shift(7, 3, 16);
        let config = SimConfig {
            buffer_capacity: 1,
            max_cycles: 100_000,
            ..SimConfig::default()
        };
        let out = simulate(&net, &routes, &w, &config);
        assert!(out.deadlocked(), "expected deadlock, got {out:?}");
    }

    #[test]
    fn bigger_buffers_do_not_prevent_deadlock_on_longer_paths() {
        // With deeper buffers, 2-hop ring paths drain under fair
        // arbitration — but 3-hop paths keep enough packets in flight to
        // wedge: buffer size changes *when* cyclic CDGs bite, never
        // *whether* they can.
        let net = topo::ring(8, 1);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        for cap in [2, 3] {
            let config = SimConfig {
                buffer_capacity: cap,
                max_cycles: 100_000,
                ..SimConfig::default()
            };
            let out = simulate(&net, &routes, &Workload::shift(8, 3, 64), &config);
            assert!(
                out.deadlocked(),
                "cap {cap}: expected deadlock, got {out:?}"
            );
        }
        // Control: the same buffers with the 5-ring 2-hop pattern drain.
        let net5 = topo::ring(5, 1);
        let routes5 = Sssp::new().route_in(&net5, &ComputeCtx::seq()).unwrap();
        let config = SimConfig {
            buffer_capacity: 2,
            max_cycles: 100_000,
            ..SimConfig::default()
        };
        let out = simulate(&net5, &routes5, &Workload::shift(5, 2, 64), &config);
        assert!(out.completed(), "got {out:?}");
    }

    #[test]
    fn multi_flit_packets_serialize() {
        // A single 8-flit packet: latency = hops * flits (store-and-
        // forward at packet granularity with 1 flit/cycle links).
        let net = topo::kary_ntree(2, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let mut w = Workload::new(net.num_terminals());
        w.queues[0] = vec![3];
        let hops = routes
            .path_channels(&net, net.terminals()[0], net.terminals()[3])
            .unwrap()
            .len() as u64;
        for flits in [1u64, 4, 8] {
            let config = SimConfig {
                packet_flits: flits,
                ..SimConfig::default()
            };
            let Outcome::Completed(stats) = simulate(&net, &routes, &w, &config) else {
                panic!("expected completion");
            };
            assert_eq!(stats.max_latency, hops * flits, "flits = {flits}");
        }
    }

    #[test]
    fn multi_flit_ring_still_deadlocks_under_sssp() {
        let net = topo::ring(5, 1);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let config = SimConfig {
            buffer_capacity: 1,
            packet_flits: 4,
            max_cycles: 100_000,
        };
        let out = simulate(&net, &routes, &Workload::shift(5, 2, 8), &config);
        assert!(out.deadlocked(), "got {out:?}");
    }

    #[test]
    fn multi_flit_dfsssp_still_drains() {
        let net = topo::ring(5, 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let config = SimConfig {
            buffer_capacity: 1,
            packet_flits: 4,
            max_cycles: 200_000,
        };
        let out = simulate(&net, &routes, &Workload::shift(5, 2, 8), &config);
        let Outcome::Completed(stats) = out else {
            panic!("expected completion, got {out:?}");
        };
        assert_eq!(stats.delivered, 40);
    }

    #[test]
    fn bigger_packets_take_longer_under_contention() {
        let net = topo::kary_ntree(2, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::uniform_random(net.num_terminals(), 10, 4);
        let run = |flits| {
            let config = SimConfig {
                packet_flits: flits,
                ..SimConfig::default()
            };
            match simulate(&net, &routes, &w, &config) {
                Outcome::Completed(s) => s.cycles,
                o => panic!("{o:?}"),
            }
        };
        let short = run(1);
        let long = run(8);
        assert!(long > 4 * short, "8-flit run {long} vs 1-flit {short}");
    }

    #[test]
    fn balancing_lowers_per_vl_peaks() {
        // The tail of Algorithm 2 spreads paths over empty layers "to
        // equalize per-VL buffer usage" — observable in the simulator:
        // the balanced routing's busiest VL buffer peaks no higher (and
        // typically lower) than the unbalanced one's.
        let net = topo::ring(6, 2);
        let w = Workload::uniform_random(net.num_terminals(), 20, 9);
        let run = |balance: bool| {
            let routes = DfSssp {
                balance,
                ..DfSssp::new()
            }
            .route_in(&net, &ComputeCtx::seq())
            .unwrap();
            let (out, occ) = simulate_detailed(&net, &routes, &w, &SimConfig::default());
            assert!(out.completed(), "{out:?}");
            occ
        };
        let unbalanced = run(false);
        let balanced = run(true);
        assert!(
            balanced.max_peak() <= unbalanced.max_peak(),
            "balanced peak {} vs unbalanced {}",
            balanced.max_peak(),
            unbalanced.max_peak()
        );
        // And the balanced run actually uses more lanes.
        let used = |o: &OccupancyStats| o.per_vl_peak.iter().filter(|&&p| p > 0).count();
        assert!(used(&balanced) >= used(&unbalanced));
    }

    #[test]
    fn occupancy_is_bounded_by_capacity() {
        let net = topo::torus(&[3, 3], 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::uniform_random(9, 30, 2);
        let config = SimConfig {
            buffer_capacity: 3,
            ..SimConfig::default()
        };
        let (out, occ) = simulate_detailed(&net, &routes, &w, &config);
        assert!(out.completed());
        assert!(occ.max_peak() as usize <= 3);
        assert_eq!(occ.per_vl_peak.len(), routes.num_layers() as usize);
    }

    #[test]
    fn empty_workload_completes_instantly() {
        let net = topo::ring(4, 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let out = simulate(&net, &routes, &Workload::new(4), &SimConfig::default());
        let Outcome::Completed(stats) = out else {
            panic!()
        };
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn cycle_limit_reported() {
        let net = topo::ring(5, 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let w = Workload::shift(5, 2, 100);
        let config = SimConfig {
            buffer_capacity: 1,
            max_cycles: 3,
            ..SimConfig::default()
        };
        let out = simulate(&net, &routes, &w, &config);
        assert!(matches!(out, Outcome::CycleLimit(_)));
    }

    #[test]
    fn latency_grows_with_congestion() {
        let net = topo::kary_ntree(2, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let light = Workload::uniform_random(4, 1, 3);
        let heavy = Workload::uniform_random(4, 50, 3);
        let Outcome::Completed(a) = simulate(&net, &routes, &light, &SimConfig::default()) else {
            panic!()
        };
        let Outcome::Completed(b) = simulate(&net, &routes, &heavy, &SimConfig::default()) else {
            panic!()
        };
        assert!(b.avg_latency > a.avg_latency);
        assert!(b.cycles > a.cycles);
    }
}
