//! Workloads: the packets each terminal will inject, in order.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A packet injection plan: per source terminal, an ordered list of
/// destination terminal indices.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// `queues[src_t]` = destinations to send to, front first.
    pub queues: Vec<Vec<u32>>,
}

impl Workload {
    /// Empty workload for `num_terminals` sources.
    pub fn new(num_terminals: usize) -> Workload {
        Workload {
            queues: vec![Vec::new(); num_terminals],
        }
    }

    /// Every source sends `count` packets to the terminal `hops`
    /// positions ahead (mod n) — the paper's Fig 2 ring pattern with
    /// `hops = 2`.
    pub fn shift(num_terminals: usize, hops: usize, count: usize) -> Workload {
        let mut w = Workload::new(num_terminals);
        let n = num_terminals as u32;
        for s in 0..num_terminals {
            let d = (s as u32 + hops as u32) % n;
            if d != s as u32 {
                w.queues[s] = vec![d; count];
            }
        }
        w
    }

    /// Each flow of a pattern sends `count` packets.
    pub fn from_flows(num_terminals: usize, flows: &[(u32, u32)], count: usize) -> Workload {
        let mut w = Workload::new(num_terminals);
        for &(s, d) in flows {
            for _ in 0..count {
                w.queues[s as usize].push(d);
            }
        }
        w
    }

    /// Uniform random traffic: every source sends `count` packets to
    /// uniformly random other terminals.
    pub fn uniform_random(num_terminals: usize, count: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Workload::new(num_terminals);
        for s in 0..num_terminals {
            for _ in 0..count {
                let mut d = rng.random_range(0..num_terminals as u32);
                while d == s as u32 {
                    d = rng.random_range(0..num_terminals as u32);
                }
                w.queues[s].push(d);
            }
        }
        w
    }

    /// Total packets to deliver.
    pub fn total_packets(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_skips_self_sends() {
        let w = Workload::shift(4, 2, 3);
        assert_eq!(w.total_packets(), 12);
        assert_eq!(w.queues[0], vec![2, 2, 2]);
        let w = Workload::shift(4, 4, 3); // self-shift: nothing to send
        assert_eq!(w.total_packets(), 0);
    }

    #[test]
    fn from_flows_repeats_count() {
        let w = Workload::from_flows(4, &[(0, 1), (2, 3)], 2);
        assert_eq!(w.queues[0], vec![1, 1]);
        assert_eq!(w.queues[2], vec![3, 3]);
        assert_eq!(w.total_packets(), 4);
    }

    #[test]
    fn uniform_random_avoids_self() {
        let w = Workload::uniform_random(8, 10, 42);
        for (s, q) in w.queues.iter().enumerate() {
            assert_eq!(q.len(), 10);
            assert!(q.iter().all(|&d| d != s as u32));
        }
        // Deterministic.
        let w2 = Workload::uniform_random(8, 10, 42);
        assert_eq!(w.queues, w2.queues);
    }
}
