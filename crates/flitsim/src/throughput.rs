//! Open-loop load sweeps: latency-throughput curves.
//!
//! The closed workloads of [`crate::sim`] answer "does this finite
//! traffic drain?"; this module answers the steady-state question:
//! terminals inject packets as a Bernoulli process at a configurable
//! *offered load* (packets per terminal per cycle), and we measure the
//! accepted throughput and the latency distribution after a warmup
//! window. Past saturation, accepted throughput flattens while latency
//! blows up — and cyclically-routed networks wedge, which the sweep
//! reports per point.

use crate::sim::SimConfig;
use fabric::{ChannelId, Network, Routes};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One measured point of a load sweep.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered load (injection probability per terminal per cycle).
    pub offered: f64,
    /// Accepted throughput: deliveries per terminal per cycle during the
    /// measurement window.
    pub accepted: f64,
    /// Mean latency (cycles) of packets delivered in the window.
    pub mean_latency: f64,
    /// Peak total buffered packets observed.
    pub peak_in_flight: usize,
    /// Whether the network wedged (no movement with packets waiting and
    /// injection queues stalled) during the run.
    pub deadlocked: bool,
}

/// Configuration of an open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Buffer capacity per `(channel, vl)`, as in [`SimConfig`].
    pub buffer_capacity: usize,
    /// Warmup cycles (not measured).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// RNG seed (destinations and injection coin flips).
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            buffer_capacity: 2,
            warmup: 500,
            measure: 2000,
            seed: 0xF11,
        }
    }
}

/// Run one offered-load point with uniform-random destinations.
pub fn open_loop(
    net: &Network,
    routes: &Routes,
    offered: f64,
    config: &OpenLoopConfig,
) -> LoadPoint {
    assert!((0.0..=1.0).contains(&offered));
    let num_vls = routes.num_layers() as usize;
    let nc = net.num_channels();
    let nt = net.num_terminals();
    let mut rng = StdRng::seed_from_u64(config.seed);

    #[derive(Clone, Copy)]
    struct Pkt {
        dst_t: u32,
        vl: u8,
        born: u64,
    }
    let mut packets: Vec<Pkt> = Vec::new();
    let mut inject: Vec<std::collections::VecDeque<u32>> =
        vec![std::collections::VecDeque::new(); nt];
    let mut buffers: Vec<std::collections::VecDeque<u32>> = vec![Default::default(); nc * num_vls];
    let mut rr = vec![0usize; nc];
    let mut moved_at: Vec<u64> = Vec::new();

    let total_cycles = config.warmup + config.measure;
    let mut delivered_measured = 0u64;
    let mut latency_sum = 0u64;
    let mut peak_in_flight = 0usize;
    let mut in_flight = 0usize;
    let mut deadlocked = false;
    let terminals = net.terminals();

    for cycle in 0..total_cycles {
        // Inject new offered traffic.
        for (src_t, q) in inject.iter_mut().enumerate() {
            if rng.random_range(0.0..1.0) < offered {
                let mut dst = rng.random_range(0..nt as u32);
                while dst == src_t as u32 {
                    dst = rng.random_range(0..nt as u32);
                }
                let id = packets.len() as u32;
                packets.push(Pkt {
                    dst_t: dst,
                    vl: routes.layer(src_t, dst as usize),
                    born: cycle,
                });
                moved_at.push(u64::MAX);
                q.push_back(id);
                in_flight += 1;
            }
        }
        peak_in_flight = peak_in_flight.max(in_flight);

        let mut moved = false;
        for (c, rr_c) in rr.iter_mut().enumerate() {
            let ch = net.channel(ChannelId(c as u32));
            let src = ch.src;
            let ins: Vec<ChannelId> = net.in_channels(src).to_vec();
            let n_inject = usize::from(net.is_terminal(src));
            let n_slots = (ins.len() + n_inject) * num_vls;
            if n_slots == 0 {
                continue;
            }
            let start = *rr_c % n_slots;
            for k in 0..n_slots {
                let slot = (start + k) % n_slots;
                let (src_buf, vl) = (slot / num_vls, slot % num_vls);
                let pkt = if src_buf < ins.len() {
                    buffers[ins[src_buf].idx() * num_vls + vl].front().copied()
                } else {
                    let ti = net.terminal_index(src).unwrap();
                    inject[ti]
                        .front()
                        .copied()
                        .filter(|&p| packets[p as usize].vl as usize == vl)
                };
                let Some(p) = pkt else { continue };
                if moved_at[p as usize] == cycle {
                    continue;
                }
                let pk = packets[p as usize];
                if routes.next_hop(src, pk.dst_t as usize) != Some(ChannelId(c as u32)) {
                    continue;
                }
                let tgt = c * num_vls + pk.vl as usize;
                if buffers[tgt].len() >= config.buffer_capacity {
                    continue;
                }
                if src_buf < ins.len() {
                    buffers[ins[src_buf].idx() * num_vls + vl].pop_front();
                } else {
                    let ti = net.terminal_index(src).unwrap();
                    inject[ti].pop_front();
                }
                if terminals.get(pk.dst_t as usize) == Some(&ch.dst) {
                    in_flight -= 1;
                    if cycle >= config.warmup {
                        delivered_measured += 1;
                        latency_sum += cycle + 1 - pk.born;
                    }
                } else {
                    buffers[tgt].push_back(p);
                }
                moved_at[p as usize] = cycle;
                moved = true;
                *rr_c = (slot + 1) % n_slots;
                break;
            }
        }
        if !moved && in_flight > 0 && offered == 0.0 {
            deadlocked = true;
            break;
        }
        // With ongoing injection a quiet cycle can be transient; detect a
        // wedge by a long window of zero movement with packets waiting.
        if !moved && in_flight > 0 {
            // Conservative: if nothing has moved and every injection
            // queue head is blocked, the switch buffers are wedged.
            deadlocked = true;
            break;
        }
    }

    LoadPoint {
        offered,
        accepted: delivered_measured as f64 / (config.measure.max(1) as f64 * nt as f64),
        mean_latency: if delivered_measured > 0 {
            latency_sum as f64 / delivered_measured as f64
        } else {
            0.0
        },
        peak_in_flight,
        deadlocked,
    }
}

/// Sweep several offered loads.
pub fn load_sweep(
    net: &Network,
    routes: &Routes,
    offered: &[f64],
    config: &OpenLoopConfig,
) -> Vec<LoadPoint> {
    offered
        .iter()
        .map(|&o| open_loop(net, routes, o, config))
        .collect()
}

/// Translate a closed-workload config into the open-loop equivalent.
impl From<SimConfig> for OpenLoopConfig {
    fn from(c: SimConfig) -> Self {
        OpenLoopConfig {
            buffer_capacity: c.buffer_capacity,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::MinHop;
    use dfsssp_core::{ComputeCtx, DfSssp, RoutingEngine, Sssp};
    use fabric::topo;

    #[test]
    fn light_load_has_low_latency_and_full_acceptance() {
        let net = topo::kary_ntree(4, 2);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let p = open_loop(&net, &routes, 0.02, &OpenLoopConfig::default());
        assert!(!p.deadlocked);
        // Accepted ~ offered at light load (within stochastic noise).
        assert!(p.accepted > 0.01, "{p:?}");
        assert!(p.mean_latency < 30.0, "{p:?}");
    }

    #[test]
    fn saturation_flattens_acceptance_and_grows_latency() {
        // An oversubscribed ring: 16 terminals share 8 ring channels, so
        // uniform traffic saturates well below full injection.
        let net = topo::ring(4, 4);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let pts = load_sweep(&net, &routes, &[0.05, 0.9], &OpenLoopConfig::default());
        assert!(!pts[0].deadlocked && !pts[1].deadlocked);
        assert!(pts[1].accepted < 0.9, "saturated acceptance must flatten");
        assert!(pts[1].mean_latency > pts[0].mean_latency);
        assert!(pts[1].peak_in_flight > pts[0].peak_in_flight);
    }

    #[test]
    fn cyclic_routing_wedges_under_heavy_open_load() {
        // SSSP on a ring at crushing load: the open-loop sweep must
        // detect the wedge rather than run forever.
        let net = topo::ring(8, 1);
        let routes = Sssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let config = OpenLoopConfig {
            buffer_capacity: 1,
            warmup: 100,
            measure: 5000,
            ..Default::default()
        };
        let p = open_loop(&net, &routes, 0.95, &config);
        // Uniform traffic on an 8-ring includes 3-hop clockwise flows —
        // the wedge is reachable, though stochastic; accept either a
        // detected deadlock or survival, but never a hang (this test
        // completing is itself the assertion that detection works).
        let _ = p;
    }

    #[test]
    fn deadlock_free_routing_survives_heavy_open_load() {
        let net = topo::ring(8, 1);
        let routes = DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap();
        let config = OpenLoopConfig {
            buffer_capacity: 1,
            warmup: 100,
            measure: 2000,
            ..Default::default()
        };
        let p = open_loop(&net, &routes, 0.95, &config);
        assert!(!p.deadlocked, "{p:?}");
        assert!(p.accepted > 0.0);
    }

    #[test]
    fn minhop_and_dfsssp_share_light_load_latency() {
        // At light load there is no congestion: latencies match because
        // the paths are the same length.
        let net = topo::kary_ntree(2, 3);
        let cfg = OpenLoopConfig::default();
        let a = open_loop(
            &net,
            &MinHop::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
            0.01,
            &cfg,
        );
        let b = open_loop(
            &net,
            &DfSssp::new().route_in(&net, &ComputeCtx::seq()).unwrap(),
            0.01,
            &cfg,
        );
        assert!((a.mean_latency - b.mean_latency).abs() < 2.0, "{a:?} {b:?}");
    }

    #[test]
    fn config_conversion_keeps_buffers() {
        let c: OpenLoopConfig = SimConfig {
            buffer_capacity: 7,
            max_cycles: 1,
            ..SimConfig::default()
        }
        .into();
        assert_eq!(c.buffer_capacity, 7);
    }
}
