//! Incremental network construction with port bookkeeping.

use crate::graph::{Channel, ChannelId, CsrAdj, Network, Node, NodeId, NodeKind, NONE_U32};
use rustc_hash::FxHashSet;

/// Error raised while wiring a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A node ran out of ports: `(node name, radix)`.
    OutOfPorts(String, u16),
    /// Attempted to link a node to itself.
    SelfLoop(String),
    /// An explicitly requested port is already cabled or out of range:
    /// `(node name, port)`.
    PortTaken(String, u16),
    /// A cable endpoint referenced a node id this builder never created
    /// (a dangling endpoint).
    NoSuchNode(u32),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::OutOfPorts(name, radix) => {
                write!(f, "node {name} has no free port (radix {radix})")
            }
            BuildError::SelfLoop(name) => write!(f, "self-loop on node {name}"),
            BuildError::PortTaken(name, port) => {
                write!(f, "port {port} of {name} is taken or out of range")
            }
            BuildError::NoSuchNode(id) => write!(f, "node id {id} does not exist"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Network`] node by node and cable by cable.
///
/// Port numbers are assigned in cabling order, 1-based, like InfiniBand
/// port numbering. `link` creates a bidirectional cable (two channels);
/// `add_channel` creates a single unidirectional channel for directed
/// topologies such as classical Kautz networks.
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    channels: Vec<Channel>,
    next_port: Vec<u16>,
    /// Ports claimed explicitly via [`Self::link_at`].
    used_ports: Vec<FxHashSet<u16>>,
    label: String,
}

impl NetworkBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the topology label recorded on the built network.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        self.label = label.into();
        self
    }

    /// Add a switch with the given radix (port count).
    pub fn add_switch(&mut self, name: impl Into<String>, radix: u16) -> NodeId {
        self.add_node(NodeKind::Switch, name.into(), radix)
    }

    /// Add a terminal (endpoint). Terminals get 2 ports so that redundantly
    /// attached service nodes (a real-world irregularity the paper calls
    /// out) can be modeled.
    pub fn add_terminal(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Terminal, name.into(), 2)
    }

    /// Add a node of arbitrary kind/radix.
    pub fn add_node(&mut self, kind: NodeKind, name: String, max_ports: u16) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            name,
            max_ports,
            coord: None,
            level: None,
        });
        self.next_port.push(1);
        self.used_ports.push(FxHashSet::default());
        id
    }

    /// Set the coordinate of a node (for dimension-order routing).
    pub fn set_coord(&mut self, node: NodeId, coord: Vec<u16>) {
        self.nodes[node.idx()].coord = Some(coord);
    }

    /// Set the tree level of a node (0 = leaf) for tree topologies.
    pub fn set_level(&mut self, node: NodeId, level: u8) {
        self.nodes[node.idx()].level = Some(level);
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Free ports remaining on `node`.
    pub fn free_ports(&self, node: NodeId) -> u16 {
        let sequential = self.next_port[node.idx()] - 1;
        // Explicit ports at or above the cursor also consume capacity.
        let explicit = self.used_ports[node.idx()]
            .iter()
            .filter(|&&p| p >= self.next_port[node.idx()])
            .count() as u16;
        self.nodes[node.idx()]
            .max_ports
            .saturating_sub(sequential + explicit)
    }

    /// Reject node ids this builder never handed out, so cable calls
    /// return a typed error instead of panicking on a dangling endpoint.
    fn check_node(&self, node: NodeId) -> Result<(), BuildError> {
        if node.idx() >= self.nodes.len() {
            return Err(BuildError::NoSuchNode(node.0));
        }
        Ok(())
    }

    fn take_port(&mut self, node: NodeId) -> Result<u16, BuildError> {
        let n = &self.nodes[node.idx()];
        let mut p = self.next_port[node.idx()];
        while self.used_ports[node.idx()].contains(&p) {
            p += 1;
        }
        if p > n.max_ports {
            return Err(BuildError::OutOfPorts(n.name.clone(), n.max_ports));
        }
        self.next_port[node.idx()] = p + 1;
        Ok(p)
    }

    fn take_specific_port(&mut self, node: NodeId, port: u16) -> Result<u16, BuildError> {
        let n = &self.nodes[node.idx()];
        let taken = port == 0
            || port > n.max_ports
            || port < self.next_port[node.idx()]
            || self.used_ports[node.idx()].contains(&port);
        if taken {
            return Err(BuildError::PortTaken(n.name.clone(), port));
        }
        self.used_ports[node.idx()].insert(port);
        Ok(port)
    }

    /// Connect `a` and `b` with a bidirectional cable. Returns the two
    /// channel ids `(a→b, b→a)`.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> Result<(ChannelId, ChannelId), BuildError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(BuildError::SelfLoop(self.nodes[a.idx()].name.clone()));
        }
        let pa = self.take_port(a)?;
        let pb = self.take_port(b)?;
        let ab = ChannelId(self.channels.len() as u32);
        let ba = ChannelId(self.channels.len() as u32 + 1);
        self.channels.push(Channel {
            src: a,
            dst: b,
            src_port: pa,
            dst_port: pb,
            rev: Some(ba),
        });
        self.channels.push(Channel {
            src: b,
            dst: a,
            src_port: pb,
            dst_port: pa,
            rev: Some(ab),
        });
        Ok((ab, ba))
    }

    /// Connect `a` port `pa` to `b` port `pb` with a bidirectional cable
    /// using the given 1-based port numbers (for replaying cabling dumps
    /// like `ibnetdiscover` output, where ports are facts, not choices).
    pub fn link_at(
        &mut self,
        a: NodeId,
        pa: u16,
        b: NodeId,
        pb: u16,
    ) -> Result<(ChannelId, ChannelId), BuildError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(BuildError::SelfLoop(self.nodes[a.idx()].name.clone()));
        }
        let pa = self.take_specific_port(a, pa)?;
        let pb = match self.take_specific_port(b, pb) {
            Ok(p) => p,
            Err(e) => {
                // Roll back a's claim so the builder stays consistent.
                self.used_ports[a.idx()].remove(&pa);
                return Err(e);
            }
        };
        let ab = ChannelId(self.channels.len() as u32);
        let ba = ChannelId(self.channels.len() as u32 + 1);
        self.channels.push(Channel {
            src: a,
            dst: b,
            src_port: pa,
            dst_port: pb,
            rev: Some(ba),
        });
        self.channels.push(Channel {
            src: b,
            dst: a,
            src_port: pb,
            dst_port: pa,
            rev: Some(ab),
        });
        Ok((ab, ba))
    }

    /// Add a single unidirectional channel `a→b` at explicit 1-based port
    /// numbers (the directed counterpart of [`Self::link_at`]).
    pub fn add_channel_at(
        &mut self,
        a: NodeId,
        pa: u16,
        b: NodeId,
        pb: u16,
    ) -> Result<ChannelId, BuildError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(BuildError::SelfLoop(self.nodes[a.idx()].name.clone()));
        }
        let pa = self.take_specific_port(a, pa)?;
        let pb = match self.take_specific_port(b, pb) {
            Ok(p) => p,
            Err(e) => {
                self.used_ports[a.idx()].remove(&pa);
                return Err(e);
            }
        };
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel {
            src: a,
            dst: b,
            src_port: pa,
            dst_port: pb,
            rev: None,
        });
        Ok(id)
    }

    /// Add a single unidirectional channel `a→b` (directed topologies).
    pub fn add_channel(&mut self, a: NodeId, b: NodeId) -> Result<ChannelId, BuildError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(BuildError::SelfLoop(self.nodes[a.idx()].name.clone()));
        }
        let pa = self.take_port(a)?;
        let pb = self.take_port(b)?;
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel {
            src: a,
            dst: b,
            src_port: pa,
            dst_port: pb,
            rev: None,
        });
        Ok(id)
    }

    /// Whether any channel (in either direction) already connects `a`/`b`.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.channels
            .iter()
            .any(|c| (c.src == a && c.dst == b) || (c.src == b && c.dst == a))
    }

    /// Finalize into an immutable [`Network`].
    pub fn build(self) -> Network {
        let n = self.nodes.len();
        let mut out_adj: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        for (i, ch) in self.channels.iter().enumerate() {
            out_adj[ch.src.idx()].push(ChannelId(i as u32));
            in_adj[ch.dst.idx()].push(ChannelId(i as u32));
        }
        let mut switches = Vec::new();
        let mut terminals = Vec::new();
        let mut switch_index = vec![NONE_U32; n];
        let mut terminal_index = vec![NONE_U32; n];
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Switch => {
                    switch_index[i] = switches.len() as u32;
                    switches.push(NodeId(i as u32));
                }
                NodeKind::Terminal => {
                    terminal_index[i] = terminals.len() as u32;
                    terminals.push(NodeId(i as u32));
                }
            }
        }
        let out_csr = CsrAdj::from_lists(&out_adj);
        let in_csr = CsrAdj::from_lists(&in_adj);
        debug_assert!(out_csr.agrees_with(&out_adj));
        debug_assert!(in_csr.agrees_with(&in_adj));
        Network {
            nodes: self.nodes,
            channels: self.channels,
            out_adj,
            in_adj,
            out_csr,
            in_csr,
            switches,
            terminals,
            terminal_index,
            switch_index,
            label: self.label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_assigned_in_cabling_order() {
        let mut b = NetworkBuilder::new();
        let s = b.add_switch("s", 4);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        let (c0, _) = b.link(s, t0).unwrap();
        let (c1, _) = b.link(s, t1).unwrap();
        let net = b.build();
        assert_eq!(net.channel(c0).src_port, 1);
        assert_eq!(net.channel(c1).src_port, 2);
        assert_eq!(net.channel(c0).dst_port, 1);
    }

    #[test]
    fn radix_is_enforced() {
        let mut b = NetworkBuilder::new();
        let s = b.add_switch("s", 1);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(s, t0).unwrap();
        let err = b.link(s, t1).unwrap_err();
        assert_eq!(err, BuildError::OutOfPorts("s".into(), 1));
    }

    #[test]
    fn dangling_endpoints_rejected() {
        let mut b = NetworkBuilder::new();
        let s = b.add_switch("s", 4);
        let ghost = NodeId(99);
        assert_eq!(b.link(s, ghost), Err(BuildError::NoSuchNode(99)));
        assert_eq!(b.link(ghost, s), Err(BuildError::NoSuchNode(99)));
        assert_eq!(b.add_channel(s, ghost), Err(BuildError::NoSuchNode(99)));
        assert_eq!(b.link_at(s, 1, ghost, 1), Err(BuildError::NoSuchNode(99)));
        assert_eq!(
            b.add_channel_at(ghost, 1, s, 1),
            Err(BuildError::NoSuchNode(99))
        );
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = NetworkBuilder::new();
        let s = b.add_switch("s", 4);
        assert!(matches!(b.link(s, s), Err(BuildError::SelfLoop(_))));
        assert!(matches!(b.add_channel(s, s), Err(BuildError::SelfLoop(_))));
    }

    #[test]
    fn unidirectional_channel_has_no_reverse() {
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a", 4);
        let c = b.add_switch("c", 4);
        let ch = b.add_channel(a, c).unwrap();
        let net = b.build();
        assert!(net.channel(ch).rev.is_none());
        assert!(!net.is_strongly_connected());
    }

    #[test]
    fn explicit_ports_on_unidirectional_channels() {
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a", 8);
        let c = b.add_switch("c", 8);
        let ch = b.add_channel_at(a, 5, c, 3).unwrap();
        // A failed claim must roll back the source port.
        assert!(matches!(
            b.add_channel_at(a, 6, c, 3),
            Err(BuildError::PortTaken(_, 3))
        ));
        b.add_channel_at(a, 6, c, 4).unwrap();
        let net = b.build();
        assert_eq!(net.channel(ch).src_port, 5);
        assert_eq!(net.channel(ch).dst_port, 3);
        assert!(net.channel(ch).rev.is_none());
    }

    #[test]
    fn connected_checks_both_directions() {
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a", 4);
        let c = b.add_switch("c", 4);
        assert!(!b.connected(a, c));
        b.add_channel(a, c).unwrap();
        assert!(b.connected(a, c));
        assert!(b.connected(c, a));
    }

    #[test]
    fn free_ports_tracks_usage() {
        let mut b = NetworkBuilder::new();
        let s = b.add_switch("s", 3);
        let t = b.add_terminal("t");
        assert_eq!(b.free_ports(s), 3);
        b.link(s, t).unwrap();
        assert_eq!(b.free_ports(s), 2);
        assert_eq!(b.free_ports(t), 1);
    }
}
