//! Topology generators for every network family in the paper's evaluation.
//!
//! * [`ring`], [`mesh`], [`torus`], [`hypercube`] — k-ary n-cube family
//!   (Fig 2's deadlock demonstration; DOR's home turf).
//! * [`kary_ntree`] — k-ary n-trees (Fig 7 runtime sweep).
//! * [`xgft`] — extended generalized fat trees (Fig 5).
//! * [`kautz`] — Kautz graphs with attached endpoints (Fig 6).
//! * [`random`] — random irregular switch graphs (Fig 9, §IV heuristics).
//! * [`realworld`] — synthetic reconstructions of the six HPC systems
//!   (Figs 4, 8, 10; §VI). See DESIGN.md §3 for the substitution notes.
//! * [`dragonfly`] — a modern "arbitrary" topology beyond the paper's set,
//!   exercising the claim that DFSSSP handles any network.

mod cube;
mod dragonfly;
mod kautz;
pub mod random;
pub mod realworld;
mod ring;
mod tree;

pub use cube::{hypercube, mesh, torus};
pub use dragonfly::dragonfly;
pub use kautz::{kautz, kautz_num_switches};
pub use random::{random_topology, RandomTopoSpec};
pub use ring::{fully_connected, ring, star};
pub use tree::{clos2, kary_ntree, xgft};

use crate::graph::NodeId;
use crate::NetworkBuilder;

/// Attach `count` terminals to `switch`, naming them `t{start+i}`.
/// Returns the terminal ids. Helper shared by the generators.
pub(crate) fn attach_terminals(
    b: &mut NetworkBuilder,
    switch: NodeId,
    count: usize,
    next_id: &mut usize,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let t = b.add_terminal(format!("t{}", *next_id));
        *next_id += 1;
        b.link(t, switch)
            .expect("terminal attachment must fit switch radix");
        out.push(t);
    }
    out
}
