//! Random irregular switch topologies (Fig 9 and the §IV heuristic study).
//!
//! The paper's random networks consist of a fixed number of switches with a
//! fixed number of terminals each, connected by a configurable number of
//! random inter-switch cables. We guarantee connectivity by first building
//! a random spanning tree, then adding the remaining cables uniformly at
//! random between switches with free ports (no parallel cables, no
//! self-loops).

use super::attach_terminals;
use crate::graph::NodeId;
use crate::{Network, NetworkBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use rustc_hash::FxHashSet;

/// Parameters of a random topology.
#[derive(Clone, Debug)]
pub struct RandomTopoSpec {
    /// Number of switches.
    pub switches: usize,
    /// Switch radix (ports per switch).
    pub radix: u16,
    /// Terminals attached to every switch.
    pub terminals_per_switch: usize,
    /// Total number of inter-switch cables, including the spanning tree
    /// (must be at least `switches - 1`).
    pub interswitch_links: usize,
}

impl RandomTopoSpec {
    /// The paper's Fig 9 configuration: 128 32-port switches, 16 terminals
    /// each, with a variable number of inter-switch cables.
    pub fn fig9(interswitch_links: usize) -> Self {
        RandomTopoSpec {
            switches: 128,
            radix: 32,
            terminals_per_switch: 16,
            interswitch_links,
        }
    }

    /// The §IV heuristic-study configuration: 64 switches, 1024 terminals,
    /// 128 inter-switch cables. 36-port switches fit 16 terminals plus the
    /// random cables.
    pub fn heuristic_study() -> Self {
        RandomTopoSpec {
            switches: 64,
            radix: 36,
            terminals_per_switch: 16,
            interswitch_links: 128,
        }
    }
}

/// Generate a random topology per `spec`, deterministically from `seed`.
///
/// # Panics
/// Panics if the spec is infeasible (too few links for a spanning tree, or
/// not enough ports for terminals plus the requested links).
pub fn random_topology(spec: &RandomTopoSpec, seed: u64) -> Network {
    assert!(spec.switches >= 2, "need at least two switches");
    assert!(
        spec.interswitch_links >= spec.switches - 1,
        "need at least switches-1 links for connectivity"
    );
    let free_ports = spec.radix as usize - spec.terminals_per_switch;
    assert!(
        spec.terminals_per_switch < spec.radix as usize,
        "terminals exceed radix"
    );
    assert!(
        2 * spec.interswitch_links <= spec.switches * free_ports,
        "not enough free ports for the requested links"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    b.label(format!(
        "random(s{},r{},t{},l{};seed{seed})",
        spec.switches, spec.radix, spec.terminals_per_switch, spec.interswitch_links
    ));
    let switches: Vec<NodeId> = (0..spec.switches)
        .map(|i| b.add_switch(format!("s{i}"), spec.radix))
        .collect();

    // Terminals first so the port budget for cables is exact.
    let mut tid = 0;
    for &s in &switches {
        attach_terminals(&mut b, s, spec.terminals_per_switch, &mut tid);
    }

    // Random spanning tree: random permutation, attach each new switch to
    // a random predecessor that still has free ports.
    let mut order: Vec<usize> = (0..spec.switches).collect();
    order.shuffle(&mut rng);
    let mut cabled: FxHashSet<(usize, usize)> = FxHashSet::default();
    for i in 1..order.len() {
        // Pick a random earlier switch with a free port; the tree uses at
        // most 2 ports per switch on average, so one always exists.
        let mut j = rng.random_range(0..i);
        let mut tries = 0;
        while b.free_ports(switches[order[j]]) == 0 {
            j = rng.random_range(0..i);
            tries += 1;
            assert!(tries < 10_000, "spanning tree construction starved");
        }
        let (u, v) = (order[j], order[i]);
        b.link(switches[u], switches[v]).unwrap();
        cabled.insert((u.min(v), u.max(v)));
    }

    // Remaining random cables: uniform over switch pairs with free ports.
    let mut remaining = spec.interswitch_links - (spec.switches - 1);
    let mut tries = 0usize;
    let try_budget = 1000 * spec.interswitch_links + 100_000;
    while remaining > 0 {
        tries += 1;
        assert!(
            tries < try_budget,
            "random link placement starved; spec too dense for no-parallel-cables rule"
        );
        let u = rng.random_range(0..spec.switches);
        let v = rng.random_range(0..spec.switches);
        if u == v || cabled.contains(&(u.min(v), u.max(v))) {
            continue;
        }
        if b.free_ports(switches[u]) == 0 || b.free_ports(switches[v]) == 0 {
            continue;
        }
        b.link(switches[u], switches[v]).unwrap();
        cabled.insert((u.min(v), u.max(v)));
        remaining -= 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let spec = RandomTopoSpec {
            switches: 16,
            radix: 16,
            terminals_per_switch: 4,
            interswitch_links: 30,
        };
        let a = random_topology(&spec, 7);
        let b = random_topology(&spec, 7);
        assert_eq!(a.num_channels(), b.num_channels());
        for ((_, ca), (_, cb)) in a.channels().zip(b.channels()) {
            assert_eq!(ca.src, cb.src);
            assert_eq!(ca.dst, cb.dst);
        }
        let c = random_topology(&spec, 8);
        let same = a
            .channels()
            .zip(c.channels())
            .all(|((_, x), (_, y))| x.src == y.src && x.dst == y.dst);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn link_count_and_connectivity() {
        let spec = RandomTopoSpec {
            switches: 32,
            radix: 24,
            terminals_per_switch: 8,
            interswitch_links: 64,
        };
        for seed in 0..5 {
            let net = random_topology(&spec, seed);
            assert!(net.is_strongly_connected());
            let switch_cables = net.num_cables() - net.num_terminals();
            assert_eq!(switch_cables, 64);
            assert_eq!(net.num_terminals(), 32 * 8);
            net.validate().unwrap();
        }
    }

    #[test]
    fn fig9_spec_is_feasible() {
        let net = random_topology(&RandomTopoSpec::fig9(200), 1);
        assert_eq!(net.num_switches(), 128);
        assert_eq!(net.num_terminals(), 2048);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn heuristic_study_spec_is_feasible() {
        let net = random_topology(&RandomTopoSpec::heuristic_study(), 1);
        assert_eq!(net.num_switches(), 64);
        assert_eq!(net.num_terminals(), 1024);
        assert!(net.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "not enough free ports")]
    fn infeasible_spec_rejected() {
        let spec = RandomTopoSpec {
            switches: 4,
            radix: 4,
            terminals_per_switch: 3,
            interswitch_links: 10,
        };
        random_topology(&spec, 0);
    }
}
