//! Synthetic reconstructions of the six real-world HPC systems of the
//! paper's evaluation (Figs 4, 8, 10; §VI).
//!
//! The authors used vendor-provided cabling files we do not have; these
//! generators rebuild each system from its published architecture (see
//! DESIGN.md §3). Director-class switches ("288-port", "144-port",
//! "Magnum") are modeled as their real internal two-stage Clos of 24-port
//! crossbar chips, which is what makes congestion behave like the real
//! fabric rather than like an ideal single crossbar.
//!
//! All generators accept a `scale` in `(0, 1]` that shrinks node counts
//! proportionally, for fast test / CI runs; `scale = 1.0` is the published
//! system size.

use crate::graph::NodeId;
use crate::{Network, NetworkBuilder};

/// The six systems of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RealSystem {
    /// 128-node Odin cluster (Indiana University) — one 144-port switch.
    Odin,
    /// 550-node CHiC cluster (TU Chemnitz) — 2-level fat tree, 24-port
    /// leaves, two 144-port cores, dual-attached service nodes.
    Chic,
    /// 724-node Deimos cluster (TU Dresden) — three 288-port switches in a
    /// chain/triangle with 30 inter-switch cables (Fig 11).
    Deimos,
    /// 1430-node configuration of Tsubame (Tokyo Tech) — leaf switches
    /// feeding two 288-port-class cores, with dual-homed storage.
    Tsubame,
    /// 3288-node JUROPA/HPC-FF (FZ Jülich) — fat tree over four director
    /// cores, 2:1 tapered leaves.
    Juropa,
    /// 3936-node Ranger (TACC) — two Magnum-class cores with sparse
    /// internal spine stage; the most irregular of the set.
    Ranger,
}

impl RealSystem {
    /// All systems, in the order the paper's figures list them.
    pub const ALL: [RealSystem; 6] = [
        RealSystem::Chic,
        RealSystem::Deimos,
        RealSystem::Juropa,
        RealSystem::Odin,
        RealSystem::Ranger,
        RealSystem::Tsubame,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RealSystem::Odin => "Odin",
            RealSystem::Chic => "CHiC",
            RealSystem::Deimos => "Deimos",
            RealSystem::Tsubame => "Tsubame",
            RealSystem::Juropa => "JUROPA",
            RealSystem::Ranger => "Ranger",
        }
    }

    /// Published endpoint count at `scale = 1.0`.
    pub fn endpoints(self) -> usize {
        match self {
            RealSystem::Odin => 128,
            RealSystem::Chic => 550,
            RealSystem::Deimos => 724,
            RealSystem::Tsubame => 1430,
            RealSystem::Juropa => 3288,
            RealSystem::Ranger => 3936,
        }
    }

    /// Build the reconstruction at the given scale (`1.0` = full size).
    pub fn build(self, scale: f64) -> Network {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        match self {
            RealSystem::Odin => odin(scale),
            RealSystem::Chic => chic(scale),
            RealSystem::Deimos => deimos(scale),
            RealSystem::Tsubame => tsubame(scale),
            RealSystem::Juropa => juropa(scale),
            RealSystem::Ranger => ranger(scale),
        }
    }
}

fn sc(x: usize, scale: f64) -> usize {
    ((x as f64 * scale).round() as usize).max(1)
}

/// A director-class switch modeled as its internal two-stage Clos:
/// leaf crossbar chips (user-facing ports) fully fed into spine chips.
struct Director {
    /// Leaf chips, each with `leaf_down` user-facing ports.
    leaves: Vec<NodeId>,
    next: usize,
}

impl Director {
    /// Create a director with at least `down_ports` user-facing ports,
    /// built from chips with `leaf_down` down / `leaf_up` up ports and
    /// 24-port spine chips. `sparse_spines` reduces the spine stage below
    /// full bisection (the Magnum configuration on Ranger).
    fn new(
        b: &mut NetworkBuilder,
        prefix: &str,
        down_ports: usize,
        leaf_down: usize,
        leaf_up: usize,
        sparse_spines: bool,
    ) -> Director {
        let n_leaf = down_ports.div_ceil(leaf_down).max(2);
        let total_up = n_leaf * leaf_up;
        let n_spine = if sparse_spines {
            total_up.div_ceil(24).max(1)
        } else {
            // Full-bisection spine stage: half as many spines as leaves,
            // each twice the links (classic folded Clos of 24-port chips).
            (n_leaf * leaf_up).div_ceil(24).max(n_leaf / 2).max(1)
        };
        let spine_radix = total_up.div_ceil(n_spine);
        let leaves: Vec<_> = (0..n_leaf)
            .map(|i| {
                let s = b.add_switch(format!("{prefix}-leaf{i}"), (leaf_down + leaf_up) as u16);
                b.set_level(s, 1);
                s
            })
            .collect();
        let spines: Vec<_> = (0..n_spine)
            .map(|i| {
                let s = b.add_switch(format!("{prefix}-spine{i}"), spine_radix as u16);
                b.set_level(s, 2);
                s
            })
            .collect();
        let mut spin = 0usize;
        for &leaf in &leaves {
            for _ in 0..leaf_up {
                b.link(leaf, spines[spin % n_spine]).unwrap();
                spin += 1;
            }
        }
        Director { leaves, next: 0 }
    }

    /// Connect `node` to the next leaf chip with a free user-facing port
    /// (round-robin — how trunk/uplink bundles are spread over line
    /// cards).
    fn attach(&mut self, b: &mut NetworkBuilder, node: NodeId) {
        for _ in 0..self.leaves.len() {
            let leaf = self.leaves[self.next];
            self.next = (self.next + 1) % self.leaves.len();
            if b.free_ports(leaf) > 0 {
                b.link(node, leaf).unwrap();
                return;
            }
        }
        panic!("director out of user-facing ports");
    }

    /// Connect `node` to the first leaf chip with room (sequential fill —
    /// how compute nodes are racked onto line cards in practice; leaves
    /// the trailing chips free for trunks and creates the uneven
    /// source-multiplicity real fabrics have).
    fn attach_packed(&mut self, b: &mut NetworkBuilder, node: NodeId) {
        for &leaf in &self.leaves {
            if b.free_ports(leaf) > 0 {
                b.link(node, leaf).unwrap();
                return;
            }
        }
        panic!("director out of user-facing ports");
    }
}

/// Attach `n` compute terminals to a director, packing line cards in
/// order (racking order, not round-robin).
fn attach_compute(b: &mut NetworkBuilder, d: &mut Director, n: usize, tid: &mut usize) {
    for _ in 0..n {
        let t = b.add_terminal(format!("t{}", *tid));
        *tid += 1;
        d.attach_packed(b, t);
    }
}

/// Odin: 128 nodes behind a single 144-port switch (12 leaf chips of
/// 12 down / 12 up, 6 spine chips). The paper calls it "a pure fat tree
/// with only one 144-port switch" — the only system where DFSSSP does not
/// win (Fig 4).
fn odin(scale: f64) -> Network {
    let nodes = sc(128, scale);
    let mut b = NetworkBuilder::new();
    b.label(format!("odin({nodes})"));
    let mut d = Director::new(&mut b, "core", sc(144, scale), 12, 12, false);
    let mut tid = 0;
    attach_compute(&mut b, &mut d, nodes, &mut tid);
    b.build()
}

/// CHiC: 550 endpoints on 24-port leaf switches (12 down / 12 up) feeding
/// two 144-port-class cores; a handful of service nodes are dual-attached
/// to two different leaves (the redundancy irregularity of §I).
fn chic(scale: f64) -> Network {
    let service = sc(8, scale);
    let n_leaf = sc(48, scale).max(2);
    // 24-port leaves: 12 uplinks leave 12 down ports each.
    let compute = sc(542, scale).min(n_leaf * 12 - 2 * service);
    let mut b = NetworkBuilder::new();
    b.label(format!("chic({})", compute + service));
    let mut cores = [
        Director::new(&mut b, "coreA", n_leaf * 6, 12, 12, false),
        Director::new(&mut b, "coreB", n_leaf * 6, 12, 12, false),
    ];
    let leaves: Vec<_> = (0..n_leaf)
        .map(|i| {
            let s = b.add_switch(format!("leaf{i}"), 24);
            b.set_level(s, 0);
            s
        })
        .collect();
    for &leaf in &leaves {
        for core in cores.iter_mut() {
            for _ in 0..6 {
                core.attach(&mut b, leaf);
            }
        }
    }
    // Dual-attached service nodes go in first so both ports find room.
    for i in 0..service {
        let t = b.add_terminal(format!("svc{i}"));
        dual_attach(&mut b, t, &leaves, i);
    }
    fill_compute(&mut b, &leaves, compute, "chic");
    b.build()
}

/// Attach `t` to two distinct leaves with free ports (redundant service
/// node attachment); guarantees at least one attachment.
fn dual_attach(b: &mut NetworkBuilder, t: NodeId, leaves: &[NodeId], salt: usize) {
    let n = leaves.len();
    let first = (0..n)
        .map(|k| leaves[(salt + k) % n])
        .find(|&l| b.free_ports(l) > 0)
        .expect("no leaf has a free port for a service node");
    b.link(t, first).unwrap();
    if let Some(second) = (0..n)
        .map(|k| leaves[(salt + n / 2 + k) % n])
        .find(|&l| l != first && b.free_ports(l) > 0)
    {
        b.link(t, second).unwrap();
    }
}

/// Attach `count` compute terminals round-robin across `leaves`.
fn fill_compute(b: &mut NetworkBuilder, leaves: &[NodeId], count: usize, what: &str) {
    let n = leaves.len();
    let mut rr = 0usize;
    for tid in 0..count {
        let t = b.add_terminal(format!("t{tid}"));
        let mut placed = false;
        for _ in 0..n {
            let leaf = leaves[rr % n];
            rr += 1;
            if b.free_ports(leaf) > 0 {
                b.link(t, leaf).unwrap();
                placed = true;
                break;
            }
        }
        assert!(placed, "{what} leaves out of ports");
    }
}

/// Deimos: three 288-port director switches connected by 30 cables
/// (Fig 11: 10 per switch pair), 724 endpoints split across the three.
fn deimos(scale: f64) -> Network {
    let nodes = sc(724, scale);
    let pair_cables = sc(10, scale);
    let mut b = NetworkBuilder::new();
    b.label(format!("deimos({nodes})"));
    // The real machine's nodes split unevenly over the three directors
    // (Fig 11); keep the published proportions.
    let raw = [264.0 / 724.0, 230.0 / 724.0];
    let a = (nodes as f64 * raw[0]).round() as usize;
    let b2 = (nodes as f64 * raw[1]).round() as usize;
    let shares = [a, b2, nodes - a - b2];
    let mut directors: Vec<Director> = (0..3)
        .map(|i| {
            Director::new(
                &mut b,
                &format!("d{i}"),
                shares[i] + 2 * pair_cables,
                12,
                12,
                false,
            )
        })
        .collect();
    // Inter-director cables through dedicated bridge ports on leaf chips:
    // cable k of pair (x, y) connects a leaf chip of x to a leaf chip of y.
    for x in 0..3usize {
        for y in (x + 1)..3 {
            for _ in 0..pair_cables {
                // Reserve a port on one leaf of each director and link the
                // two chips directly (how Deimos' inter-switch cables
                // physically land on line cards).
                let lx = next_free_leaf(&b, &directors[x]);
                let ly = next_free_leaf(&b, &directors[y]);
                b.link(lx, ly).unwrap();
            }
        }
    }
    let mut tid = 0;
    for (i, d) in directors.iter_mut().enumerate() {
        attach_compute(&mut b, d, shares[i], &mut tid);
    }
    b.build()
}

/// Trunk cables land on the trailing line cards (operators dedicate
/// cards to inter-switch bundles), concentrating bridge traffic there.
fn next_free_leaf(b: &NetworkBuilder, d: &Director) -> NodeId {
    *d.leaves
        .iter()
        .rev()
        .find(|&&l| b.free_ports(l) > 0)
        .expect("director has a free trunk port")
}

/// Tsubame (1430-endpoint configuration): 24-down/12-up leaf switches
/// feeding two 288-port-class cores, plus dual-homed storage nodes.
fn tsubame(scale: f64) -> Network {
    let storage = sc(6, scale);
    let n_leaf = sc(60, scale).max(2);
    // 36-port leaves: 12 uplinks leave 24 down ports each.
    let compute = sc(1424, scale).min(n_leaf * 24 - 2 * storage);
    let mut b = NetworkBuilder::new();
    b.label(format!("tsubame({})", compute + storage));
    let mut cores = [
        Director::new(&mut b, "coreA", n_leaf * 6, 12, 12, false),
        Director::new(&mut b, "coreB", n_leaf * 6, 12, 12, false),
    ];
    let leaves: Vec<_> = (0..n_leaf)
        .map(|i| {
            let s = b.add_switch(format!("leaf{i}"), 36);
            b.set_level(s, 0);
            s
        })
        .collect();
    for &leaf in &leaves {
        for core in cores.iter_mut() {
            for _ in 0..6 {
                core.attach(&mut b, leaf);
            }
        }
    }
    for i in 0..storage {
        let t = b.add_terminal(format!("stor{i}"));
        dual_attach(&mut b, t, &leaves, i);
    }
    fill_compute(&mut b, &leaves, compute, "tsubame");
    b.build()
}

/// JUROPA/HPC-FF: 3288 endpoints on 36-port leaves (24 down / 12 up)
/// feeding four director cores (18-down/18-up chips). Dense fat tree —
/// the system where DFSSSP's advantage is smallest (1.4%, Fig 4).
fn juropa(scale: f64) -> Network {
    let n_leaf = sc(137, scale).max(4);
    let compute = (sc(3288, scale)).min(n_leaf * 24);
    let mut b = NetworkBuilder::new();
    b.label(format!("juropa({compute})"));
    let per_core = n_leaf * 3; // 3 of each leaf's 12 uplinks per core
    let mut cores: Vec<Director> = (0..4)
        .map(|i| Director::new(&mut b, &format!("core{i}"), per_core, 18, 18, false))
        .collect();
    let leaves: Vec<_> = (0..n_leaf)
        .map(|i| {
            let s = b.add_switch(format!("leaf{i}"), 36);
            b.set_level(s, 0);
            s
        })
        .collect();
    for &leaf in &leaves {
        for core in cores.iter_mut() {
            for _ in 0..3 {
                core.attach(&mut b, leaf);
            }
        }
    }
    fill_compute(&mut b, &leaves, compute, "juropa");
    b.build()
}

/// Ranger: 3936 endpoints on 36-port leaves (24 down / 12 up), six
/// uplinks to each of two Magnum-class cores whose spine stage is sparse
/// (round-robin, not full bipartite). The sparse internal stage is what
/// makes Ranger the most congestion-sensitive system in Fig 4.
fn ranger(scale: f64) -> Network {
    let n_leaf = sc(164, scale).max(4);
    let compute = (sc(3936, scale)).min(n_leaf * 24);
    let mut b = NetworkBuilder::new();
    b.label(format!("ranger({compute})"));
    let per_core = n_leaf * 6;
    let mut cores: Vec<Director> = (0..2)
        .map(|i| Director::new(&mut b, &format!("magnum{i}"), per_core, 12, 12, true))
        .collect();
    let leaves: Vec<_> = (0..n_leaf)
        .map(|i| {
            let s = b.add_switch(format!("leaf{i}"), 36);
            b.set_level(s, 0);
            s
        })
        .collect();
    for &leaf in &leaves {
        for core in cores.iter_mut() {
            for _ in 0..6 {
                core.attach(&mut b, leaf);
            }
        }
    }
    fill_compute(&mut b, &leaves, compute, "ranger");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build_at_small_scale() {
        for sys in RealSystem::ALL {
            let net = sys.build(0.1);
            assert!(net.num_terminals() > 0, "{}", sys.name());
            assert!(
                net.is_strongly_connected(),
                "{} must be connected",
                sys.name()
            );
            net.validate().unwrap();
        }
    }

    #[test]
    fn full_scale_endpoint_counts() {
        // Cheap systems at full scale; big ones at scale 1.0 are covered
        // by the repro harness.
        let odin = RealSystem::Odin.build(1.0);
        assert_eq!(odin.num_terminals(), 128);
        let deimos = RealSystem::Deimos.build(1.0);
        assert_eq!(deimos.num_terminals(), 724);
        let chic = RealSystem::Chic.build(1.0);
        assert_eq!(chic.num_terminals(), 550);
    }

    #[test]
    fn deimos_has_three_directors_with_bridges() {
        let net = RealSystem::Deimos.build(1.0);
        // 3 directors x (24 leaf chips + spines); endpoint + bridge ports
        // are all on leaf chips.
        assert!(net.num_switches() >= 3 * 24);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    fn chic_service_nodes_are_dual_attached() {
        let net = RealSystem::Chic.build(1.0);
        let dual = net
            .terminals()
            .iter()
            .filter(|&&t| net.out_channels(t).len() == 2)
            .count();
        assert_eq!(dual, 8);
    }

    #[test]
    fn odin_is_single_director() {
        let net = RealSystem::Odin.build(1.0);
        // 12 leaf chips + spines, nothing else.
        assert!(net.num_switches() <= 20);
        assert_eq!(net.diameter(), Some(4)); // t-leaf-spine-leaf-t
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        RealSystem::Odin.build(0.0);
    }
}
