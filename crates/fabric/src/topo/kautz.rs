//! Kautz-graph topologies (Fig 6 of the paper).
//!
//! The switches form the Kautz graph `K(b, n)`: vertices are strings
//! `s_0 s_1 … s_n` over an alphabet of `b+1` symbols with `s_i ≠ s_(i+1)`,
//! and there is an edge `s_0…s_n → s_1…s_n x` for every `x ≠ s_n`. This
//! gives `(b+1)·b^n` switches of in/out degree `b` and the smallest known
//! diameter (`n+1`) for the size. Endpoints are distributed round-robin
//! across the switches, as in the paper ("the switches build the Kautz
//! graph and endpoints are connected to them").

use super::attach_terminals;
use crate::{Network, NetworkBuilder};

/// Number of switches of `K(b, n)`: `(b+1) * b^n`.
pub fn kautz_num_switches(b: usize, n: usize) -> usize {
    (b + 1) * b.pow(n as u32)
}

/// Build a Kautz network `K(b, n)` with `terminals` endpoints.
///
/// With `bidirectional = true` (the realistic InfiniBand cabling the
/// paper's simulations assume) each Kautz edge becomes a bidirectional
/// cable; edge pairs `{u→v, v→u}` that both occur in the digraph are
/// merged into a single cable. With `false`, the classical unidirectional
/// Kautz digraph is built (plus bidirectional terminal attachments).
pub fn kautz(b: usize, n: usize, terminals: usize, bidirectional: bool) -> Network {
    assert!(b >= 2, "Kautz degree must be >= 2");
    assert!(n >= 1, "Kautz string length must be >= 1");
    let num = kautz_num_switches(b, n);

    // Enumerate vertices as digit strings. A vertex is numbered by its
    // first symbol (b+1 choices) followed by n "offsets" in 0..b, where
    // offset o at position i encodes the o-th symbol != s_(i-1).
    let string_of = |mut idx: usize| -> Vec<u8> {
        let mut s = Vec::with_capacity(n + 1);
        let mut rem = idx % b.pow(n as u32);
        idx /= b.pow(n as u32);
        s.push(idx as u8); // first symbol 0..=b
        for i in 0..n {
            let shift = (n - 1 - i) as u32;
            let o = (rem / b.pow(shift)) as u8;
            rem %= b.pow(shift);
            let prev = s[i];
            // o-th symbol of {0..=b} \ {prev}
            let sym = if o < prev { o } else { o + 1 };
            s.push(sym);
        }
        s
    };
    let index_of = |s: &[u8]| -> usize {
        let mut idx = s[0] as usize;
        for i in 1..=n {
            let prev = s[i - 1];
            let sym = s[i];
            let o = if sym < prev { sym } else { sym - 1 } as usize;
            idx = idx * b + o;
        }
        idx
    };

    // Degree: b in + b out; bidirectional merging can make the physical
    // degree up to 2b cables. Terminals round-robin.
    let t_base = terminals / num;
    let t_extra = terminals % num;
    let radix = (2 * b + t_base + usize::from(t_extra > 0)) as u16;

    let mut bld = NetworkBuilder::new();
    bld.label(format!("kautz({b},{n};{terminals})"));
    let switches: Vec<_> = (0..num)
        .map(|i| bld.add_switch(format!("s{i}"), radix))
        .collect();

    let mut cabled = rustc_hash::FxHashSet::default();
    for u in 0..num {
        let s = string_of(u);
        for x in 0..=(b as u8) {
            if x == s[n] {
                continue;
            }
            let mut t = s[1..].to_vec();
            t.push(x);
            let v = index_of(&t);
            debug_assert_eq!(string_of(v), t);
            if bidirectional {
                if cabled.insert((u.min(v), u.max(v))) {
                    bld.link(switches[u], switches[v]).unwrap();
                }
            } else {
                bld.add_channel(switches[u], switches[v]).unwrap();
            }
        }
    }
    let mut tid = 0;
    for (i, &s) in switches.iter().enumerate() {
        let share = t_base + usize::from(i < t_extra);
        attach_terminals(&mut bld, s, share, &mut tid);
    }
    bld.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_count_formula() {
        assert_eq!(kautz_num_switches(2, 2), 12);
        assert_eq!(kautz_num_switches(2, 3), 24);
        assert_eq!(kautz_num_switches(3, 3), 108);
    }

    #[test]
    fn directed_kautz_has_degree_b() {
        let net = kautz(2, 2, 0, false);
        assert_eq!(net.num_switches(), 12);
        for &s in net.switches() {
            assert_eq!(net.out_channels(s).len(), 2);
            assert_eq!(net.in_channels(s).len(), 2);
        }
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    fn directed_kautz_diameter_is_n_plus_one() {
        let net = kautz(2, 2, 0, false);
        assert_eq!(net.diameter(), Some(3));
        let net = kautz(3, 2, 0, false);
        assert_eq!(net.diameter(), Some(3));
    }

    #[test]
    fn bidirectional_kautz_is_connected_and_valid() {
        let net = kautz(2, 2, 24, true);
        assert_eq!(net.num_switches(), 12);
        assert_eq!(net.num_terminals(), 24);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
        // Every inter-switch channel has a reverse in bidirectional mode.
        for (_, c) in net.channels() {
            assert!(c.rev.is_some());
        }
    }

    #[test]
    fn terminals_distributed_round_robin() {
        let net = kautz(2, 2, 14, true);
        // 12 switches, 14 terminals: two switches get 2, rest get 1.
        let mut counts = vec![0usize; net.num_switches()];
        for &t in net.terminals() {
            let sw = net.channel(net.out_channels(t)[0]).dst;
            counts[net.switch_index(sw).unwrap()] += 1;
        }
        assert_eq!(counts.iter().filter(|&&c| c == 2).count(), 2);
        assert_eq!(counts.iter().filter(|&&c| c == 1).count(), 10);
    }

    #[test]
    fn vertex_numbering_round_trips() {
        // implicit via debug_assert in kautz(); also exercise larger b/n.
        let net = kautz(3, 3, 0, false);
        assert_eq!(net.num_switches(), 108);
        net.validate().unwrap();
    }
}
