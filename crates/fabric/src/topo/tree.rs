//! Tree topologies: k-ary n-trees, extended generalized fat trees (XGFT)
//! and two-level folded-Clos helpers.

use super::attach_terminals;
use crate::graph::NodeId;
use crate::{Network, NetworkBuilder};

/// A k-ary n-tree (Petrini & Vanneschi): `k^n` terminals, `n * k^(n-1)`
/// switches in `n` levels, radix `2k`.
///
/// Switch `<w, l>` (level `w`, label `l ∈ {0..k-1}^(n-1)`) connects to
/// switch `<w+1, l'>` iff `l` and `l'` agree on every digit except digit
/// `w`. Terminals `p ∈ {0..k-1}^n` attach to `<n-1, p_0..p_(n-2)>`.
/// `Node::level` stores `n-1-w` so leaves are level 0.
pub fn kary_ntree(k: usize, n: usize) -> Network {
    assert!(k >= 2 && n >= 1, "need k >= 2 and n >= 1");
    let labels = k.pow((n - 1) as u32);
    let mut b = NetworkBuilder::new();
    b.label(format!("{k}-ary {n}-tree"));
    // switches[w][l]
    let mut switches: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for w in 0..n {
        let mut level = Vec::with_capacity(labels);
        for l in 0..labels {
            let s = b.add_switch(format!("s{w}_{l}"), (2 * k) as u16);
            b.set_level(s, (n - 1 - w) as u8);
            level.push(s);
        }
        switches.push(level);
    }
    // Digits of label l in base k, most significant first (n-1 digits).
    let digits = |mut l: usize| -> Vec<usize> {
        let mut d = vec![0usize; n - 1];
        for i in (0..n - 1).rev() {
            d[i] = l % k;
            l /= k;
        }
        d
    };
    let label_of = |d: &[usize]| -> usize { d.iter().fold(0, |acc, &x| acc * k + x) };

    for w in 0..n.saturating_sub(1) {
        for l in 0..labels {
            let d = digits(l);
            // Partners agree on every digit except digit w, which is free
            // (equality included), giving k partners per switch.
            for v in 0..k {
                let mut dd = d.clone();
                dd[w] = v;
                let l2 = label_of(&dd);
                // Link each (w,l)-(w+1,l2) pair exactly once.
                b.link(switches[w][l], switches[w + 1][l2]).unwrap();
            }
        }
    }
    // Terminals: p = (p_0..p_(n-1)); attach to leaf <n-1, p_0..p_(n-2)>.
    let mut tid = 0;
    for &leaf in &switches[n - 1] {
        attach_terminals(&mut b, leaf, k, &mut tid);
    }
    b.build()
}

/// An extended generalized fat tree `XGFT(h; m_1..m_h; w_1..w_h)`
/// (Öhring et al.): recursively, `XGFT(0)` is a single terminal, and
/// `XGFT(h)` consists of `m_h` copies of `XGFT(h-1)` plus
/// `w_h * R_(h-1)` new root switches (`R_(h-1)` = roots of the sub-tree),
/// where new root `(j, q)` connects to root `j` of every copy.
///
/// Terminal count is `m_1 * ... * m_h`; root count is `w_1 * ... * w_h`.
/// `Node::level` stores the tree level (terminals 0, top roots `h`).
pub fn xgft(h: usize, m: &[usize], w: &[usize]) -> Network {
    assert_eq!(m.len(), h, "need h child counts");
    assert_eq!(w.len(), h, "need h parent counts");
    assert!(h >= 1, "height must be >= 1");
    assert!(m.iter().all(|&x| x >= 1) && w.iter().all(|&x| x >= 1));
    let mut b = NetworkBuilder::new();
    b.label(format!(
        "xgft({h};{};{})",
        m.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(","),
        w.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(","),
    ));
    let mut tid = 0usize;
    let mut sid = 0usize;
    let roots = build_xgft(&mut b, h, m, w, &mut tid, &mut sid);
    let expect_roots: usize = w.iter().product();
    debug_assert_eq!(roots.len(), expect_roots);
    b.build()
}

fn build_xgft(
    b: &mut NetworkBuilder,
    h: usize,
    m: &[usize],
    w: &[usize],
    tid: &mut usize,
    sid: &mut usize,
) -> Vec<NodeId> {
    if h == 0 {
        // A terminal needs one port per level-1 parent (w_1 of them).
        let ports = (w[0] as u16).max(1);
        let t = b.add_node(
            crate::graph::NodeKind::Terminal,
            format!("t{}", *tid),
            ports,
        );
        b.set_level(t, 0);
        *tid += 1;
        return vec![t];
    }
    let mh = m[h - 1];
    let wh = w[h - 1];
    let mut sub_roots: Vec<Vec<NodeId>> = Vec::with_capacity(mh);
    for _ in 0..mh {
        sub_roots.push(build_xgft(b, h - 1, m, w, tid, sid));
    }
    let r_prev = sub_roots[0].len();
    // Radix: mh children below, and (if not topmost in the recursion this
    // is unknown) parents above. Use a safe bound: mh + w[h] if exists.
    let up = if h < m.len() { w[h] } else { 0 };
    let mut roots = Vec::with_capacity(r_prev * wh);
    for j in 0..r_prev {
        for _q in 0..wh {
            let s = b.add_switch(format!("s{}", *sid), (mh + up) as u16);
            *sid += 1;
            b.set_level(s, h as u8);
            for copy in sub_roots.iter() {
                b.link(s, copy[j]).unwrap();
            }
            roots.push(s);
        }
    }
    roots
}

/// A two-level folded Clos (leaf/spine): `n_leaf` leaf switches with
/// `down` terminal ports and `up` uplinks each, distributed round-robin
/// over `n_spine` spine switches. Helper for real-world reconstructions.
///
/// Returns the network and the leaf switch ids. `terminals` endpoints are
/// distributed as evenly as possible across leaves.
pub fn clos2(terminals: usize, n_leaf: usize, down: usize, up: usize, n_spine: usize) -> Network {
    let (net, _) = clos2_into(terminals, n_leaf, down, up, n_spine);
    net
}

/// [`clos2`], additionally returning the leaf switch ids.
pub fn clos2_into(
    terminals: usize,
    n_leaf: usize,
    down: usize,
    up: usize,
    n_spine: usize,
) -> (Network, Vec<NodeId>) {
    assert!(terminals <= n_leaf * down, "not enough leaf down ports");
    assert!(n_spine >= 1 && up >= 1);
    let spine_radix = (n_leaf * up).div_ceil(n_spine);
    let mut b = NetworkBuilder::new();
    b.label(format!("clos2({terminals};{n_leaf}x{down}+{up};{n_spine})"));
    let leaves: Vec<_> = (0..n_leaf)
        .map(|i| {
            let s = b.add_switch(format!("leaf{i}"), (down + up) as u16);
            b.set_level(s, 0);
            s
        })
        .collect();
    let spines: Vec<_> = (0..n_spine)
        .map(|i| {
            let s = b.add_switch(format!("spine{i}"), spine_radix as u16);
            b.set_level(s, 1);
            s
        })
        .collect();
    let mut spin = 0usize;
    for &leaf in &leaves {
        for _ in 0..up {
            b.link(leaf, spines[spin % n_spine]).unwrap();
            spin += 1;
        }
    }
    let mut tid = 0;
    for (i, &leaf) in leaves.iter().enumerate() {
        let share = terminals / n_leaf + usize::from(i < terminals % n_leaf);
        attach_terminals(&mut b, leaf, share, &mut tid);
    }
    (b.build(), leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kary_ntree_counts() {
        let net = kary_ntree(4, 2);
        assert_eq!(net.num_terminals(), 16);
        assert_eq!(net.num_switches(), 2 * 4);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    fn kary_ntree_levels_and_radix() {
        let net = kary_ntree(4, 3);
        assert_eq!(net.num_terminals(), 64);
        assert_eq!(net.num_switches(), 3 * 16);
        // Every leaf switch hosts exactly k terminals and k uplinks.
        for &s in net.switches() {
            let lvl = net.node(s).level.unwrap();
            let deg = net.out_channels(s).len();
            match lvl {
                0 | 1 => assert_eq!(deg, 8, "middle/leaf switches use 2k ports"),
                2 => assert_eq!(deg, 4, "roots have k downlinks"),
                _ => panic!("unexpected level"),
            }
        }
        net.validate().unwrap();
    }

    #[test]
    fn kary_ntree_diameter() {
        // Worst case: up to the roots and back down, plus terminal hops.
        let net = kary_ntree(2, 3);
        assert_eq!(net.num_terminals(), 8);
        // terminal + (n-1) up + (n-1) down + terminal = 2(n-1) + 2.
        assert_eq!(net.diameter(), Some(6));
    }

    #[test]
    fn xgft_counts() {
        // XGFT(2; 4,4; 2,2): 16 terminals, 4 level-1 switches... level-1:
        // m2=4 copies of XGFT(1;4;2); each copy has w1=2 roots -> 8 level-1
        // switches; level-2 roots: w1*w2=4, each connecting to root j of
        // every copy.
        let net = xgft(2, &[4, 4], &[2, 2]);
        assert_eq!(net.num_terminals(), 16);
        assert_eq!(net.num_switches(), 8 + 4);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    fn xgft_height_one_is_star_like() {
        let net = xgft(1, &[8], &[3]);
        assert_eq!(net.num_terminals(), 8);
        assert_eq!(net.num_switches(), 3);
        // Every terminal is attached to all 3 roots.
        for &t in net.terminals() {
            assert_eq!(net.out_channels(t).len(), 3);
        }
        net.validate().unwrap();
    }

    #[test]
    fn xgft_terminal_count_is_product_of_m() {
        let net = xgft(3, &[4, 3, 2], &[2, 2, 2]);
        assert_eq!(net.num_terminals(), 4 * 3 * 2);
        net.validate().unwrap();
    }

    #[test]
    fn clos2_distributes_uplinks() {
        let (net, leaves) = clos2_into(24, 4, 6, 4, 2);
        assert_eq!(net.num_terminals(), 24);
        assert_eq!(net.num_switches(), 6);
        for &leaf in &leaves {
            let ups = net
                .out_channels(leaf)
                .iter()
                .filter(|&&c| net.is_switch(net.channel(c).dst))
                .count();
            assert_eq!(ups, 4);
        }
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "not enough leaf down ports")]
    fn clos2_rejects_overload() {
        clos2(100, 4, 6, 4, 2);
    }
}
