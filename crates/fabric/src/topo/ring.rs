//! Ring, star and fully-connected topologies.

use super::attach_terminals;
use crate::{Network, NetworkBuilder};

/// A ring of `n_switches` switches with `terminals_per_switch` endpoints
/// each. The paper's Figure 2 uses a 5-switch ring to show that plain SSSP
/// routing deadlocks.
///
/// # Panics
/// Panics if `n_switches < 3` (a 2-ring would be a doubled link).
pub fn ring(n_switches: usize, terminals_per_switch: usize) -> Network {
    assert!(n_switches >= 3, "ring needs at least 3 switches");
    let radix = (2 + terminals_per_switch) as u16;
    let mut b = NetworkBuilder::new();
    b.label(format!("ring({n_switches},{terminals_per_switch})"));
    let switches: Vec<_> = (0..n_switches)
        .map(|i| b.add_switch(format!("s{i}"), radix))
        .collect();
    for i in 0..n_switches {
        b.link(switches[i], switches[(i + 1) % n_switches]).unwrap();
    }
    let mut tid = 0;
    for &s in &switches {
        attach_terminals(&mut b, s, terminals_per_switch, &mut tid);
    }
    b.build()
}

/// A single switch with `n_terminals` endpoints — the degenerate fat tree
/// the Odin system approximates (one 144-port switch).
pub fn star(n_terminals: usize) -> Network {
    let mut b = NetworkBuilder::new();
    b.label(format!("star({n_terminals})"));
    let s = b.add_switch("s0", n_terminals as u16);
    let mut tid = 0;
    attach_terminals(&mut b, s, n_terminals, &mut tid);
    b.build()
}

/// `n_switches` switches, every pair connected, `terminals_per_switch`
/// endpoints each. Dense reference topology for routing tests.
pub fn fully_connected(n_switches: usize, terminals_per_switch: usize) -> Network {
    let radix = (n_switches - 1 + terminals_per_switch) as u16;
    let mut b = NetworkBuilder::new();
    b.label(format!("full({n_switches},{terminals_per_switch})"));
    let switches: Vec<_> = (0..n_switches)
        .map(|i| b.add_switch(format!("s{i}"), radix))
        .collect();
    for i in 0..n_switches {
        for j in (i + 1)..n_switches {
            b.link(switches[i], switches[j]).unwrap();
        }
    }
    let mut tid = 0;
    for &s in &switches {
        attach_terminals(&mut b, s, terminals_per_switch, &mut tid);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_counts() {
        let net = ring(5, 1);
        assert_eq!(net.num_switches(), 5);
        assert_eq!(net.num_terminals(), 5);
        // 5 ring cables + 5 terminal cables, 2 channels each.
        assert_eq!(net.num_channels(), 20);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    fn ring_diameter() {
        // terminal -> switch -> 2 ring hops -> switch -> terminal
        assert_eq!(ring(5, 1).diameter(), Some(4));
        assert_eq!(ring(8, 1).diameter(), Some(6));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        ring(2, 1);
    }

    #[test]
    fn star_counts() {
        let net = star(16);
        assert_eq!(net.num_switches(), 1);
        assert_eq!(net.num_terminals(), 16);
        assert_eq!(net.diameter(), Some(2));
        net.validate().unwrap();
    }

    #[test]
    fn fully_connected_counts() {
        let net = fully_connected(4, 2);
        assert_eq!(net.num_switches(), 4);
        assert_eq!(net.num_terminals(), 8);
        // 6 switch-switch cables + 8 terminal cables.
        assert_eq!(net.num_cables(), 14);
        assert_eq!(net.diameter(), Some(3));
        net.validate().unwrap();
    }
}
