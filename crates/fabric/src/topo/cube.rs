//! k-ary n-cube family: meshes, tori and hypercubes.
//!
//! Switches carry coordinates so that dimension-order routing (the DOR
//! baseline from OpenSM) can operate on these networks.

use super::attach_terminals;
use crate::{Network, NetworkBuilder};

fn grid(dims: &[u16], terminals_per_switch: usize, wrap: bool) -> Network {
    assert!(!dims.is_empty(), "need at least one dimension");
    assert!(dims.iter().all(|&d| d >= 2), "dimension sizes must be >= 2");
    let n: usize = dims.iter().map(|&d| d as usize).product();
    let radix = (2 * dims.len() + terminals_per_switch) as u16;
    let mut b = NetworkBuilder::new();
    let kind = if wrap { "torus" } else { "mesh" };
    b.label(format!(
        "{kind}({},{terminals_per_switch})",
        dims.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x")
    ));

    // Index <-> coordinate in row-major order.
    let coord_of = |mut i: usize| -> Vec<u16> {
        let mut c = vec![0u16; dims.len()];
        for (d, &size) in dims.iter().enumerate().rev() {
            c[d] = (i % size as usize) as u16;
            i /= size as usize;
        }
        c
    };
    let index_of = |c: &[u16]| -> usize {
        let mut i = 0usize;
        for (d, &size) in dims.iter().enumerate() {
            i = i * size as usize + c[d] as usize;
        }
        i
    };

    let switches: Vec<_> = (0..n)
        .map(|i| {
            let s = b.add_switch(format!("s{i}"), radix);
            b.set_coord(s, coord_of(i));
            s
        })
        .collect();

    for i in 0..n {
        let c = coord_of(i);
        for d in 0..dims.len() {
            let size = dims[d] as usize;
            // +1 neighbor in dimension d.
            if (c[d] as usize) + 1 < size {
                let mut cc = c.clone();
                cc[d] += 1;
                b.link(switches[i], switches[index_of(&cc)]).unwrap();
            } else if wrap && size > 2 {
                // Wraparound link; for size 2 the +1 neighbor already is
                // the wrap partner, so adding it again would double it.
                let mut cc = c.clone();
                cc[d] = 0;
                b.link(switches[i], switches[index_of(&cc)]).unwrap();
            }
        }
    }
    let mut tid = 0;
    for &s in &switches {
        attach_terminals(&mut b, s, terminals_per_switch, &mut tid);
    }
    b.build()
}

/// An n-dimensional mesh with the given per-dimension sizes.
pub fn mesh(dims: &[u16], terminals_per_switch: usize) -> Network {
    grid(dims, terminals_per_switch, false)
}

/// An n-dimensional torus (k-ary n-cube) with the given per-dimension
/// sizes. Tori are the classical deadlock hazard for unrestricted minimal
/// routing (Dally & Seitz).
pub fn torus(dims: &[u16], terminals_per_switch: usize) -> Network {
    grid(dims, terminals_per_switch, true)
}

/// A binary hypercube of the given dimension.
pub fn hypercube(dim: u32, terminals_per_switch: usize) -> Network {
    assert!((1..=16).contains(&dim), "hypercube dimension out of range");
    let dims = vec![2u16; dim as usize];
    let mut net = grid(&dims, terminals_per_switch, false);
    net.set_label(format!("hypercube({dim},{terminals_per_switch})"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts_and_coords() {
        let net = mesh(&[3, 4], 1);
        assert_eq!(net.num_switches(), 12);
        assert_eq!(net.num_terminals(), 12);
        // Links: 2*4 (rows) ... per dimension: (3-1)*4 + 3*(4-1) = 8+9=17.
        assert_eq!(net.num_cables(), 17 + 12);
        let s0 = net.node_by_name("s0").unwrap();
        assert_eq!(net.node(s0).coord.as_deref(), Some(&[0, 0][..]));
        let s11 = net.node_by_name("s11").unwrap();
        assert_eq!(net.node(s11).coord.as_deref(), Some(&[2, 3][..]));
        net.validate().unwrap();
    }

    #[test]
    fn torus_adds_wraparound() {
        let net = torus(&[4, 4], 1);
        // 2 links per switch per dimension / 2 = 32 switch cables.
        assert_eq!(net.num_cables(), 32 + 16);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
    }

    #[test]
    fn torus_size_two_has_single_links() {
        // In a 2-extent dimension, +1 and wrap are the same neighbor; make
        // sure we do not create parallel cables.
        let net = torus(&[2, 2], 0);
        assert_eq!(net.num_cables(), 4);
        net.validate().unwrap();
    }

    #[test]
    fn torus_diameter_is_half_extent() {
        let net = torus(&[6], 0);
        assert_eq!(net.diameter(), Some(3));
        let net = mesh(&[6], 0);
        assert_eq!(net.diameter(), Some(5));
    }

    #[test]
    fn hypercube_counts() {
        let net = hypercube(4, 1);
        assert_eq!(net.num_switches(), 16);
        assert_eq!(net.num_cables(), 16 * 4 / 2 + 16);
        // terminal-switch-(4 hops)-switch-terminal
        assert_eq!(net.diameter(), Some(6));
        net.validate().unwrap();
    }
}
