//! Dragonfly topology (Kim et al.) — not part of the paper's evaluation,
//! but a modern "arbitrary topology" the DFSSSP claim must also cover.

use super::attach_terminals;
use crate::{Network, NetworkBuilder};

/// A canonical dragonfly `(a, p, h)`: groups of `a` switches, each switch
/// with `p` terminals and `h` global links; switches within a group are
/// fully connected; `g = a*h + 1` groups are connected by exactly one
/// global cable per group pair, distributed round-robin over the switches
/// of each group.
pub fn dragonfly(a: usize, p: usize, h: usize) -> Network {
    assert!(a >= 2 && h >= 1, "need a >= 2, h >= 1");
    let g = a * h + 1;
    let radix = (a - 1 + p + h) as u16;
    let mut b = NetworkBuilder::new();
    b.label(format!("dragonfly(a{a},p{p},h{h})"));

    let mut groups = Vec::with_capacity(g);
    for gi in 0..g {
        let switches: Vec<_> = (0..a)
            .map(|si| b.add_switch(format!("g{gi}s{si}"), radix))
            .collect();
        for i in 0..a {
            for j in (i + 1)..a {
                b.link(switches[i], switches[j]).unwrap();
            }
        }
        groups.push(switches);
    }
    // Global links: group pair (x, y), x < y, uses the k-th global port
    // where k enumerates that pair from each side. Standard round-robin:
    // pair index within x's list of peers determines which switch hosts it.
    for x in 0..g {
        for y in (x + 1)..g {
            // Peer index of y from x's perspective (skipping x itself),
            // and of x from y's perspective.
            let ix = y - 1; // y's rank among 0..g without x, for y > x
            let iy = x; // x's rank among 0..g without y, for x < y
            let sx = groups[x][(ix % (a * h)) / h];
            let sy = groups[y][(iy % (a * h)) / h];
            b.link(sx, sy).unwrap();
        }
    }
    let mut tid = 0;
    for group in &groups {
        for &s in group {
            attach_terminals(&mut b, s, p, &mut tid);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        let (a, p, h) = (4, 2, 2);
        let g = a * h + 1; // 9 groups
        let net = dragonfly(a, p, h);
        assert_eq!(net.num_switches(), g * a);
        assert_eq!(net.num_terminals(), g * a * p);
        // Cables: intra-group a*(a-1)/2 per group + one per group pair +
        // terminals.
        let intra = g * a * (a - 1) / 2;
        let global = g * (g - 1) / 2;
        assert_eq!(net.num_cables(), intra + global + g * a * p);
        net.validate().unwrap();
    }

    #[test]
    fn global_links_fit_port_budget() {
        // Every switch hosts at most h global links.
        let net = dragonfly(4, 2, 2);
        for &s in net.switches() {
            let deg = net.out_channels(s).len();
            assert!(deg <= 4 - 1 + 2 + 2);
        }
    }

    #[test]
    fn connected_and_small_diameter() {
        let net = dragonfly(4, 1, 1);
        assert!(net.is_strongly_connected());
        // terminal + local + global + local + terminal = 5 hops worst case.
        assert!(net.diameter().unwrap() <= 6);
    }
}
