//! Reverse index from channels to the destination trees that use them.
//!
//! Forwarding tables ([`crate::Routes`]) are column-oriented: one
//! next-hop entry per `(node, destination)`. Incremental rerouting needs
//! the opposite direction — *which destinations' shortest-path trees
//! carry a given channel* — so a failed cable can be mapped to the
//! exact set of destination columns it invalidates without scanning the
//! whole table. The index lives alongside the CSR adjacency: both are
//! flat, derived views rebuilt from the source of truth (the network /
//! the routes), never mutated in place.

use crate::graph::{ChannelId, Network};
use crate::tables::Routes;

/// For every channel, the ascending list of destination terminal
/// indices whose next-hop column routes over it.
///
/// Because a channel has a unique source node and a column holds at
/// most one entry per node, a destination appears at most once in a
/// channel's list; lists come out ascending by construction (columns
/// are scanned in destination order). Stored as flat CSR — a handful
/// of allocations regardless of channel count, so translating an index
/// on the reroute critical path never hits the allocator per channel.
/// The CSR is *loose*: `off` bounds each channel's capacity while `len`
/// holds its populated prefix, so an incremental update can remove and
/// append entries in place without recompacting the whole array.
#[derive(Clone, Debug, Default)]
pub struct ReverseIndex {
    /// `off[c] .. off[c + 1]` bounds channel `c`'s slice of `dests`.
    off: Vec<u32>,
    /// Populated prefix length of channel `c`'s slice.
    len: Vec<u32>,
    /// Destination terminal indices, concatenated channel-major.
    dests: Vec<u32>,
}

impl ReverseIndex {
    /// Build the index for `routes` over `net`. O(|N| · |T|) — two
    /// passes over the table entries (count, then fill).
    pub fn build(net: &Network, routes: &Routes) -> ReverseIndex {
        let n = net.num_channels();
        let mut off = vec![0u32; n + 1];
        for dst_t in 0..net.num_terminals() {
            for (id, _) in net.nodes() {
                if let Some(c) = routes.next_hop(id, dst_t) {
                    if c.idx() < n {
                        off[c.idx() + 1] += 1;
                    }
                }
            }
        }
        for i in 1..off.len() {
            off[i] += off[i - 1];
        }
        let mut cursor: Vec<u32> = off[..n].to_vec();
        let mut dests = vec![0u32; off[n] as usize];
        for dst_t in 0..net.num_terminals() {
            for (id, _) in net.nodes() {
                if let Some(c) = routes.next_hop(id, dst_t) {
                    if c.idx() < n {
                        let slot = &mut cursor[c.idx()];
                        dests[*slot as usize] = dst_t as u32;
                        *slot += 1;
                    }
                }
            }
        }
        let len = (0..n).map(|c| off[c + 1] - off[c]).collect();
        ReverseIndex { off, len, dests }
    }

    /// Assemble an index from an already-built loose CSR. Incremental
    /// reroute translates the previous epoch's index instead of
    /// re-scanning the whole table; each channel's populated prefix
    /// must be ascending and duplicate-free, exactly as
    /// [`ReverseIndex::build`] produces. Slack between `len[c]` and the
    /// capacity `off[c + 1] - off[c]` is ignored.
    pub fn from_loose_csr(off: Vec<u32>, len: Vec<u32>, dests: Vec<u32>) -> ReverseIndex {
        debug_assert_eq!(off.first().copied().unwrap_or(0), 0);
        debug_assert_eq!(off.len(), len.len() + 1);
        debug_assert_eq!(off.last().copied().unwrap_or(0) as usize, dests.len());
        debug_assert!(off.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..len.len()).all(|c| {
            len[c] <= off[c + 1] - off[c]
                && dests[off[c] as usize..(off[c] + len[c]) as usize]
                    .windows(2)
                    .all(|w| w[0] < w[1])
        }));
        ReverseIndex { off, len, dests }
    }

    /// Destination terminal indices whose tree uses channel `c`
    /// (ascending, duplicate-free). Empty for out-of-range ids.
    pub fn dests_of(&self, c: ChannelId) -> &[u32] {
        match (self.off.get(c.idx()), self.len.get(c.idx())) {
            (Some(&lo), Some(&n)) => &self.dests[lo as usize..(lo + n) as usize],
            _ => &[],
        }
    }

    /// Number of channels the index covers.
    pub fn num_channels(&self) -> usize {
        self.len.len()
    }

    /// Total `(channel, destination)` incidences — diagnostic; equals
    /// the number of populated table entries.
    pub fn total_incidences(&self) -> usize {
        self.len.iter().map(|&n| n as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    /// A ReverseIndex must agree with a brute-force scan of the tables.
    #[test]
    fn index_matches_table_scan() {
        let net = topo::torus(&[3, 3], 1);
        // Tables via plain BFS-ish fill: reuse Routes from format-free
        // construction is overkill here; drive a tiny SSSP by hand using
        // hops_to parents is enough — but simplest is to build Routes
        // directly from each destination's hop gradients.
        let mut routes = Routes::new(&net, "test");
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let hops = net.hops_to(dst);
            for (id, _) in net.nodes() {
                if id == dst || hops[id.idx()] == u32::MAX {
                    continue;
                }
                // First out-channel strictly descending the gradient.
                let c = net
                    .out_channels(id)
                    .iter()
                    .copied()
                    .find(|&c| hops[net.channel(c).dst.idx()] + 1 == hops[id.idx()]);
                if let Some(c) = c {
                    routes.set_next(id, dst_t, c);
                }
            }
        }
        let idx = ReverseIndex::build(&net, &routes);
        assert_eq!(idx.num_channels(), net.num_channels());
        let mut incidences = 0usize;
        for (c, _) in net.channels() {
            let list = idx.dests_of(c);
            incidences += list.len();
            // Ascending and duplicate-free.
            assert!(list.windows(2).all(|w| w[0] < w[1]));
            for &dst_t in list {
                let hit = net
                    .nodes()
                    .any(|(id, _)| routes.next_hop(id, dst_t as usize) == Some(c));
                assert!(hit, "indexed dest {dst_t} does not use {c:?}");
            }
        }
        // Every populated entry is indexed.
        let mut entries = 0usize;
        for dst_t in 0..net.num_terminals() {
            for (id, _) in net.nodes() {
                if routes.next_hop(id, dst_t).is_some() {
                    entries += 1;
                }
            }
        }
        assert_eq!(incidences, entries);
        assert_eq!(idx.total_incidences(), entries);
    }

    #[test]
    fn empty_routes_index_is_empty() {
        let net = topo::ring(4, 1);
        let routes = Routes::new(&net, "none");
        let idx = ReverseIndex::build(&net, &routes);
        assert_eq!(idx.total_incidences(), 0);
        for (c, _) in net.channels() {
            assert!(idx.dests_of(c).is_empty());
        }
    }
}
