//! Forwarding tables and virtual-layer assignment.
//!
//! A [`Routes`] value is what every routing engine produces and what the
//! simulators consume: destination-based next-hop channels (the InfiniBand
//! linear forwarding table, lifted from ports to channels) plus the virtual
//! layer each terminal-to-terminal path is assigned to (InfiniBand: the
//! service level / virtual lane of the path record).

use crate::graph::{ChannelId, Network, NodeId, NONE_U32};
use serde::{Deserialize, Serialize};

/// Errors raised when constructing or querying [`Routes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutesError {
    /// A next-hop walk exceeded the hop budget — the tables contain a loop.
    ForwardingLoop { src: NodeId, dst: NodeId },
    /// No next hop programmed for this (node, destination) pair.
    MissingEntry { node: NodeId, dst: NodeId },
    /// Destination must be a terminal.
    NotATerminal(NodeId),
    /// Virtual layer out of range for the configured layer count.
    BadLayer { layer: u8, num_layers: u8 },
    /// Tables were built for a different network (node or terminal
    /// counts disagree), e.g. a stale or corrupt artifact.
    NetworkMismatch { nodes: usize, net_nodes: usize },
    /// A table entry names a channel the network does not have.
    BadChannel { node: NodeId, channel: u32 },
}

impl std::fmt::Display for RoutesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutesError::ForwardingLoop { src, dst } => {
                write!(f, "forwarding loop on route {src:?} -> {dst:?}")
            }
            RoutesError::MissingEntry { node, dst } => {
                write!(f, "no next hop at {node:?} toward {dst:?}")
            }
            RoutesError::NotATerminal(n) => write!(f, "{n:?} is not a terminal"),
            RoutesError::BadLayer { layer, num_layers } => {
                write!(f, "virtual layer {layer} >= layer count {num_layers}")
            }
            RoutesError::NetworkMismatch { nodes, net_nodes } => {
                write!(
                    f,
                    "tables sized for {nodes} nodes but the network has {net_nodes}"
                )
            }
            RoutesError::BadChannel { node, channel } => {
                write!(f, "table entry at {node:?} names missing channel {channel}")
            }
        }
    }
}

impl std::error::Error for RoutesError {}

/// Destination-based forwarding tables plus per-path virtual layers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routes {
    /// `next[node][t]` = channel to take at `node` toward terminal index
    /// `t`, or `u32::MAX` when unset (at the destination itself, or for
    /// unreachable pairs).
    next: Vec<Vec<u32>>,
    /// `vl[src_t * num_terminals + dst_t]` = virtual layer of that path.
    vl: Vec<u8>,
    /// Number of virtual layers in use (`max(vl) + 1`).
    num_layers: u8,
    num_terminals: usize,
    /// Engine name that produced these tables (for reports).
    engine: String,
}

impl Routes {
    /// Fresh tables for `net` with no entries and a single virtual layer.
    pub fn new(net: &Network, engine: impl Into<String>) -> Self {
        let nt = net.num_terminals();
        Routes {
            next: vec![vec![NONE_U32; nt]; net.num_nodes()],
            vl: vec![0; nt * nt],
            num_layers: 1,
            num_terminals: nt,
            engine: engine.into(),
        }
    }

    /// Rebuild tables from their raw parts (the JSON reader). Shapes are
    /// validated — uniform `next` rows, a square `vl` matrix, layers in
    /// the representable range — and `num_layers` is recomputed, so no
    /// corrupt artifact can construct tables that panic later.
    pub(crate) fn from_raw(
        next: Vec<Vec<u32>>,
        vl: Vec<u8>,
        num_terminals: usize,
        engine: String,
    ) -> Result<Self, String> {
        for (i, row) in next.iter().enumerate() {
            if row.len() != num_terminals {
                return Err(format!(
                    "next[{i}] has {} entries, expected {num_terminals}",
                    row.len()
                ));
            }
        }
        let want = num_terminals
            .checked_mul(num_terminals)
            .ok_or("num_terminals overflows the vl matrix")?;
        if vl.len() != want {
            return Err(format!("vl has {} entries, expected {want}", vl.len()));
        }
        if vl.contains(&u8::MAX) {
            return Err(format!("virtual layer {} is not representable", u8::MAX));
        }
        let num_layers = vl.iter().copied().max().unwrap_or(0) + 1;
        Ok(Routes {
            next,
            vl,
            num_layers,
            num_terminals,
            engine,
        })
    }

    /// Name of the engine that produced these tables.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// Rebrand the tables (engines that post-process another engine's
    /// tables, like DFSSSP over SSSP, set their own name).
    pub fn set_engine(&mut self, engine: impl Into<String>) {
        self.engine = engine.into();
    }

    /// Number of virtual layers used by these routes.
    pub fn num_layers(&self) -> u8 {
        self.num_layers
    }

    /// Number of terminals the tables were sized for.
    pub fn num_terminals(&self) -> usize {
        self.num_terminals
    }

    /// Number of nodes the tables were sized for. Static checkers compare
    /// this against the network before indexing, so stale tables are
    /// reported instead of panicking.
    pub fn num_nodes(&self) -> usize {
        self.next.len()
    }

    /// Program the next hop at `node` toward terminal index `dst_t`.
    #[inline]
    pub fn set_next(&mut self, node: NodeId, dst_t: usize, channel: ChannelId) {
        self.next[node.idx()][dst_t] = channel.0;
    }

    /// Next-hop channel at `node` toward terminal index `dst_t`.
    #[inline]
    pub fn next_hop(&self, node: NodeId, dst_t: usize) -> Option<ChannelId> {
        match self.next[node.idx()][dst_t] {
            NONE_U32 => None,
            c => Some(ChannelId(c)),
        }
    }

    /// Erase the next hop at `node` toward terminal index `dst_t` (used by
    /// fault-injection tests and table scrubbing).
    #[inline]
    pub fn clear_next(&mut self, node: NodeId, dst_t: usize) {
        self.next[node.idx()][dst_t] = NONE_U32;
    }

    /// Assign the virtual layer for the path `src_t → dst_t`
    /// (terminal indices).
    #[inline]
    pub fn set_layer(&mut self, src_t: usize, dst_t: usize, layer: u8) {
        self.vl[src_t * self.num_terminals + dst_t] = layer;
        self.num_layers = self.num_layers.max(layer.saturating_add(1));
    }

    /// Virtual layer of the path `src_t → dst_t` (terminal indices).
    #[inline]
    pub fn layer(&self, src_t: usize, dst_t: usize) -> u8 {
        self.vl[src_t * self.num_terminals + dst_t]
    }

    /// Recompute `num_layers` from the stored assignment (used after bulk
    /// layer rewrites, e.g. the balancing step of Algorithm 2).
    pub fn recompute_num_layers(&mut self) {
        self.num_layers = self.vl.iter().copied().max().unwrap_or(0) + 1;
    }

    /// Bulk-copy the whole virtual-layer matrix from `other` (tables for
    /// the same terminal roster). Incremental reroute uses this when the
    /// layer assignment is provably unchanged between epochs: one memcpy
    /// instead of a per-pair rewrite.
    pub fn copy_layers_from(&mut self, other: &Routes) {
        assert_eq!(
            self.vl.len(),
            other.vl.len(),
            "layer matrices must have the same shape"
        );
        self.vl.copy_from_slice(&other.vl);
        self.num_layers = other.num_layers;
    }

    /// Copy every destination column *not* flagged in `dirty` from
    /// `other`, renaming each channel through `translate` (`None` = the
    /// channel no longer exists). One row-major pass over the tables —
    /// the cache-friendly direction. Returns `false` (tables partially
    /// written — discard them) when a populated clean entry fails to
    /// translate, which callers treat as a stale-cache signal.
    pub fn copy_clean_columns_translated(
        &mut self,
        other: &Routes,
        dirty: &[bool],
        translate: &[Option<ChannelId>],
    ) -> bool {
        for (row, orow) in self.next.iter_mut().zip(&other.next) {
            for (d, slot) in row.iter_mut().enumerate() {
                if dirty[d] {
                    continue;
                }
                let v = orow[d];
                if v == NONE_U32 {
                    continue;
                }
                match translate.get(v as usize).copied().flatten() {
                    Some(nc) => *slot = nc.0,
                    None => return false,
                }
            }
        }
        true
    }

    /// Iterate over the channels of the path from terminal `src` to
    /// terminal `dst` by walking the tables. Lazy; detects loops via a
    /// hop budget of `num_nodes + 1`.
    pub fn path<'a>(
        &'a self,
        net: &'a Network,
        src: NodeId,
        dst: NodeId,
    ) -> Result<PathIter<'a>, RoutesError> {
        if self.num_nodes() != net.num_nodes() || self.num_terminals != net.num_terminals() {
            return Err(RoutesError::NetworkMismatch {
                nodes: self.num_nodes(),
                net_nodes: net.num_nodes(),
            });
        }
        let dst_t = net
            .terminal_index(dst)
            .ok_or(RoutesError::NotATerminal(dst))?;
        if net.terminal_index(src).is_none() {
            return Err(RoutesError::NotATerminal(src));
        }
        Ok(PathIter {
            routes: self,
            net,
            at: src,
            src,
            dst,
            dst_t,
            budget: net.num_nodes() + 1,
        })
    }

    /// Collect the path `src → dst` into a channel vector, validating that
    /// it terminates at `dst`.
    pub fn path_channels(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Vec<ChannelId>, RoutesError> {
        let mut out = Vec::new();
        for step in self.path(net, src, dst)? {
            out.push(step?);
        }
        Ok(out)
    }

    /// Check that every ordered terminal pair is connected by a loop-free
    /// walk of the tables; returns the number of pairs checked.
    pub fn validate_connectivity(&self, net: &Network) -> Result<usize, RoutesError> {
        let mut pairs = 0;
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                for step in self.path(net, src, dst)? {
                    step?;
                }
                pairs += 1;
            }
        }
        Ok(pairs)
    }

    /// Number of routes crossing each channel, counting every ordered
    /// terminal pair once. This is the per-link load the paper's balancing
    /// optimizes; also used by the congestion simulator's reports.
    pub fn channel_loads(&self, net: &Network) -> Result<Vec<u32>, RoutesError> {
        let mut loads = vec![0u32; net.num_channels()];
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                for step in self.path(net, src, dst)? {
                    loads[step?.idx()] += 1;
                }
            }
        }
        Ok(loads)
    }

    /// Longest path length (hops) over all ordered terminal pairs.
    pub fn max_path_len(&self, net: &Network) -> Result<usize, RoutesError> {
        let mut max = 0;
        for &src in net.terminals() {
            for &dst in net.terminals() {
                if src == dst {
                    continue;
                }
                let len = self.path(net, src, dst)?.count();
                // count() consumed Results; re-walk to surface errors.
                let mut n = 0;
                for step in self.path(net, src, dst)? {
                    step?;
                    n += 1;
                }
                debug_assert_eq!(len, n);
                max = max.max(n);
            }
        }
        Ok(max)
    }
}

/// Lazy iterator over the channels of one route (see [`Routes::path`]).
pub struct PathIter<'a> {
    routes: &'a Routes,
    net: &'a Network,
    at: NodeId,
    src: NodeId,
    dst: NodeId,
    dst_t: usize,
    budget: usize,
}

impl<'a> Iterator for PathIter<'a> {
    type Item = Result<ChannelId, RoutesError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.at == self.dst {
            return None;
        }
        if self.budget == 0 {
            return Some(Err(RoutesError::ForwardingLoop {
                src: self.src,
                dst: self.dst,
            }));
        }
        self.budget -= 1;
        match self.routes.next_hop(self.at, self.dst_t) {
            None => Some(Err(RoutesError::MissingEntry {
                node: self.at,
                dst: self.dst,
            })),
            // Loaded artifacts can name channels this network does not
            // have; report instead of indexing out of bounds.
            Some(c) if c.idx() >= self.net.num_channels() => Some(Err(RoutesError::BadChannel {
                node: self.at,
                channel: c.0,
            })),
            Some(c) => {
                self.at = self.net.channel(c).dst;
                Some(Ok(c))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    /// t0 - s0 - s1 - t1, plus t2 on s1.
    fn line() -> Network {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 36);
        let s1 = b.add_switch("s1", 36);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        let t2 = b.add_terminal("t2");
        b.link(s0, s1).unwrap();
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        b.link(t2, s1).unwrap();
        b.build()
    }

    /// Program shortest-path tables on `line()` by BFS per destination.
    fn bfs_routes(net: &Network) -> Routes {
        let mut r = Routes::new(net, "bfs-test");
        for (dst_t, &dst) in net.terminals().iter().enumerate() {
            let hops = net.hops_to(dst);
            for (id, _) in net.nodes() {
                if id == dst || hops[id.idx()] == u32::MAX {
                    continue;
                }
                let best = net
                    .out_channels(id)
                    .iter()
                    .copied()
                    .min_by_key(|&c| hops[net.channel(c).dst.idx()])
                    .unwrap();
                r.set_next(id, dst_t, best);
            }
        }
        r
    }

    #[test]
    fn path_walks_tables() {
        let net = line();
        let r = bfs_routes(&net);
        let t0 = net.node_by_name("t0").unwrap();
        let t1 = net.node_by_name("t1").unwrap();
        let p = r.path_channels(&net, t0, t1).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(net.channel(p[0]).src, t0);
        assert_eq!(net.channel(p[2]).dst, t1);
        // consecutive channels chain
        for w in p.windows(2) {
            assert_eq!(net.channel(w[0]).dst, net.channel(w[1]).src);
        }
    }

    #[test]
    fn missing_entry_is_reported() {
        let net = line();
        let r = Routes::new(&net, "empty");
        let t0 = net.node_by_name("t0").unwrap();
        let t1 = net.node_by_name("t1").unwrap();
        let err = r.path_channels(&net, t0, t1).unwrap_err();
        assert!(matches!(err, RoutesError::MissingEntry { .. }));
    }

    #[test]
    fn loops_are_detected() {
        let net = line();
        let mut r = Routes::new(&net, "loopy");
        let s0 = net.node_by_name("s0").unwrap();
        let s1 = net.node_by_name("s1").unwrap();
        let t0 = net.node_by_name("t0").unwrap();
        let t1 = net.node_by_name("t1").unwrap();
        let t1_t = net.terminal_index(t1).unwrap();
        // t0 -> s0 -> s1 -> s0 -> ... never reaches t1.
        r.set_next(t0, t1_t, net.channel_between(t0, s0).unwrap());
        r.set_next(s0, t1_t, net.channel_between(s0, s1).unwrap());
        r.set_next(s1, t1_t, net.channel_between(s1, s0).unwrap());
        let err = r.path_channels(&net, t0, t1).unwrap_err();
        assert!(matches!(err, RoutesError::ForwardingLoop { .. }));
    }

    #[test]
    fn validate_connectivity_counts_pairs() {
        let net = line();
        let r = bfs_routes(&net);
        assert_eq!(r.validate_connectivity(&net).unwrap(), 3 * 2);
    }

    #[test]
    fn layers_default_to_zero_and_track_max() {
        let net = line();
        let mut r = bfs_routes(&net);
        assert_eq!(r.num_layers(), 1);
        assert_eq!(r.layer(0, 1), 0);
        r.set_layer(0, 1, 3);
        assert_eq!(r.num_layers(), 4);
        r.set_layer(0, 1, 0);
        r.recompute_num_layers();
        assert_eq!(r.num_layers(), 1);
    }

    #[test]
    fn channel_loads_count_every_pair() {
        let net = line();
        let r = bfs_routes(&net);
        let loads = r.channel_loads(&net).unwrap();
        let total: u32 = loads.iter().sum();
        // Sum over channels of load = sum over pairs of path length.
        // Paths: t0<->t1: 3 hops each way, t0<->t2: 3 each, t1<->t2: 2 each.
        assert_eq!(total, 3 + 3 + 3 + 3 + 2 + 2);
        let s0 = net.node_by_name("s0").unwrap();
        let s1 = net.node_by_name("s1").unwrap();
        let c = net.channel_between(s0, s1).unwrap();
        assert_eq!(loads[c.idx()], 2); // t0->t1 and t0->t2
    }

    #[test]
    fn stale_tables_are_reported_not_panicking() {
        let net = line();
        // Tables sized for a different network.
        let mut b = NetworkBuilder::new();
        let s = b.add_switch("s0", 4);
        let t = b.add_terminal("t0");
        b.link(s, t).unwrap();
        let other = b.build();
        let r = bfs_routes(&net);
        let t0 = other.node_by_name("t0").unwrap();
        let err = r.path(&other, t0, t0).err().unwrap();
        assert!(matches!(err, RoutesError::NetworkMismatch { .. }));

        // Tables naming a channel the network does not have.
        let nt = net.num_terminals();
        let next = vec![vec![999u32; nt]; net.num_nodes()];
        let r = Routes::from_raw(next, vec![0; nt * nt], nt, "corrupt".into()).unwrap();
        let t0 = net.node_by_name("t0").unwrap();
        let t1 = net.node_by_name("t1").unwrap();
        let err = r.path_channels(&net, t0, t1).unwrap_err();
        assert!(matches!(err, RoutesError::BadChannel { .. }));
    }

    #[test]
    fn from_raw_rejects_corrupt_shapes() {
        assert!(Routes::from_raw(vec![vec![0; 2]], vec![0; 3], 2, "x".into()).is_err());
        assert!(Routes::from_raw(vec![vec![0; 1]], vec![0; 4], 2, "x".into()).is_err());
        assert!(Routes::from_raw(vec![vec![0; 1]], vec![255], 1, "x".into()).is_err());
        let r = Routes::from_raw(vec![vec![0; 1]], vec![3], 1, "x".into()).unwrap();
        assert_eq!(r.num_layers(), 4);
    }

    #[test]
    fn bulk_copy_helpers_mirror_per_entry_writes() {
        let net = line();
        let mut src = bfs_routes(&net);
        src.set_layer(0, 1, 2);
        src.set_layer(2, 0, 1);

        // Identity translation, nothing dirty: a verbatim copy.
        let ident: Vec<Option<ChannelId>> =
            (0..net.num_channels() as u32).map(|c| Some(ChannelId(c))).collect();
        let dirty = vec![false; net.num_terminals()];
        let mut out = Routes::new(&net, "copy");
        assert!(out.copy_clean_columns_translated(&src, &dirty, &ident));
        assert_eq!(out.next, src.next);
        out.copy_layers_from(&src);
        assert_eq!(out.vl, src.vl);
        assert_eq!(out.num_layers(), src.num_layers());

        // Dirty columns are left untouched.
        let mut masked = Routes::new(&net, "masked");
        let mut dirty0 = dirty.clone();
        dirty0[0] = true;
        assert!(masked.copy_clean_columns_translated(&src, &dirty0, &ident));
        for (id, _) in net.nodes() {
            assert_eq!(masked.next_hop(id, 0), None);
            assert_eq!(masked.next_hop(id, 1), src.next_hop(id, 1));
        }

        // An untranslatable clean entry aborts the copy.
        let none: Vec<Option<ChannelId>> = vec![None; net.num_channels()];
        let mut broken = Routes::new(&net, "broken");
        assert!(!broken.copy_clean_columns_translated(&src, &dirty, &none));
    }

    #[test]
    fn max_path_len_is_diameter_bound() {
        let net = line();
        let r = bfs_routes(&net);
        assert_eq!(r.max_path_len(&net).unwrap(), 3);
    }
}
