//! A minimal human-editable cabling format.
//!
//! ```text
//! # comment
//! switch s0 ports=36
//! switch s1 ports=36 coord=0,1 level=2
//! terminal t0
//! link s0 t0          # bidirectional cable, ports auto-assigned
//! channel s0 s1       # unidirectional channel
//! ```
//!
//! The parser treats its input as untrusted: every rejection is a typed
//! [`ParseError`] with line (and, where known, column) information, and
//! [`parse_network_with`] enforces [`FormatLimits`] so a hostile stream
//! cannot panic or OOM the loader.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::error::{clip, column_of, FormatLimits, ParseError, ParseErrorKind};
use crate::{Network, NetworkBuilder, NodeId};
use rustc_hash::FxHashMap;
use std::fmt::Write as _;

fn err(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError::new(line, kind)
}

/// Parse a network from the text format with default [`FormatLimits`].
pub fn parse_network(input: &str) -> Result<Network, ParseError> {
    parse_network_with(input, &FormatLimits::default())
}

/// Parse a network from the text format, enforcing `limits`.
pub fn parse_network_with(input: &str, limits: &FormatLimits) -> Result<Network, ParseError> {
    limits.check_input(input.len())?;
    let mut b = NetworkBuilder::new();
    let mut names: FxHashMap<String, NodeId> = FxHashMap::default();
    let mut num_switches = 0usize;
    let mut num_terminals = 0usize;
    let lookup = |names: &FxHashMap<String, NodeId>, name: &str, ln: usize, raw: &str| {
        names.get(name).copied().ok_or_else(|| {
            let mut e = err(ln, ParseErrorKind::UnknownNode { name: clip(name) });
            if let Some(c) = column_of(raw, name) {
                e = e.at_column(c);
            }
            e
        })
    };
    for (i, raw) in input.lines().enumerate() {
        let ln = i + 1;
        limits.check_line(ln, raw.len())?;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(kw) = parts.next() else { continue };
        match kw {
            "label" => {
                let rest = line["label".len()..].trim();
                b.label(rest);
            }
            "switch" | "terminal" => {
                let name_tok = parts
                    .next()
                    .ok_or_else(|| err(ln, ParseErrorKind::Missing { what: "node name" }))?;
                if names.contains_key(name_tok) {
                    let mut e = err(
                        ln,
                        ParseErrorKind::DuplicateNode {
                            name: clip(name_tok),
                        },
                    );
                    if let Some(c) = column_of(raw, name_tok) {
                        e = e.at_column(c);
                    }
                    return Err(e);
                }
                let name = name_tok.to_string();
                let mut ports: u16 = if kw == "switch" { 36 } else { 2 };
                let mut coord = None;
                let mut level = None;
                for opt in parts {
                    let col = column_of(raw, opt);
                    let at = |mut e: ParseError| {
                        if let Some(c) = col {
                            e = e.at_column(c);
                        }
                        e
                    };
                    let (key, val) = opt.split_once('=').ok_or_else(|| {
                        at(err(
                            ln,
                            ParseErrorKind::BadToken {
                                what: "option",
                                token: clip(opt),
                            },
                        ))
                    })?;
                    match key {
                        "ports" => {
                            ports = val.parse().map_err(|_| {
                                at(err(
                                    ln,
                                    ParseErrorKind::BadToken {
                                        what: "port count",
                                        token: clip(val),
                                    },
                                ))
                            })?;
                            limits.check_ports(ln, ports)?;
                        }
                        "coord" => {
                            limits.check_coord(ln, val.split(',').count())?;
                            let c: Result<Vec<u16>, _> =
                                val.split(',').map(|x| x.parse()).collect();
                            coord = Some(c.map_err(|_| {
                                at(err(
                                    ln,
                                    ParseErrorKind::BadToken {
                                        what: "coord",
                                        token: clip(val),
                                    },
                                ))
                            })?);
                        }
                        "level" => {
                            level = Some(val.parse().map_err(|_| {
                                at(err(
                                    ln,
                                    ParseErrorKind::BadToken {
                                        what: "level",
                                        token: clip(val),
                                    },
                                ))
                            })?);
                        }
                        _ => {
                            return Err(at(err(
                                ln,
                                ParseErrorKind::BadToken {
                                    what: "option key",
                                    token: clip(key),
                                },
                            )))
                        }
                    }
                }
                if kw == "switch" {
                    num_switches += 1;
                } else {
                    num_terminals += 1;
                }
                limits.check_nodes(ln, num_switches, num_terminals)?;
                let id = if kw == "switch" {
                    b.add_switch(name.clone(), ports)
                } else {
                    b.add_node(crate::NodeKind::Terminal, name.clone(), ports)
                };
                if let Some(c) = coord {
                    b.set_coord(id, c);
                }
                if let Some(l) = level {
                    b.set_level(id, l);
                }
                names.insert(name, id);
            }
            "link" | "channel" => {
                let a = parts
                    .next()
                    .ok_or_else(|| err(ln, ParseErrorKind::Missing { what: "endpoint" }))?;
                let c = parts
                    .next()
                    .ok_or_else(|| err(ln, ParseErrorKind::Missing { what: "endpoint" }))?;
                let a = lookup(&names, a, ln, raw)?;
                let c = lookup(&names, c, ln, raw)?;
                let res = if kw == "link" {
                    b.link(a, c).map(|_| ())
                } else {
                    b.add_channel(a, c).map(|_| ())
                };
                res.map_err(|e| {
                    err(
                        ln,
                        ParseErrorKind::Structure {
                            detail: e.to_string(),
                        },
                    )
                })?;
            }
            _ => {
                let mut e = err(ln, ParseErrorKind::UnknownKeyword { token: clip(kw) });
                if let Some(c) = column_of(raw, kw) {
                    e = e.at_column(c);
                }
                return Err(e);
            }
        }
    }
    Ok(b.build())
}

/// Write a network in the text format (inverse of [`parse_network`] up to
/// port renumbering).
pub fn write_network(net: &Network) -> String {
    // Writes into a String cannot fail; the results are discarded
    // explicitly so this path stays free of unwrap.
    let mut out = String::new();
    if !net.label().is_empty() {
        let _ = writeln!(out, "label {}", net.label());
    }
    for (_, node) in net.nodes() {
        let kw = match node.kind {
            crate::NodeKind::Switch => "switch",
            crate::NodeKind::Terminal => "terminal",
        };
        let _ = write!(out, "{kw} {} ports={}", node.name, node.max_ports);
        if let Some(c) = &node.coord {
            let _ = write!(
                out,
                " coord={}",
                c.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        if let Some(l) = node.level {
            let _ = write!(out, " level={l}");
        }
        out.push('\n');
    }
    let mut written = vec![false; net.num_channels()];
    for (id, ch) in net.channels() {
        if written[id.idx()] {
            continue;
        }
        written[id.idx()] = true;
        let a = &net.node(ch.src).name;
        let c = &net.node(ch.dst).name;
        match ch.rev {
            Some(r) => {
                written[r.idx()] = true;
                let _ = writeln!(out, "link {a} {c}");
            }
            None => {
                let _ = writeln!(out, "channel {a} {c}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn parse_simple_network() {
        let net = parse_network(
            "# tiny\nlabel tiny\nswitch s0 ports=4\nswitch s1 ports=4 coord=1,2 level=3\n\
             terminal t0\nlink s0 s1\nlink t0 s0\nchannel s0 s1\n",
        )
        .unwrap();
        assert_eq!(net.label(), "tiny");
        assert_eq!(net.num_switches(), 2);
        assert_eq!(net.num_terminals(), 1);
        assert_eq!(net.num_channels(), 5);
        let s1 = net.node_by_name("s1").unwrap();
        assert_eq!(net.node(s1).coord.as_deref(), Some(&[1, 2][..]));
        assert_eq!(net.node(s1).level, Some(3));
        net.validate().unwrap();
    }

    #[test]
    fn round_trip_generated_topology() {
        let net = topo::kary_ntree(2, 2);
        let text = write_network(&net);
        let back = parse_network(&text).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_channels(), net.num_channels());
        assert_eq!(back.num_cables(), net.num_cables());
        back.validate().unwrap();
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_network("switch s0\nlink s0 nope\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ParseErrorKind::UnknownNode { .. }));
        assert!(e.to_string().contains("unknown node"));

        let e = parse_network("frobnicate x\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, ParseErrorKind::UnknownKeyword { .. }));

        let e = parse_network("switch s0\nswitch s0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn errors_carry_columns() {
        let e = parse_network("switch s0 ports=zap\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.column, Some(11), "column of the offending option");
        assert!(e.to_string().contains("bad port count `zap`"));

        let e = parse_network("switch s0\nlink s0 nope\n").unwrap_err();
        assert_eq!(e.column, Some(9), "column of the dangling name");
    }

    #[test]
    fn radix_violation_reported_at_line() {
        let e = parse_network("switch s0 ports=1\nterminal a\nterminal b\nlink a s0\nlink b s0\n")
            .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(matches!(e.kind, ParseErrorKind::Structure { .. }));
        assert!(e.to_string().contains("no free port"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let net = parse_network("\n# a comment\nswitch s0   # trailing\n\n").unwrap();
        assert_eq!(net.num_switches(), 1);
    }

    #[test]
    fn limits_bound_nodes_ports_and_lines() {
        let limits = FormatLimits {
            max_switches: 2,
            ..FormatLimits::default()
        };
        let input = "switch a\nswitch b\nswitch c\n";
        let e = parse_network_with(input, &limits).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "switches",
                ..
            }
        ));

        let limits = FormatLimits {
            max_ports: 8,
            ..FormatLimits::default()
        };
        let e = parse_network_with("switch s ports=9\n", &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded { what: "ports", .. }
        ));

        let limits = FormatLimits {
            max_line_len: 16,
            ..FormatLimits::default()
        };
        let e = parse_network_with("switch very_long_switch_name\n", &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "line length",
                ..
            }
        ));

        let limits = FormatLimits {
            max_coord_dims: 2,
            ..FormatLimits::default()
        };
        let e = parse_network_with("switch s coord=1,2,3\n", &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "coord dimensions",
                ..
            }
        ));
    }

    #[test]
    fn huge_tokens_are_clipped_in_messages() {
        let input = format!("switch s ports={}\n", "9".repeat(10_000));
        let e = parse_network(&input).unwrap_err();
        assert!(e.to_string().len() < 120, "error stays one short line");
    }
}
