//! A minimal human-editable cabling format.
//!
//! ```text
//! # comment
//! switch s0 ports=36
//! switch s1 ports=36 coord=0,1 level=2
//! terminal t0
//! link s0 t0          # bidirectional cable, ports auto-assigned
//! channel s0 s1       # unidirectional channel
//! ```

use crate::{Network, NetworkBuilder, NodeId};
use rustc_hash::FxHashMap;
use std::fmt::Write as _;

/// Error raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Parse a network from the text format.
pub fn parse_network(input: &str) -> Result<Network, ParseError> {
    let mut b = NetworkBuilder::new();
    let mut names: FxHashMap<String, NodeId> = FxHashMap::default();
    let lookup = |names: &FxHashMap<String, NodeId>, name: &str, ln: usize| {
        names
            .get(name)
            .copied()
            .ok_or_else(|| err(ln, format!("unknown node {name}")))
    };
    for (i, raw) in input.lines().enumerate() {
        let ln = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kw = parts.next().unwrap();
        match kw {
            "label" => {
                let rest = line["label".len()..].trim();
                b.label(rest);
            }
            "switch" | "terminal" => {
                let name = parts
                    .next()
                    .ok_or_else(|| err(ln, "missing node name"))?
                    .to_string();
                if names.contains_key(&name) {
                    return Err(err(ln, format!("duplicate node {name}")));
                }
                let mut ports: u16 = if kw == "switch" { 36 } else { 2 };
                let mut coord = None;
                let mut level = None;
                for opt in parts {
                    let (key, val) = opt
                        .split_once('=')
                        .ok_or_else(|| err(ln, format!("bad option {opt}")))?;
                    match key {
                        "ports" => {
                            ports = val
                                .parse()
                                .map_err(|_| err(ln, format!("bad port count {val}")))?;
                        }
                        "coord" => {
                            let c: Result<Vec<u16>, _> =
                                val.split(',').map(|x| x.parse()).collect();
                            coord = Some(c.map_err(|_| err(ln, format!("bad coord {val}")))?);
                        }
                        "level" => {
                            level = Some(
                                val.parse()
                                    .map_err(|_| err(ln, format!("bad level {val}")))?,
                            );
                        }
                        _ => return Err(err(ln, format!("unknown option {key}"))),
                    }
                }
                let id = if kw == "switch" {
                    b.add_switch(name.clone(), ports)
                } else {
                    b.add_node(crate::NodeKind::Terminal, name.clone(), ports)
                };
                if let Some(c) = coord {
                    b.set_coord(id, c);
                }
                if let Some(l) = level {
                    b.set_level(id, l);
                }
                names.insert(name, id);
            }
            "link" | "channel" => {
                let a = parts.next().ok_or_else(|| err(ln, "missing endpoint"))?;
                let c = parts.next().ok_or_else(|| err(ln, "missing endpoint"))?;
                let a = lookup(&names, a, ln)?;
                let c = lookup(&names, c, ln)?;
                let res = if kw == "link" {
                    b.link(a, c).map(|_| ())
                } else {
                    b.add_channel(a, c).map(|_| ())
                };
                res.map_err(|e| err(ln, e.to_string()))?;
            }
            _ => return Err(err(ln, format!("unknown keyword {kw}"))),
        }
    }
    Ok(b.build())
}

/// Write a network in the text format (inverse of [`parse_network`] up to
/// port renumbering).
pub fn write_network(net: &Network) -> String {
    let mut out = String::new();
    if !net.label().is_empty() {
        writeln!(out, "label {}", net.label()).unwrap();
    }
    for (_, node) in net.nodes() {
        let kw = match node.kind {
            crate::NodeKind::Switch => "switch",
            crate::NodeKind::Terminal => "terminal",
        };
        write!(out, "{kw} {} ports={}", node.name, node.max_ports).unwrap();
        if let Some(c) = &node.coord {
            write!(
                out,
                " coord={}",
                c.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
            .unwrap();
        }
        if let Some(l) = node.level {
            write!(out, " level={l}").unwrap();
        }
        out.push('\n');
    }
    let mut written = vec![false; net.num_channels()];
    for (id, ch) in net.channels() {
        if written[id.idx()] {
            continue;
        }
        written[id.idx()] = true;
        let a = &net.node(ch.src).name;
        let c = &net.node(ch.dst).name;
        match ch.rev {
            Some(r) => {
                written[r.idx()] = true;
                writeln!(out, "link {a} {c}").unwrap();
            }
            None => writeln!(out, "channel {a} {c}").unwrap(),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn parse_simple_network() {
        let net = parse_network(
            "# tiny\nlabel tiny\nswitch s0 ports=4\nswitch s1 ports=4 coord=1,2 level=3\n\
             terminal t0\nlink s0 s1\nlink t0 s0\nchannel s0 s1\n",
        )
        .unwrap();
        assert_eq!(net.label(), "tiny");
        assert_eq!(net.num_switches(), 2);
        assert_eq!(net.num_terminals(), 1);
        assert_eq!(net.num_channels(), 5);
        let s1 = net.node_by_name("s1").unwrap();
        assert_eq!(net.node(s1).coord.as_deref(), Some(&[1, 2][..]));
        assert_eq!(net.node(s1).level, Some(3));
        net.validate().unwrap();
    }

    #[test]
    fn round_trip_generated_topology() {
        let net = topo::kary_ntree(2, 2);
        let text = write_network(&net);
        let back = parse_network(&text).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_channels(), net.num_channels());
        assert_eq!(back.num_cables(), net.num_cables());
        back.validate().unwrap();
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_network("switch s0\nlink s0 nope\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown node"));

        let e = parse_network("frobnicate x\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_network("switch s0\nswitch s0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn radix_violation_reported_at_line() {
        let e = parse_network("switch s0 ports=1\nterminal a\nterminal b\nlink a s0\nlink b s0\n")
            .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.msg.contains("no free port"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let net = parse_network("\n# a comment\nswitch s0   # trailing\n\n").unwrap();
        assert_eq!(net.num_switches(), 1);
    }
}
