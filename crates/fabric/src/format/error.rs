//! The typed error taxonomy and resource limits shared by every
//! interchange-format parser.
//!
//! Topology files are *untrusted input*: a subnet manager may receive a
//! cabling dump from a flaky discovery sweep, a user-edited text file,
//! or a JSON artifact produced by another tool. Every parser in
//! [`crate::format`] therefore reports failures as a structured
//! [`ParseError`] — location (line, column when known) plus a
//! [`ParseErrorKind`] naming the offending token or violated invariant —
//! and enforces configurable [`FormatLimits`] so no byte stream can make
//! the loader panic or allocate without bound.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// Longest token echoed back in an error message. Hostile inputs can
/// put megabytes on one line; errors must stay one line themselves.
const TOKEN_CLIP: usize = 48;

/// Copy `s` for an error message, truncating very long tokens.
pub(crate) fn clip(s: &str) -> String {
    if s.len() <= TOKEN_CLIP {
        return s.to_string();
    }
    let mut end = TOKEN_CLIP;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// What went wrong, structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A line started with a token no grammar rule accepts.
    UnknownKeyword {
        /// The offending token (clipped).
        token: String,
    },
    /// A required element was absent.
    Missing {
        /// What was expected (e.g. `"node name"`, `"peer port"`).
        what: &'static str,
    },
    /// A token was present but unparseable as what the grammar expects.
    BadToken {
        /// What the token should have been (e.g. `"port count"`).
        what: &'static str,
        /// The offending token (clipped).
        token: String,
    },
    /// A node name/GUID was declared twice.
    DuplicateNode {
        /// The duplicated name (clipped).
        name: String,
    },
    /// A link referenced a node never declared.
    UnknownNode {
        /// The dangling name (clipped).
        name: String,
    },
    /// The input parsed token-wise but violates a structural invariant
    /// (port collision, one-sided cable, inconsistent index maps, …).
    Structure {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A [`FormatLimits`] bound was exceeded.
    LimitExceeded {
        /// Which resource (e.g. `"switches"`, `"line length"`).
        what: &'static str,
        /// The configured bound.
        limit: u64,
        /// What the input asked for.
        found: u64,
    },
    /// The JSON layer itself rejected the input (syntax or schema).
    Json {
        /// The underlying serde-level description.
        detail: String,
    },
}

impl std::fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseErrorKind::UnknownKeyword { token } => write!(f, "unknown keyword `{token}`"),
            ParseErrorKind::Missing { what } => write!(f, "missing {what}"),
            ParseErrorKind::BadToken { what, token } => write!(f, "bad {what} `{token}`"),
            ParseErrorKind::DuplicateNode { name } => write!(f, "duplicate node {name}"),
            ParseErrorKind::UnknownNode { name } => write!(f, "unknown node {name}"),
            ParseErrorKind::Structure { detail } => write!(f, "{detail}"),
            ParseErrorKind::LimitExceeded { what, limit, found } => {
                write!(f, "{what} limit exceeded: {found} > {limit}")
            }
            ParseErrorKind::Json { detail } => write!(f, "{detail}"),
        }
    }
}

/// Error raised while parsing any interchange format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number; 0 when the error is about the whole input
    /// (e.g. an input-size limit or a post-parse structural check).
    pub line: usize,
    /// 1-based byte column of the offending token, when known.
    pub column: Option<usize>,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// An error at `line` with no column information.
    pub fn new(line: usize, kind: ParseErrorKind) -> Self {
        ParseError {
            line,
            column: None,
            kind,
        }
    }

    /// An error about the input as a whole (no line).
    pub fn whole_input(kind: ParseErrorKind) -> Self {
        Self::new(0, kind)
    }

    /// Attach a 1-based column.
    pub fn at_column(mut self, column: usize) -> Self {
        self.column = Some(column);
        self
    }

    /// The kind rendered as a message (without the location prefix).
    pub fn msg(&self) -> String {
        self.kind.to_string()
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}", self.kind),
            (l, None) => write!(f, "line {l}: {}", self.kind),
            (l, Some(c)) => write!(f, "line {l}, col {c}: {}", self.kind),
        }
    }
}

impl std::error::Error for ParseError {}

/// 1-based byte column of `token` within `line`, when `token` is a
/// subslice of `line` (pointer arithmetic; returns `None` otherwise).
pub(crate) fn column_of(line: &str, token: &str) -> Option<usize> {
    let base = line.as_ptr() as usize;
    let tok = token.as_ptr() as usize;
    (tok >= base && tok + token.len() <= base + line.len()).then(|| tok - base + 1)
}

/// Resource bounds enforced while parsing untrusted topology input.
///
/// The defaults are generous — far above the largest fabric in the
/// paper's evaluation (Ranger: 3,936 nodes) — but finite, so a hostile
/// stream cannot make the loader allocate without bound. Tighten them
/// when loading input from less trusted sources:
///
/// ```
/// use fabric::format::{parse_network_with, FormatLimits};
/// let limits = FormatLimits {
///     max_switches: 64,
///     max_terminals: 256,
///     ..FormatLimits::default()
/// };
/// let err = parse_network_with(&"switch s ports=9999\n".repeat(100), &limits).unwrap_err();
/// assert!(err.to_string().contains("limit exceeded"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatLimits {
    /// Maximum total input size in bytes.
    pub max_input_len: usize,
    /// Maximum length of a single line in bytes.
    pub max_line_len: usize,
    /// Maximum number of switches.
    pub max_switches: usize,
    /// Maximum number of terminals.
    pub max_terminals: usize,
    /// Maximum port count (radix) of a single node.
    pub max_ports: u16,
    /// Maximum dimensions of a `coord=` vector.
    pub max_coord_dims: usize,
}

impl Default for FormatLimits {
    fn default() -> Self {
        FormatLimits {
            max_input_len: 1 << 30,
            max_line_len: 1 << 16,
            max_switches: 1 << 20,
            max_terminals: 1 << 22,
            max_ports: 4096,
            max_coord_dims: 64,
        }
    }
}

impl FormatLimits {
    /// No bounds at all (trusted, in-process input only).
    pub fn unlimited() -> Self {
        FormatLimits {
            max_input_len: usize::MAX,
            max_line_len: usize::MAX,
            max_switches: usize::MAX,
            max_terminals: usize::MAX,
            max_ports: u16::MAX,
            max_coord_dims: usize::MAX,
        }
    }

    /// Reject over-size input before scanning it.
    pub(crate) fn check_input(&self, len: usize) -> Result<(), ParseError> {
        check(0, "input length", len as u64, self.max_input_len as u64)
    }

    /// Reject an over-long line before tokenizing it.
    pub(crate) fn check_line(&self, line_no: usize, len: usize) -> Result<(), ParseError> {
        check(line_no, "line length", len as u64, self.max_line_len as u64)
    }

    /// Reject node populations beyond the configured bounds.
    pub(crate) fn check_nodes(
        &self,
        line_no: usize,
        switches: usize,
        terminals: usize,
    ) -> Result<(), ParseError> {
        check(
            line_no,
            "switches",
            switches as u64,
            self.max_switches as u64,
        )?;
        check(
            line_no,
            "terminals",
            terminals as u64,
            self.max_terminals as u64,
        )
    }

    /// Reject a per-node port count beyond the configured radix bound.
    pub(crate) fn check_ports(&self, line_no: usize, ports: u16) -> Result<(), ParseError> {
        check(line_no, "ports", ports as u64, self.max_ports as u64)
    }

    /// Reject an over-long coordinate vector.
    pub(crate) fn check_coord(&self, line_no: usize, dims: usize) -> Result<(), ParseError> {
        check(
            line_no,
            "coord dimensions",
            dims as u64,
            self.max_coord_dims as u64,
        )
    }
}

fn check(line: usize, what: &'static str, found: u64, limit: u64) -> Result<(), ParseError> {
    if found > limit {
        return Err(ParseError::new(
            line,
            ParseErrorKind::LimitExceeded { what, limit, found },
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new(
            3,
            ParseErrorKind::UnknownKeyword {
                token: "frob".into(),
            },
        );
        assert_eq!(e.to_string(), "line 3: unknown keyword `frob`");
        let e = e.at_column(7);
        assert_eq!(e.to_string(), "line 3, col 7: unknown keyword `frob`");
        let e = ParseError::whole_input(ParseErrorKind::Json {
            detail: "trailing garbage".into(),
        });
        assert_eq!(e.to_string(), "trailing garbage");
    }

    #[test]
    fn tokens_are_clipped() {
        let long = "x".repeat(4096);
        let clipped = clip(&long);
        assert!(clipped.len() < 64);
        assert!(clipped.ends_with('…'));
        // Clipping respects UTF-8 boundaries.
        let multi = "é".repeat(4096);
        let _ = clip(&multi);
    }

    #[test]
    fn column_of_subslice() {
        let line = "switch s0 ports=4";
        let tok = &line[7..9];
        assert_eq!(column_of(line, tok), Some(8));
        assert_eq!(column_of(line, "elsewhere"), None);
    }

    #[test]
    fn limits_trip_typed_errors() {
        let lim = FormatLimits {
            max_switches: 2,
            ..FormatLimits::default()
        };
        let e = lim.check_nodes(5, 3, 0).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "switches",
                limit: 2,
                found: 3
            }
        ));
        assert!(lim.check_nodes(5, 2, 0).is_ok());
        assert!(FormatLimits::unlimited().check_input(usize::MAX).is_ok());
    }
}
