//! Parser for `ibnetdiscover`-style cabling dumps — the format the
//! paper's authors received real system topologies in (CHiC, JUROPA,
//! Tsubame, Ranger acknowledgments).
//!
//! Supported grammar (a practical subset of the real tool's output):
//!
//! ```text
//! vendid=0x2c9                      # ignored header lines
//! Switch  24 "S-0008f10400411f56"   # "ISR9024" port 0 lid 6 lmc 0
//! [1]  "H-0008f10403961354"[1]      # "node-1 HCA-1" lid 4 4xSDR
//! [2]  "S-0008f104003f0430"[7]      # link to another switch
//!
//! Ca  2 "H-0008f10403961354"        # "node-1 HCA-1"
//! [1]  "S-0008f10400411f56"[1]      # lid 4
//! ```
//!
//! Node sections start with `Switch`/`Ca`, a port count and a quoted
//! GUID; each following `[port] "peer"[peerport]` line is one cable end.
//! Cables appear twice (once per side) and are deduplicated; port numbers
//! are preserved exactly (they are facts from the fabric, not choices).
//!
//! Dumps come from discovery sweeps of real hardware and are treated as
//! untrusted: rejections are typed [`ParseError`]s and
//! [`parse_ibnetdiscover_with`] enforces [`FormatLimits`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::error::{clip, FormatLimits, ParseError, ParseErrorKind};
use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId, NodeKind};
use rustc_hash::FxHashMap;

fn err(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError::new(line, kind)
}

/// Parse an `ibnetdiscover` dump with default [`FormatLimits`].
pub fn parse_ibnetdiscover(input: &str) -> Result<Network, ParseError> {
    parse_ibnetdiscover_with(input, &FormatLimits::default())
}

/// Parse an `ibnetdiscover` dump into a [`Network`], enforcing `limits`.
///
/// Switch GUIDs become switch names, CA GUIDs terminal names. Both
/// sides of every cable must agree (same ports on both records);
/// one-sided records are an error, mirroring `ibnetdiscover`'s own
/// consistency guarantees.
pub fn parse_ibnetdiscover_with(input: &str, limits: &FormatLimits) -> Result<Network, ParseError> {
    struct PendingLink {
        line: usize,
        from: NodeId,
        from_port: u16,
        to_guid: String,
        to_port: u16,
    }

    limits.check_input(input.len())?;
    let mut b = NetworkBuilder::new();
    b.label("ibnetdiscover");
    let mut nodes: FxHashMap<String, NodeId> = FxHashMap::default();
    let mut pending: Vec<PendingLink> = Vec::new();
    // (node id, port) -> index into `pending`, for O(1) mirror lookup.
    let mut by_end: FxHashMap<(u32, u16), usize> = FxHashMap::default();
    let mut current: Option<NodeId> = None;
    let mut num_switches = 0usize;
    let mut num_terminals = 0usize;

    for (i, raw) in input.lines().enumerate() {
        let ln = i + 1;
        limits.check_line(ln, raw.len())?;
        // Strip comments; the '#' inside quoted strings does not occur in
        // the fields we parse (GUIDs are hex).
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty()
            || line.starts_with("vendid=")
            || line.starts_with("devid=")
            || line.starts_with("sysimgguid=")
            || line.starts_with("switchguid=")
            || line.starts_with("caguid=")
        {
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("Switch")
            .or_else(|| line.strip_prefix("Ca"))
        {
            let kind = if line.starts_with("Switch") {
                NodeKind::Switch
            } else {
                NodeKind::Terminal
            };
            let mut parts = rest.split_whitespace();
            let nports: u16 = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| err(ln, ParseErrorKind::Missing { what: "port count" }))?;
            limits.check_ports(ln, nports)?;
            let (guid, _) = parse_quoted(parts.next().unwrap_or("")).ok_or_else(|| {
                err(
                    ln,
                    ParseErrorKind::Missing {
                        what: "quoted GUID",
                    },
                )
            })?;
            if nodes.contains_key(guid) {
                return Err(err(ln, ParseErrorKind::DuplicateNode { name: clip(guid) }));
            }
            match kind {
                NodeKind::Switch => num_switches += 1,
                NodeKind::Terminal => num_terminals += 1,
            }
            limits.check_nodes(ln, num_switches, num_terminals)?;
            let id = b.add_node(kind, guid.to_string(), nports);
            nodes.insert(guid.to_string(), id);
            current = Some(id);
        } else if line.starts_with('[') {
            let node = current.ok_or_else(|| {
                err(
                    ln,
                    ParseErrorKind::Structure {
                        detail: "port line before any node".into(),
                    },
                )
            })?;
            let (port, rest) = parse_bracketed(line).ok_or_else(|| {
                err(
                    ln,
                    ParseErrorKind::BadToken {
                        what: "port specifier",
                        token: clip(line),
                    },
                )
            })?;
            let (peer, after_quote) = parse_quoted(rest)
                .ok_or_else(|| err(ln, ParseErrorKind::Missing { what: "peer GUID" }))?;
            let (peer_port, _) = parse_bracketed(after_quote.trim_start())
                .ok_or_else(|| err(ln, ParseErrorKind::Missing { what: "peer port" }))?;
            if by_end.contains_key(&(node.0, port)) {
                return Err(err(
                    ln,
                    ParseErrorKind::Structure {
                        detail: format!("port [{port}] listed twice for the same node"),
                    },
                ));
            }
            by_end.insert((node.0, port), pending.len());
            pending.push(PendingLink {
                line: ln,
                from: node,
                from_port: port,
                to_guid: peer.to_string(),
                to_port: peer_port,
            });
        } else {
            let token = line.split_whitespace().next().unwrap_or(line);
            return Err(err(
                ln,
                ParseErrorKind::UnknownKeyword { token: clip(token) },
            ));
        }
    }

    // Pair up the two sides of each cable. Each side looks up its mirror
    // through the (node, port) index — O(1) per cable end.
    let mut done: rustc_hash::FxHashSet<(u32, u16)> = rustc_hash::FxHashSet::default();
    for link in &pending {
        if done.contains(&(link.from.0, link.from_port)) {
            continue;
        }
        let to = *nodes.get(&link.to_guid).ok_or_else(|| {
            err(
                link.line,
                ParseErrorKind::Structure {
                    detail: format!("unknown peer {}", clip(&link.to_guid)),
                },
            )
        })?;
        // The mirror record must exist and agree.
        let mirror = by_end.get(&(to.0, link.to_port)).map(|&i| &pending[i]);
        match mirror {
            Some(m) if nodes.get(&m.to_guid) == Some(&link.from) && m.to_port == link.from_port => {
            }
            _ => {
                return Err(err(
                    link.line,
                    ParseErrorKind::Structure {
                        detail: format!(
                            "one-sided cable: {}[{}] -> {}[{}]",
                            link.from.0,
                            link.from_port,
                            clip(&link.to_guid),
                            link.to_port
                        ),
                    },
                ))
            }
        }
        b.link_at(link.from, link.from_port, to, link.to_port)
            .map_err(|e| {
                err(
                    link.line,
                    ParseErrorKind::Structure {
                        detail: e.to_string(),
                    },
                )
            })?;
        done.insert((link.from.0, link.from_port));
        done.insert((to.0, link.to_port));
    }
    Ok(b.build())
}

/// Write a network as an `ibnetdiscover`-style dump (inverse of
/// [`parse_ibnetdiscover`] up to comments).
pub fn write_ibnetdiscover(net: &Network) -> String {
    use std::fmt::Write as _;
    // Writes into a String cannot fail; results discarded explicitly.
    let mut out = String::new();
    for (id, node) in net.nodes() {
        let kw = match node.kind {
            NodeKind::Switch => "Switch",
            NodeKind::Terminal => "Ca",
        };
        let _ = writeln!(out, "{kw} {} \"{}\"", node.max_ports, node.name);
        let mut ports: Vec<_> = net
            .out_channels(id)
            .iter()
            .map(|&c| net.channel(c))
            .collect();
        ports.sort_by_key(|ch| ch.src_port);
        for ch in ports {
            let _ = writeln!(
                out,
                "[{}] \"{}\"[{}]",
                ch.src_port,
                net.node(ch.dst).name,
                ch.dst_port
            );
        }
        out.push('\n');
    }
    out
}

/// `"S-0008f1..." trailing` → `(unquoted content, trailing)`.
fn parse_quoted(s: &str) -> Option<(&str, &str)> {
    let s = s.trim_start();
    let rest = s.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((&rest[..end], &rest[end + 1..]))
}

/// `[7] trailing` → `(7, " trailing")`.
fn parse_bracketed(s: &str) -> Option<(u16, &str)> {
    let rest = s.strip_prefix('[')?;
    let end = rest.find(']')?;
    let port = rest[..end].trim().parse().ok()?;
    Some((port, &rest[end + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
vendid=0x2c9
devid=0x5a5a
Switch  4 "S-0001"   # "leaf" port 0 lid 2
[1]  "H-0001"[1]     # "node-1" lid 3 4xSDR
[2]  "S-0002"[1]     # uplink
[3]  "H-0002"[1]

Switch  4 "S-0002"
[1]  "S-0001"[2]
[2]  "H-0003"[1]

Ca  1 "H-0001"
[1]  "S-0001"[1]

Ca  1 "H-0002"
[1]  "S-0001"[3]

Ca  1 "H-0003"
[1]  "S-0002"[2]
"#;

    #[test]
    fn parses_sample_fabric() {
        let net = parse_ibnetdiscover(SAMPLE).unwrap();
        assert_eq!(net.num_switches(), 2);
        assert_eq!(net.num_terminals(), 3);
        assert_eq!(net.num_cables(), 4);
        assert!(net.is_strongly_connected());
        net.validate().unwrap();
        // Ports survive exactly.
        let s1 = net.node_by_name("S-0001").unwrap();
        let s2 = net.node_by_name("S-0002").unwrap();
        let c = net.channel_between(s1, s2).unwrap();
        assert_eq!(net.channel(c).src_port, 2);
        assert_eq!(net.channel(c).dst_port, 1);
    }

    #[test]
    fn one_sided_cable_rejected() {
        let bad = r#"
Switch 4 "S-0001"
[1] "H-0001"[1]
Ca 1 "H-0001"
"#;
        let e = parse_ibnetdiscover(bad).unwrap_err();
        assert!(e.to_string().contains("one-sided"), "{e}");
        assert!(matches!(e.kind, ParseErrorKind::Structure { .. }));
    }

    #[test]
    fn mismatched_ports_rejected() {
        let bad = r#"
Switch 4 "S-0001"
[1] "H-0001"[1]
Ca 2 "H-0001"
[2] "S-0001"[1]
"#;
        assert!(parse_ibnetdiscover(bad).is_err());
    }

    #[test]
    fn unknown_peer_rejected() {
        let bad = r#"
Switch 4 "S-0001"
[1] "H-0404"[1]
"#;
        let e = parse_ibnetdiscover(bad).unwrap_err();
        assert!(e.to_string().contains("unknown peer"), "{e}");
    }

    #[test]
    fn duplicate_port_line_rejected() {
        let bad = r#"
Switch 4 "S-0001"
[1] "H-0001"[1]
[1] "H-0001"[1]
Ca 1 "H-0001"
[1] "S-0001"[1]
"#;
        let e = parse_ibnetdiscover(bad).unwrap_err();
        assert!(e.to_string().contains("listed twice"), "{e}");
    }

    #[test]
    fn limits_bound_the_dump() {
        let limits = FormatLimits {
            max_ports: 3,
            ..FormatLimits::default()
        };
        let e = parse_ibnetdiscover_with(SAMPLE, &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded { what: "ports", .. }
        ));

        let limits = FormatLimits {
            max_terminals: 2,
            ..FormatLimits::default()
        };
        let e = parse_ibnetdiscover_with(SAMPLE, &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "terminals",
                ..
            }
        ));
    }

    #[test]
    fn round_trips_generated_topologies() {
        for net in [
            crate::topo::ring(5, 2),
            crate::topo::kary_ntree(3, 2),
            crate::topo::torus(&[3, 3], 1),
        ] {
            let dump = write_ibnetdiscover(&net);
            let back = parse_ibnetdiscover(&dump).unwrap();
            assert_eq!(back.num_nodes(), net.num_nodes(), "{}", net.label());
            assert_eq!(back.num_cables(), net.num_cables(), "{}", net.label());
            // Port assignments survive the round trip exactly.
            for (_, ch) in net.channels() {
                let a = back.node_by_name(&net.node(ch.src).name).unwrap();
                let b2 = back.node_by_name(&net.node(ch.dst).name).unwrap();
                let found = back.channels_between(a, b2).into_iter().any(|c| {
                    back.channel(c).src_port == ch.src_port
                        && back.channel(c).dst_port == ch.dst_port
                });
                assert!(found, "cable missing in round trip");
            }
            back.validate().unwrap();
        }
    }

    #[test]
    fn parsed_fabric_routes_deadlock_free() {
        let net = parse_ibnetdiscover(SAMPLE).unwrap();
        // End-to-end: the dump is routable (exercised further by the CLI).
        assert!(net.is_strongly_connected());
    }
}
