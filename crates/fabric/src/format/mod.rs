//! Interchange formats for networks and routes.
//!
//! * [`text`] — a minimal human-editable cabling format.
//! * [`ibnetdiscover`] — a parser for the real `ibnetdiscover` dump
//!   format the authors' tools consumed.
//! * [`json`] — serde/JSON round-tripping of [`crate::Network`] and
//!   [`crate::Routes`] for the repro harness.

pub mod ibnetdiscover;
pub mod json;
pub mod text;

pub use ibnetdiscover::{parse_ibnetdiscover, write_ibnetdiscover};
pub use json::{network_from_json, network_to_json, routes_from_json, routes_to_json};
pub use text::{parse_network, write_network, ParseError};
