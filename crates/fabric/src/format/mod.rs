//! Interchange formats for networks and routes.
//!
//! * [`text`] — a minimal human-editable cabling format.
//! * [`ibnetdiscover`] — a parser for the real `ibnetdiscover` dump
//!   format the authors' tools consumed.
//! * [`json`] — serde/JSON round-tripping of [`crate::Network`] and
//!   [`crate::Routes`] for the repro harness.
//!
//! All three parsers treat input as untrusted: every rejection is a
//! typed [`ParseError`] (line/column + [`ParseErrorKind`]) and the
//! `*_with` entry points enforce configurable [`FormatLimits`] so no
//! byte stream can panic or OOM the loader.

pub mod error;
pub mod ibnetdiscover;
pub mod json;
pub mod text;

pub use error::{FormatLimits, ParseError, ParseErrorKind};
pub use ibnetdiscover::{parse_ibnetdiscover, parse_ibnetdiscover_with, write_ibnetdiscover};
pub use json::{
    network_from_json, network_from_json_with, network_to_json, routes_from_json,
    routes_from_json_with, routes_to_json,
};
pub use text::{parse_network, parse_network_with, write_network};
