//! JSON round-tripping for [`Network`] and [`Routes`].
//!
//! The workspace's serde/serde_json are offline stand-ins (see DESIGN.md
//! §4), so this module carries its own strict JSON reader/writer. That
//! turns out to be the right shape for hardening anyway: a JSON artifact
//! is untrusted input, and instead of deserializing the graph's internal
//! arrays verbatim (index maps, adjacency lists, reverse-channel ids — a
//! hostile document can make all of them lie), the reader re-derives the
//! network through [`crate::NetworkBuilder`], so every invariant is
//! re-established or the document is rejected with a typed
//! [`ParseError`].
//!
//! Schema (`network_to_json`):
//!
//! ```json
//! {"label": "ring",
//!  "nodes": [{"kind": "switch", "name": "s0", "ports": 36,
//!             "coord": [0, 1], "level": 2}],
//!  "cables": [{"src": 0, "src_port": 1, "dst": 1, "dst_port": 1,
//!              "bidi": true}]}
//! ```
//!
//! Cable endpoints are indices into `nodes`; `bidi: true` is a paired
//! cable (two channels), `false` a single directed channel. Routes
//! (`routes_to_json`) serialize as next-hop channel ids (`null` = unset)
//! plus the per-pair virtual-layer table:
//!
//! ```json
//! {"engine": "dfsssp", "num_terminals": 2, "num_layers": 1,
//!  "next": [[null, 0], [1, null]], "vl": [0, 0, 0, 0]}
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::error::{FormatLimits, ParseError, ParseErrorKind};
use crate::{Network, NetworkBuilder, NodeId, NodeKind, Routes};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the reader. The schema needs 3;
/// anything deeper is a hostile `[[[[…` stack-overflow attempt.
const MAX_DEPTH: usize = 64;

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a network to a JSON string (inverse of
/// [`network_from_json`]).
pub fn network_to_json(net: &Network) -> String {
    let mut out = String::from("{\"label\":");
    write_str(&mut out, net.label());
    out.push_str(",\"nodes\":[");
    for (i, (_, node)) in net.nodes().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match node.kind {
            NodeKind::Switch => "switch",
            NodeKind::Terminal => "terminal",
        };
        let _ = write!(out, "{{\"kind\":\"{kind}\",\"name\":");
        write_str(&mut out, &node.name);
        let _ = write!(out, ",\"ports\":{}", node.max_ports);
        if let Some(c) = &node.coord {
            out.push_str(",\"coord\":[");
            for (j, x) in c.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{x}");
            }
            out.push(']');
        }
        if let Some(l) = node.level {
            let _ = write!(out, ",\"level\":{l}");
        }
        out.push('}');
    }
    out.push_str("],\"cables\":[");
    let mut written = vec![false; net.num_channels()];
    let mut first = true;
    for (id, ch) in net.channels() {
        if written[id.idx()] {
            continue;
        }
        written[id.idx()] = true;
        if !first {
            out.push(',');
        }
        first = false;
        let bidi = match ch.rev {
            Some(r) => {
                written[r.idx()] = true;
                true
            }
            None => false,
        };
        let _ = write!(
            out,
            "{{\"src\":{},\"src_port\":{},\"dst\":{},\"dst_port\":{},\"bidi\":{bidi}}}",
            ch.src.0, ch.src_port, ch.dst.0, ch.dst_port
        );
    }
    out.push_str("]}");
    out
}

/// Serialize routes to a JSON string (inverse of [`routes_from_json`]).
pub fn routes_to_json(routes: &Routes) -> String {
    let nt = routes.num_terminals();
    let mut out = String::from("{\"engine\":");
    write_str(&mut out, routes.engine());
    let _ = write!(
        out,
        ",\"num_terminals\":{nt},\"num_layers\":{},\"next\":[",
        routes.num_layers()
    );
    for node in 0..routes.num_nodes() {
        if node > 0 {
            out.push(',');
        }
        out.push('[');
        for t in 0..nt {
            if t > 0 {
                out.push(',');
            }
            match routes.next_hop(NodeId(node as u32), t) {
                Some(c) => {
                    let _ = write!(out, "{}", c.0);
                }
                None => out.push_str("null"),
            }
        }
        out.push(']');
    }
    out.push_str("],\"vl\":[");
    for src_t in 0..nt {
        for dst_t in 0..nt {
            if src_t + dst_t > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", routes.layer(src_t, dst_t));
        }
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------

/// Parse a network from JSON with default [`FormatLimits`].
pub fn network_from_json(s: &str) -> Result<Network, ParseError> {
    network_from_json_with(s, &FormatLimits::default())
}

/// Parse a network from JSON, enforcing `limits`. The graph is rebuilt
/// through [`NetworkBuilder`], so port collisions, dangling endpoints and
/// self-loops in the document surface as typed structural errors.
pub fn network_from_json_with(s: &str, limits: &FormatLimits) -> Result<Network, ParseError> {
    limits.check_input(s.len())?;
    let doc = parse_value(s)?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| s_err("top-level value is not an object"))?;

    let label = match obj.get("label") {
        None => "",
        Some(v) => v.as_str().ok_or_else(|| s_err("`label` is not a string"))?,
    };
    let nodes = want_arr(obj, "nodes")?;
    let cables = want_arr(obj, "cables")?;

    let mut b = NetworkBuilder::new();
    b.label(label);
    let (mut num_switches, mut num_terminals) = (0usize, 0usize);
    for (i, node) in nodes.iter().enumerate() {
        let node = node
            .as_obj()
            .ok_or_else(|| s_err(format!("node {i} is not an object")))?;
        let kind = match want_str(node, "kind", i)? {
            "switch" => NodeKind::Switch,
            "terminal" => NodeKind::Terminal,
            other => return Err(s_err(format!("node {i}: unknown kind `{other}`"))),
        };
        match kind {
            NodeKind::Switch => num_switches += 1,
            NodeKind::Terminal => num_terminals += 1,
        }
        limits.check_nodes(0, num_switches, num_terminals)?;
        let name = want_str(node, "name", i)?;
        let ports = want_u64(node, "ports", i, u16::MAX as u64)? as u16;
        limits.check_ports(0, ports)?;
        let id = b.add_node(kind, name.to_string(), ports);
        if let Some(v) = node.get("coord") {
            let arr = v
                .as_arr()
                .ok_or_else(|| s_err(format!("node {i}: `coord` is not an array")))?;
            limits.check_coord(0, arr.len())?;
            let coord = arr
                .iter()
                .map(|x| x.as_u64().filter(|&x| x <= u16::MAX as u64))
                .collect::<Option<Vec<u64>>>()
                .ok_or_else(|| s_err(format!("node {i}: bad coord component")))?;
            b.set_coord(id, coord.into_iter().map(|x| x as u16).collect());
        }
        if let Some(v) = node.get("level") {
            let level = v
                .as_u64()
                .filter(|&l| l <= u8::MAX as u64)
                .ok_or_else(|| s_err(format!("node {i}: bad level")))?;
            b.set_level(id, level as u8);
        }
    }
    for (i, cable) in cables.iter().enumerate() {
        let cable = cable
            .as_obj()
            .ok_or_else(|| s_err(format!("cable {i} is not an object")))?;
        let src = want_u64(cable, "src", i, u32::MAX as u64 - 1)? as u32;
        let dst = want_u64(cable, "dst", i, u32::MAX as u64 - 1)? as u32;
        let sp = want_u64(cable, "src_port", i, u16::MAX as u64)? as u16;
        let dp = want_u64(cable, "dst_port", i, u16::MAX as u64)? as u16;
        let bidi = match cable.get("bidi") {
            None => true,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| s_err(format!("cable {i}: `bidi` is not a bool")))?,
        };
        let res = if bidi {
            b.link_at(NodeId(src), sp, NodeId(dst), dp).map(|_| ())
        } else {
            b.add_channel_at(NodeId(src), sp, NodeId(dst), dp)
                .map(|_| ())
        };
        res.map_err(|e| s_err(format!("cable {i}: {e}")))?;
    }
    let net = b.build();
    // Builder output is consistent by construction; keep the check as a
    // backstop so a builder regression cannot ship a bad artifact.
    net.validate().map_err(s_err)?;
    Ok(net)
}

/// Parse routes from JSON with default [`FormatLimits`].
pub fn routes_from_json(s: &str) -> Result<Routes, ParseError> {
    routes_from_json_with(s, &FormatLimits::default())
}

/// Parse routes from JSON, enforcing `limits`. Table shapes (row widths,
/// the `vl` matrix size, layer range) are validated before construction,
/// so a corrupt artifact is rejected instead of panicking downstream.
pub fn routes_from_json_with(s: &str, limits: &FormatLimits) -> Result<Routes, ParseError> {
    limits.check_input(s.len())?;
    let doc = parse_value(s)?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| s_err("top-level value is not an object"))?;
    let engine = match obj.get("engine") {
        None => "unknown",
        Some(v) => v
            .as_str()
            .ok_or_else(|| s_err("`engine` is not a string"))?,
    };
    let nt = obj
        .get("num_terminals")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| s_err("missing or bad `num_terminals`"))? as usize;
    let next_rows = want_arr(obj, "next")?;
    limits.check_nodes(0, next_rows.len().saturating_sub(nt), nt)?;
    let mut next = Vec::with_capacity(next_rows.len());
    for (i, row) in next_rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| s_err(format!("next[{i}] is not an array")))?;
        let mut out = Vec::with_capacity(row.len());
        for v in row {
            out.push(match v {
                Value::Null => crate::graph::NONE_U32,
                v => v
                    .as_u64()
                    .filter(|&c| c < crate::graph::NONE_U32 as u64)
                    .ok_or_else(|| s_err(format!("next[{i}]: bad channel id")))?
                    as u32,
            });
        }
        next.push(out);
    }
    let vl_vals = want_arr(obj, "vl")?;
    let mut vl = Vec::with_capacity(vl_vals.len());
    for v in vl_vals {
        vl.push(
            v.as_u64()
                .filter(|&l| l <= 254)
                .ok_or_else(|| s_err("vl: virtual layer out of range (0..=254)"))?
                as u8,
        );
    }
    let routes = Routes::from_raw(next, vl, nt, engine.to_string()).map_err(s_err)?;
    if let Some(v) = obj.get("num_layers") {
        let claimed = v
            .as_u64()
            .ok_or_else(|| s_err("`num_layers` is not a number"))?;
        if claimed != routes.num_layers() as u64 {
            return Err(s_err(format!(
                "`num_layers` is {claimed} but the vl table implies {}",
                routes.num_layers()
            )));
        }
    }
    Ok(routes)
}

/// A structural (schema-level) rejection; positions are lost once the
/// document is a value tree, so these anchor to the whole input.
fn s_err(detail: impl Into<String>) -> ParseError {
    ParseError::whole_input(ParseErrorKind::Structure {
        detail: detail.into(),
    })
}

fn want_arr<'v>(
    obj: &'v BTreeMap<String, Value>,
    key: &'static str,
) -> Result<&'v [Value], ParseError> {
    obj.get(key)
        .and_then(|v| v.as_arr())
        .ok_or_else(|| s_err(format!("missing or non-array `{key}`")))
}

fn want_str<'v>(
    obj: &'v BTreeMap<String, Value>,
    key: &str,
    i: usize,
) -> Result<&'v str, ParseError> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| s_err(format!("entry {i}: missing or non-string `{key}`")))
}

fn want_u64(
    obj: &BTreeMap<String, Value>,
    key: &str,
    i: usize,
    max: u64,
) -> Result<u64, ParseError> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .filter(|&v| v <= max)
        .ok_or_else(|| s_err(format!("entry {i}: missing or out-of-range `{key}`")))
}

// ---------------------------------------------------------------------
// The JSON value parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects keep the last value for duplicate keys.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error. Syntax
/// errors carry the 1-based line/column of the offending byte.
fn parse_value(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    /// A positioned syntax error at the current byte.
    fn err(&self, detail: impl Into<String>) -> ParseError {
        let upto = &self.input[..self.pos.min(self.input.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto
            .rsplit('\n')
            .next()
            .map_or(1, |tail| tail.chars().count() + 1);
        ParseError::new(
            line,
            ParseErrorKind::Json {
                detail: detail.into(),
            },
        )
        .at_column(col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Lone surrogates map to U+FFFD; our writer
                            // never produces surrogate pairs.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `input` is a &str, so the
                    // current position sits on a boundary whenever we get
                    // here (escapes and quotes are single bytes).
                    let Some(c) = self.input.get(self.pos..).and_then(|s| s.chars().next()) else {
                        return Err(self.err("malformed UTF-8 sequence"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = self.input.get(start..self.pos).unwrap_or_default();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn network_round_trips() {
        let net = topo::ring(5, 2);
        let json = network_to_json(&net);
        let back = network_from_json(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_channels(), net.num_channels());
        assert_eq!(back.label(), net.label());
        for ((_, a), (_, b)) in net.nodes().zip(back.nodes()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.name, b.name);
            assert_eq!(a.max_ports, b.max_ports);
            assert_eq!(a.coord, b.coord);
            assert_eq!(a.level, b.level);
        }
        for ((_, a), (_, b)) in net.channels().zip(back.channels()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.src_port, b.src_port);
            assert_eq!(a.dst_port, b.dst_port);
            assert_eq!(a.rev, b.rev);
        }
    }

    #[test]
    fn tree_with_coords_round_trips() {
        let net = topo::kary_ntree(2, 3);
        let back = network_from_json(&network_to_json(&net)).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_channels(), net.num_channels());
        for ((_, a), (_, b)) in net.nodes().zip(back.nodes()) {
            assert_eq!(a.coord, b.coord);
            assert_eq!(a.level, b.level);
        }
    }

    #[test]
    fn corrupt_json_is_rejected_with_position() {
        let e = network_from_json("{not json").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Json { .. }));
        assert_eq!(e.line, 1);
        assert_eq!(e.column, Some(2));

        let e = network_from_json("{\"label\": \"x\",\n  ?}").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, Some(3));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowing() {
        let hostile = "[".repeat(100_000);
        let e = network_from_json(&hostile).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Json { .. }));
        assert!(e.to_string().contains("nesting"));
    }

    #[test]
    fn inconsistent_network_is_rejected_not_panicking() {
        // Structurally valid JSON whose contents no builder would
        // produce: a cable to a node that does not exist, a port
        // collision, and a self-loop.
        let nodes = r#""nodes":[{"kind":"switch","name":"s0","ports":4},
                                 {"kind":"switch","name":"s1","ports":4}]"#;
        for cables in [
            r#"[{"src":0,"src_port":1,"dst":99,"dst_port":1,"bidi":true}]"#,
            r#"[{"src":0,"src_port":1,"dst":1,"dst_port":1,"bidi":true},
                {"src":0,"src_port":1,"dst":1,"dst_port":2,"bidi":true}]"#,
            r#"[{"src":0,"src_port":1,"dst":0,"dst_port":2,"bidi":true}]"#,
        ] {
            let doc = format!("{{{nodes},\"cables\":{cables}}}");
            let e = network_from_json(&doc).unwrap_err();
            assert!(
                matches!(e.kind, ParseErrorKind::Structure { .. }),
                "{doc} -> {e}"
            );
        }
    }

    #[test]
    fn limits_apply_to_json_networks() {
        let net = topo::ring(5, 1);
        let json = network_to_json(&net);
        let limits = FormatLimits {
            max_switches: 2,
            ..FormatLimits::default()
        };
        let e = network_from_json_with(&json, &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "switches",
                ..
            }
        ));
        let limits = FormatLimits {
            max_input_len: 8,
            ..FormatLimits::default()
        };
        let e = network_from_json_with(&json, &limits).unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "input length",
                ..
            }
        ));
    }

    #[test]
    fn routes_round_trip() {
        let net = topo::ring(4, 1);
        let mut r = Routes::new(&net, "test");
        let t0 = net.terminals()[0];
        r.set_next(t0, 1, net.out_channels(t0)[0]);
        r.set_layer(0, 1, 2);
        let back = routes_from_json(&routes_to_json(&r)).unwrap();
        assert_eq!(back.engine(), "test");
        assert_eq!(back.num_layers(), 3);
        assert_eq!(back.layer(0, 1), 2);
        assert_eq!(back.next_hop(t0, 1), r.next_hop(t0, 1));
        assert_eq!(back.num_terminals(), r.num_terminals());
        assert_eq!(back.num_nodes(), r.num_nodes());
    }

    #[test]
    fn corrupt_routes_are_rejected_not_panicking() {
        for doc in [
            // vl matrix too short for num_terminals.
            r#"{"num_terminals":2,"next":[[null,null],[null,null]],"vl":[0]}"#,
            // Ragged next rows.
            r#"{"num_terminals":2,"next":[[null],[null,null]],"vl":[0,0,0,0]}"#,
            // Layer out of the representable range.
            r#"{"num_terminals":1,"next":[[null]],"vl":[255]}"#,
            // num_layers contradicts the vl table.
            r#"{"num_terminals":1,"num_layers":7,"next":[[null]],"vl":[0]}"#,
            // Channel id colliding with the NONE sentinel.
            r#"{"num_terminals":1,"next":[[4294967295]],"vl":[0]}"#,
        ] {
            let e = routes_from_json(doc).unwrap_err();
            assert!(
                matches!(e.kind, ParseErrorKind::Structure { .. }),
                "{doc} -> {e}"
            );
        }
    }
}
