//! JSON round-tripping for [`Network`] and [`Routes`].

use crate::{Network, Routes};

/// Serialize a network to a JSON string.
pub fn network_to_json(net: &Network) -> String {
    serde_json::to_string(net).expect("network serialization cannot fail")
}

/// Parse a network from JSON and validate its internal consistency.
pub fn network_from_json(s: &str) -> Result<Network, String> {
    let net: Network = serde_json::from_str(s).map_err(|e| e.to_string())?;
    net.validate()?;
    Ok(net)
}

/// Serialize routes to a JSON string.
pub fn routes_to_json(routes: &Routes) -> String {
    serde_json::to_string(routes).expect("routes serialization cannot fail")
}

/// Parse routes from JSON.
pub fn routes_from_json(s: &str) -> Result<Routes, String> {
    serde_json::from_str(s).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn network_round_trips() {
        let net = topo::ring(5, 2);
        let json = network_to_json(&net);
        let back = network_from_json(&json).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_channels(), net.num_channels());
        assert_eq!(back.label(), net.label());
        for ((_, a), (_, b)) in net.channels().zip(back.channels()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.rev, b.rev);
        }
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(network_from_json("{not json").is_err());
    }

    #[test]
    fn routes_round_trip() {
        let net = topo::ring(4, 1);
        let mut r = Routes::new(&net, "test");
        let t0 = net.terminals()[0];
        let s0 = net.channel(net.out_channels(t0)[0]).dst;
        r.set_next(t0, 1, net.out_channels(t0)[0]);
        r.set_layer(0, 1, 2);
        let back = routes_from_json(&routes_to_json(&r)).unwrap();
        assert_eq!(back.num_layers(), 3);
        assert_eq!(back.layer(0, 1), 2);
        assert_eq!(back.next_hop(t0, 1), r.next_hop(t0, 1));
        let _ = s0;
    }
}
