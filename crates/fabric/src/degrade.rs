//! Failure injection and recovery: remove cables or switches from a
//! network, restore them, and carve out the serving core of a
//! partitioned fabric.
//!
//! The paper's introduction motivates DFSSSP with networks that grew or
//! degraded away from their ideal structure ("supercomputers are extended
//! later and topologies grow with the machines"); these helpers create
//! such networks from the regular generators. Node names and *port
//! numbers* survive every rebuild, so a degraded network's hardware can
//! be identified with its ancestor's — the property the subnet manager's
//! fault-tolerance loop relies on to address events and diff tables
//! across rebuilds.

use crate::graph::{ChannelId, NodeId, NodeKind};
use crate::{Network, NetworkBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::{FxHashMap, FxHashSet};

/// Rebuild `net` without the channels in `dead_channels` and without the
/// nodes in `dead_nodes` (and all channels touching them). Names, kinds,
/// coordinates, levels and port numbers are preserved: a surviving cable
/// keeps the exact ports it was plugged into, like real hardware.
pub fn remove(
    net: &Network,
    dead_nodes: &FxHashSet<NodeId>,
    dead_channels: &FxHashSet<ChannelId>,
) -> Network {
    let mut b = NetworkBuilder::new();
    b.label(format!("{}-degraded", net.label()));
    let mut map = vec![None; net.num_nodes()];
    for (id, node) in net.nodes() {
        if dead_nodes.contains(&id) {
            continue;
        }
        let new = b.add_node(node.kind, node.name.clone(), node.max_ports);
        if let Some(c) = &node.coord {
            b.set_coord(new, c.clone());
        }
        if let Some(l) = node.level {
            b.set_level(new, l);
        }
        map[id.idx()] = Some(new);
    }
    let mut done = vec![false; net.num_channels()];
    for (id, ch) in net.channels() {
        if done[id.idx()] || dead_channels.contains(&id) {
            continue;
        }
        done[id.idx()] = true;
        let (Some(src), Some(dst)) = (map[ch.src.idx()], map[ch.dst.idx()]) else {
            continue;
        };
        match ch.rev {
            Some(r) if !dead_channels.contains(&r) => {
                done[r.idx()] = true;
                b.link_at(src, ch.src_port, dst, ch.dst_port)
                    .expect("surviving ports cannot collide on removal");
            }
            _ => {
                b.add_channel_at(src, ch.src_port, dst, ch.dst_port)
                    .expect("surviving ports cannot collide on removal");
            }
        }
    }
    let rebuilt = b.build();
    // Every degrade-path mutation (remove/restore/extract_core all land
    // here) must leave the flat CSR views in lockstep with the adjacency
    // lists — the routing hot loops read only the CSR.
    debug_assert!(
        rebuilt.out_csr.agrees_with(&rebuilt.out_adj),
        "degrade left out_csr out of sync with out_adj"
    );
    debug_assert!(
        rebuilt.in_csr.agrees_with(&rebuilt.in_adj),
        "degrade left in_csr out of sync with in_adj"
    );
    rebuilt
}

/// Rebuild `degraded` with hardware of `reference` brought back:
/// the nodes in `revive_nodes` and the channels in `revive_channels`
/// (both identified by their *reference* ids). `reference` must be the
/// pristine network `degraded` was derived from via [`remove`] — node
/// names and port numbers identify the surviving hardware.
///
/// A channel absent from `degraded` between two *live* endpoints is an
/// individually failed cable and stays down unless revived; a channel
/// that was down only because an endpoint node was dead comes back
/// automatically when that node is revived (switch recovery restores its
/// cabling, cable failures persist).
pub fn restore(
    degraded: &Network,
    reference: &Network,
    revive_nodes: &FxHashSet<NodeId>,
    revive_channels: &FxHashSet<ChannelId>,
) -> Network {
    let mut alive_name: FxHashMap<&str, NodeId> = FxHashMap::default();
    for (id, node) in degraded.nodes() {
        alive_name.insert(node.name.as_str(), id);
    }
    // Reference nodes still missing after revival.
    let mut dead_nodes = FxHashSet::default();
    let mut alive = vec![false; reference.num_nodes()];
    for (id, node) in reference.nodes() {
        if alive_name.contains_key(node.name.as_str()) || revive_nodes.contains(&id) {
            alive[id.idx()] = true;
        } else {
            dead_nodes.insert(id);
        }
    }
    // A reference channel is present in `degraded` iff its source node
    // survives and still transmits on the same port.
    let present = |id: ChannelId| -> bool {
        let ch = reference.channel(id);
        let Some(&src) = alive_name.get(reference.node(ch.src).name.as_str()) else {
            return false;
        };
        degraded
            .out_channels(src)
            .iter()
            .any(|&c| degraded.channel(c).src_port == ch.src_port)
    };
    let mut dead_channels = FxHashSet::default();
    for (id, ch) in reference.channels() {
        if present(id) || revive_channels.contains(&id) {
            continue;
        }
        if let Some(r) = ch.rev {
            if revive_channels.contains(&r) {
                continue; // either direction's id revives the cable
            }
        }
        let both_were_alive = alive_name.contains_key(reference.node(ch.src).name.as_str())
            && alive_name.contains_key(reference.node(ch.dst).name.as_str());
        if both_were_alive {
            dead_channels.insert(id); // individually failed cable
        }
        // Otherwise the channel was down because an endpoint was: it
        // follows its endpoints (absent while dead, back when revived).
    }
    remove(reference, &dead_nodes, &dead_channels)
}

/// Carve the largest serving core out of a (possibly disconnected)
/// network: the mutually-reachable node set of the undirected component
/// holding the most terminals (ties: most nodes, then lowest node id).
/// Returns the core as its own network plus the ids (of `net`) of the
/// stranded nodes left outside it.
pub fn extract_core(net: &Network) -> (Network, Vec<NodeId>) {
    let n = net.num_nodes();
    // Undirected components over all channels.
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    let mut queue = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = ncomp;
        queue.push(NodeId(start as u32));
        while let Some(v) = queue.pop() {
            for &c in net.out_channels(v).iter().chain(net.in_channels(v)) {
                let ch = net.channel(c);
                for w in [ch.src, ch.dst] {
                    if comp[w.idx()] == usize::MAX {
                        comp[w.idx()] = ncomp;
                        queue.push(w);
                    }
                }
            }
        }
        ncomp += 1;
    }
    let mut terminals = vec![0usize; ncomp];
    let mut sizes = vec![0usize; ncomp];
    for (id, node) in net.nodes() {
        sizes[comp[id.idx()]] += 1;
        if node.kind == NodeKind::Terminal {
            terminals[comp[id.idx()]] += 1;
        }
    }
    let best = (0..ncomp)
        .max_by_key(|&c| (terminals[c], sizes[c], std::cmp::Reverse(c)))
        .expect("a network has at least one component");
    // Within the best component, keep the strong component of its
    // lowest-id node (for all-bidirectional fabrics this is the whole
    // component; unidirectional channels can shrink it further).
    let pivot = NodeId((0..n).find(|&i| comp[i] == best).expect("non-empty") as u32);
    let fwd = reach(net, pivot, false);
    let bwd = reach(net, pivot, true);
    let mut dead = FxHashSet::default();
    let mut stranded = Vec::new();
    for i in 0..n {
        if !(fwd[i] && bwd[i]) {
            dead.insert(NodeId(i as u32));
            stranded.push(NodeId(i as u32));
        }
    }
    (remove(net, &dead, &FxHashSet::default()), stranded)
}

/// Nodes reachable from `start` following channels forward (or backward).
fn reach(net: &Network, start: NodeId, backward: bool) -> Vec<bool> {
    let mut seen = vec![false; net.num_nodes()];
    seen[start.idx()] = true;
    let mut queue = vec![start];
    while let Some(v) = queue.pop() {
        let chans = if backward {
            net.in_channels(v)
        } else {
            net.out_channels(v)
        };
        for &c in chans {
            let ch = net.channel(c);
            let w = if backward { ch.src } else { ch.dst };
            if !seen[w.idx()] {
                seen[w.idx()] = true;
                queue.push(w);
            }
        }
    }
    seen
}

/// Bridge cables of `net`: bidirectional channel pairs whose removal
/// disconnects the undirected cable graph. Both direction ids of each
/// bridge are in the returned set. Parallel cables between the same
/// switch pair are handled (neither is a bridge). Unidirectional
/// channels are not cables and are ignored.
pub fn cable_bridges(net: &Network) -> FxHashSet<ChannelId> {
    let n = net.num_nodes();
    // One undirected edge per cable, keyed by the lower channel id.
    let mut edges: Vec<(NodeId, NodeId, ChannelId)> = Vec::new();
    let mut adj: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
    for (id, ch) in net.channels() {
        match ch.rev {
            Some(r) if r.0 > id.0 => {
                let e = edges.len();
                edges.push((ch.src, ch.dst, id));
                adj[ch.src.idx()].push((ch.dst, e));
                adj[ch.dst.idx()].push((ch.src, e));
            }
            _ => {}
        }
    }
    // Iterative Tarjan low-link over the undirected multigraph: a tree
    // edge (v, w) is a bridge iff low[w] > disc[v]; entering a node again
    // through a different parallel edge keeps both off the bridge list.
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut bridges = FxHashSet::default();
    let mut timer = 0u32;
    // Stack frames: (node, incoming edge, next adjacency index).
    let mut stack: Vec<(NodeId, usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != u32::MAX {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((NodeId(root as u32), usize::MAX, 0));
        while let Some(&mut (v, via, ref mut next)) = stack.last_mut() {
            let slot = *next;
            *next += 1;
            if let Some(&(w, e)) = adj[v.idx()].get(slot) {
                if e == via {
                    continue; // the edge we came in on; a parallel edge differs
                }
                if disc[w.idx()] == u32::MAX {
                    disc[w.idx()] = timer;
                    low[w.idx()] = timer;
                    timer += 1;
                    stack.push((w, e, 0));
                } else {
                    low[v.idx()] = low[v.idx()].min(disc[w.idx()]);
                }
            } else {
                stack.pop();
                if let Some(&(parent, _, _)) = stack.last() {
                    low[parent.idx()] = low[parent.idx()].min(low[v.idx()]);
                    if low[v.idx()] > disc[parent.idx()] {
                        let c = edges[via].2;
                        bridges.insert(c);
                        if let Some(r) = net.channel(c).rev {
                            bridges.insert(r);
                        }
                    }
                }
            }
        }
    }
    bridges
}

/// Remove `count` random cables (bidirectional channel pairs), skipping
/// any removal that would disconnect the network or isolate a terminal.
/// Returns the degraded network and the number of cables actually removed
/// (which can be lower than `count` on sparse networks).
pub fn fail_random_cables(net: &Network, count: usize, seed: u64) -> (Network, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = net.clone();
    let mut removed = 0;
    // With unidirectional channels around, undirected bridges are too
    // conservative a filter (a directed shortcut can cover for a cable),
    // so fall back to testing candidates by trial removal.
    let mixed = net.channels().any(|(_, c)| c.rev.is_none());
    while removed < count {
        // Bridges are computed once per removal round — O(V + E) — so
        // only the chosen candidate's network is ever cloned.
        let bridges = if mixed {
            FxHashSet::default()
        } else {
            cable_bridges(&current)
        };
        let mut cables: Vec<ChannelId> = current
            .channels()
            .filter(|(id, c)| {
                c.rev.is_some()
                    && current.node(c.src).kind == NodeKind::Switch
                    && current.node(c.dst).kind == NodeKind::Switch
                    && !bridges.contains(id)
            })
            .map(|(id, _)| id)
            .collect();
        if cables.is_empty() {
            break; // every remaining cable is a bridge
        }
        cables.shuffle(&mut rng);
        let mut progressed = false;
        for cand in cables {
            let rev = current.channel(cand).rev.unwrap();
            let dead: FxHashSet<ChannelId> = [cand, rev].into_iter().collect();
            let candidate = remove(&current, &FxHashSet::default(), &dead);
            if candidate.is_strongly_connected() {
                current = candidate;
                removed += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    (current, removed)
}

/// Remove one switch (and everything attached to it must survive: switches
/// with terminals attached are skipped). Returns `None` if no switch can
/// be removed without disconnecting the network or stranding terminals.
pub fn fail_random_switch(net: &Network, seed: u64) -> Option<Network> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<NodeId> = net
        .switches()
        .iter()
        .copied()
        .filter(|&s| {
            net.out_channels(s)
                .iter()
                .all(|&c| net.node(net.channel(c).dst).kind == NodeKind::Switch)
        })
        .collect();
    candidates.shuffle(&mut rng);
    for s in candidates {
        let dead: FxHashSet<NodeId> = [s].into_iter().collect();
        let candidate = remove(net, &dead, &FxHashSet::default());
        if candidate.is_strongly_connected() {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn removing_nothing_preserves_structure() {
        let net = topo::torus(&[3, 3], 1);
        let same = remove(&net, &FxHashSet::default(), &FxHashSet::default());
        assert_eq!(same.num_nodes(), net.num_nodes());
        assert_eq!(same.num_channels(), net.num_channels());
        same.validate().unwrap();
    }

    #[test]
    fn removal_preserves_port_numbers() {
        let net = topo::kary_ntree(2, 3);
        let victim = net
            .channels()
            .find(|(_, c)| c.rev.is_some() && net.is_switch(c.src) && net.is_switch(c.dst))
            .map(|(id, _)| id)
            .unwrap();
        let rev = net.channel(victim).rev.unwrap();
        let dead: FxHashSet<ChannelId> = [victim, rev].into_iter().collect();
        let degraded = remove(&net, &FxHashSet::default(), &dead);
        degraded.validate().unwrap();
        for (_, ch) in degraded.channels() {
            let src = net
                .node_by_name(&degraded.node(ch.src).name)
                .expect("same nodes");
            let orig = net
                .out_channels(src)
                .iter()
                .find(|&&c| net.channel(c).src_port == ch.src_port)
                .map(|&c| net.channel(c))
                .expect("cable existed at this port before degradation");
            assert_eq!(net.node(orig.dst).name, degraded.node(ch.dst).name);
            assert_eq!(orig.dst_port, ch.dst_port);
        }
    }

    #[test]
    fn restore_round_trips() {
        let net = topo::torus(&[3, 3], 1);
        let victim = net
            .channels()
            .find(|(_, c)| net.is_switch(c.src) && net.is_switch(c.dst))
            .map(|(id, _)| id)
            .unwrap();
        let rev = net.channel(victim).rev.unwrap();
        let dead_ch: FxHashSet<ChannelId> = [victim, rev].into_iter().collect();
        let sw = net.switches()[4];
        let dead_n: FxHashSet<NodeId> = [sw].into_iter().collect();
        let degraded = remove(&net, &dead_n, &dead_ch);

        // Reviving only the switch brings back its cables, not the
        // individually failed one.
        let half = restore(&degraded, &net, &dead_n, &FxHashSet::default());
        assert_eq!(half.num_nodes(), net.num_nodes());
        assert_eq!(half.num_cables(), net.num_cables() - 1);

        // Reviving both restores the reference exactly.
        let whole = restore(&half, &net, &FxHashSet::default(), &dead_ch);
        assert_eq!(whole.num_nodes(), net.num_nodes());
        assert_eq!(whole.num_channels(), net.num_channels());
        whole.validate().unwrap();
        for (id, ch) in net.channels() {
            let r = whole
                .node_by_name(&net.node(ch.src).name)
                .and_then(|src| {
                    whole
                        .out_channels(src)
                        .iter()
                        .find(|&&c| whole.channel(c).src_port == ch.src_port)
                        .map(|&c| whole.channel(c))
                })
                .unwrap_or_else(|| panic!("channel {id:?} missing after restore"));
            assert_eq!(whole.node(r.dst).name, net.node(ch.dst).name);
        }
    }

    #[test]
    fn extract_core_keeps_the_bigger_side() {
        // Two islands: a 3-ring with 3 terminals and a lone switch with 1.
        let mut b = NetworkBuilder::new();
        let s: Vec<_> = (0..3).map(|i| b.add_switch(format!("s{i}"), 8)).collect();
        for i in 0..3 {
            b.link(s[i], s[(i + 1) % 3]).unwrap();
            let t = b.add_terminal(format!("t{i}"));
            b.link(t, s[i]).unwrap();
        }
        let lone = b.add_switch("lone", 4);
        let tl = b.add_terminal("tl");
        b.link(tl, lone).unwrap();
        let net = b.build();
        assert!(!net.is_strongly_connected());
        let (core, stranded) = extract_core(&net);
        assert!(core.is_strongly_connected());
        assert_eq!(core.num_terminals(), 3);
        assert_eq!(stranded.len(), 2);
        let names: Vec<&str> = stranded
            .iter()
            .map(|&n| net.node(n).name.as_str())
            .collect();
        assert!(names.contains(&"lone") && names.contains(&"tl"));
    }

    #[test]
    fn bridge_detection_on_line_ring_and_parallel_cables() {
        // Line: both cables are bridges.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 8);
        let s1 = b.add_switch("s1", 8);
        let s2 = b.add_switch("s2", 8);
        b.link(s0, s1).unwrap();
        b.link(s1, s2).unwrap();
        let line = b.build();
        assert_eq!(cable_bridges(&line).len(), 4, "2 cables x 2 directions");

        // Ring: no bridges.
        let ring = topo::ring(4, 0);
        assert!(cable_bridges(&ring).is_empty());

        // Two parallel cables between the same pair: neither is a bridge.
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a", 8);
        let c = b.add_switch("c", 8);
        b.link(a, c).unwrap();
        b.link(a, c).unwrap();
        let parallel = b.build();
        assert!(cable_bridges(&parallel).is_empty());
    }

    #[test]
    fn cable_failures_keep_connectivity() {
        let net = topo::torus(&[4, 4], 1);
        let (degraded, removed) = fail_random_cables(&net, 5, 42);
        assert_eq!(removed, 5);
        assert!(degraded.is_strongly_connected());
        assert_eq!(degraded.num_terminals(), net.num_terminals());
        assert_eq!(degraded.num_cables(), net.num_cables() - 5,);
        degraded.validate().unwrap();
    }

    #[test]
    fn bridges_are_never_removed() {
        // A ring: removing any single cable keeps it connected, but
        // removing two could split it; the helper must stop at safe ones.
        let net = topo::ring(4, 1);
        let (degraded, removed) = fail_random_cables(&net, 10, 7);
        assert!(degraded.is_strongly_connected());
        assert!(removed <= 1, "after one removal the ring is a line");
    }

    #[test]
    fn switch_failure_preserves_terminals() {
        // k-ary n-tree roots carry no terminals and are redundant.
        let net = topo::kary_ntree(2, 3);
        let degraded = fail_random_switch(&net, 3).expect("a root can fail");
        assert_eq!(degraded.num_terminals(), net.num_terminals());
        assert_eq!(degraded.num_switches(), net.num_switches() - 1);
        assert!(degraded.is_strongly_connected());
    }

    #[test]
    fn star_has_no_removable_switch() {
        let net = topo::star(4);
        assert!(fail_random_switch(&net, 0).is_none());
    }

    #[test]
    fn degrade_keeps_csr_in_sync() {
        let net = topo::torus(&[3, 3], 1);
        let (degraded, _) = fail_random_cables(&net, 3, 11);
        assert!(degraded.out_csr.agrees_with(&degraded.out_adj));
        assert!(degraded.in_csr.agrees_with(&degraded.in_adj));
        degraded.validate().unwrap();
        let restored = restore(
            &degraded,
            &net,
            &FxHashSet::default(),
            &FxHashSet::default(),
        );
        assert!(restored.out_csr.agrees_with(&restored.out_adj));
        assert!(restored.in_csr.agrees_with(&restored.in_adj));
        restored.validate().unwrap();
    }
}
