//! Failure injection: remove cables or switches from a network while
//! keeping it connected.
//!
//! The paper's introduction motivates DFSSSP with networks that grew or
//! degraded away from their ideal structure ("supercomputers are extended
//! later and topologies grow with the machines"); these helpers create
//! such networks from the regular generators.

use crate::graph::{ChannelId, NodeId, NodeKind};
use crate::{Network, NetworkBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashSet;

/// Rebuild `net` without the channels in `dead_channels` and without the
/// nodes in `dead_nodes` (and all channels touching them). Names, kinds,
/// coordinates and levels are preserved; ports are renumbered.
pub fn remove(
    net: &Network,
    dead_nodes: &FxHashSet<NodeId>,
    dead_channels: &FxHashSet<ChannelId>,
) -> Network {
    let mut b = NetworkBuilder::new();
    b.label(format!("{}-degraded", net.label()));
    let mut map = vec![None; net.num_nodes()];
    for (id, node) in net.nodes() {
        if dead_nodes.contains(&id) {
            continue;
        }
        let new = b.add_node(node.kind, node.name.clone(), node.max_ports);
        if let Some(c) = &node.coord {
            b.set_coord(new, c.clone());
        }
        if let Some(l) = node.level {
            b.set_level(new, l);
        }
        map[id.idx()] = Some(new);
    }
    let mut done = vec![false; net.num_channels()];
    for (id, ch) in net.channels() {
        if done[id.idx()] || dead_channels.contains(&id) {
            continue;
        }
        done[id.idx()] = true;
        let (Some(src), Some(dst)) = (map[ch.src.idx()], map[ch.dst.idx()]) else {
            continue;
        };
        match ch.rev {
            Some(r) if !dead_channels.contains(&r) => {
                done[r.idx()] = true;
                b.link(src, dst).expect("ports cannot overflow on removal");
            }
            _ => {
                b.add_channel(src, dst)
                    .expect("ports cannot overflow on removal");
            }
        }
    }
    b.build()
}

/// Remove `count` random cables (bidirectional channel pairs), skipping
/// any removal that would disconnect the network or isolate a terminal.
/// Returns the degraded network and the number of cables actually removed
/// (which can be lower than `count` on sparse networks).
pub fn fail_random_cables(net: &Network, count: usize, seed: u64) -> (Network, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = net.clone();
    let mut removed = 0;
    let mut attempts = 0;
    while removed < count && attempts < 20 * count + 100 {
        attempts += 1;
        // Candidate cables: switch-switch bidirectional pairs only, so
        // terminals keep their attachment.
        let mut cables: Vec<ChannelId> = current
            .channels()
            .filter(|(_, c)| {
                c.rev.is_some()
                    && current.node(c.src).kind == NodeKind::Switch
                    && current.node(c.dst).kind == NodeKind::Switch
            })
            .map(|(id, _)| id)
            .collect();
        if cables.is_empty() {
            break;
        }
        cables.shuffle(&mut rng);
        let mut progressed = false;
        for cand in cables {
            let rev = current.channel(cand).rev.unwrap();
            let dead: FxHashSet<ChannelId> = [cand, rev].into_iter().collect();
            let candidate = remove(&current, &FxHashSet::default(), &dead);
            if candidate.is_strongly_connected() {
                current = candidate;
                removed += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break; // every remaining cable is a bridge
        }
    }
    (current, removed)
}

/// Remove one switch (and everything attached to it must survive: switches
/// with terminals attached are skipped). Returns `None` if no switch can
/// be removed without disconnecting the network or stranding terminals.
pub fn fail_random_switch(net: &Network, seed: u64) -> Option<Network> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<NodeId> = net
        .switches()
        .iter()
        .copied()
        .filter(|&s| {
            net.out_channels(s)
                .iter()
                .all(|&c| net.node(net.channel(c).dst).kind == NodeKind::Switch)
        })
        .collect();
    candidates.shuffle(&mut rng);
    for s in candidates {
        let dead: FxHashSet<NodeId> = [s].into_iter().collect();
        let candidate = remove(net, &dead, &FxHashSet::default());
        if candidate.is_strongly_connected() {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn removing_nothing_preserves_structure() {
        let net = topo::torus(&[3, 3], 1);
        let same = remove(&net, &FxHashSet::default(), &FxHashSet::default());
        assert_eq!(same.num_nodes(), net.num_nodes());
        assert_eq!(same.num_channels(), net.num_channels());
        same.validate().unwrap();
    }

    #[test]
    fn cable_failures_keep_connectivity() {
        let net = topo::torus(&[4, 4], 1);
        let (degraded, removed) = fail_random_cables(&net, 5, 42);
        assert_eq!(removed, 5);
        assert!(degraded.is_strongly_connected());
        assert_eq!(degraded.num_terminals(), net.num_terminals());
        assert_eq!(degraded.num_cables(), net.num_cables() - 5,);
        degraded.validate().unwrap();
    }

    #[test]
    fn bridges_are_never_removed() {
        // A ring: removing any single cable keeps it connected, but
        // removing two could split it; the helper must stop at safe ones.
        let net = topo::ring(4, 1);
        let (degraded, removed) = fail_random_cables(&net, 10, 7);
        assert!(degraded.is_strongly_connected());
        assert!(removed <= 1, "after one removal the ring is a line");
    }

    #[test]
    fn switch_failure_preserves_terminals() {
        // k-ary n-tree roots carry no terminals and are redundant.
        let net = topo::kary_ntree(2, 3);
        let degraded = fail_random_switch(&net, 3).expect("a root can fail");
        assert_eq!(degraded.num_terminals(), net.num_terminals());
        assert_eq!(degraded.num_switches(), net.num_switches() - 1);
        assert!(degraded.is_strongly_connected());
    }

    #[test]
    fn star_has_no_removable_switch() {
        let net = topo::star(4);
        assert!(fail_random_switch(&net, 0).is_none());
    }
}
