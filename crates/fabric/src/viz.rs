//! Graphviz DOT export — render a fabric (optionally with per-channel
//! loads) for papers, debugging and the Fig 11-style topology pictures.

use crate::graph::{Network, NodeKind};
use std::fmt::Write as _;

/// Options for the DOT rendering.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Per-channel loads (e.g. from `Routes::channel_loads`); when
    /// present, cable labels show `fwd/rev` loads and the heaviest cables
    /// are drawn bold.
    pub channel_loads: Option<Vec<u32>>,
    /// Hide terminals (draw the switch fabric only).
    pub switches_only: bool,
}

/// Render `net` as an undirected Graphviz graph. Bidirectional cables
/// become one edge; unidirectional channels become directed edges in a
/// `digraph`-compatible `edge [dir=forward]` cluster (kept simple: they
/// are emitted as edges with an arrowhead attribute).
pub fn to_dot(net: &Network, opts: &DotOptions) -> String {
    let mut out = String::from("graph fabric {\n  overlap=false;\n");
    let _ = writeln!(out, "  label=\"{}\";", net.label().replace('"', "'"));
    let max_load = opts
        .channel_loads
        .as_ref()
        .and_then(|l| l.iter().copied().max())
        .unwrap_or(0);
    for (id, node) in net.nodes() {
        match node.kind {
            NodeKind::Switch => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=box, label=\"{}\"];",
                    id.0,
                    node.name.replace('"', "'")
                );
            }
            NodeKind::Terminal if !opts.switches_only => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=ellipse, fontsize=9, label=\"{}\"];",
                    id.0,
                    node.name.replace('"', "'")
                );
            }
            _ => {}
        }
    }
    let mut drawn = vec![false; net.num_channels()];
    for (id, ch) in net.channels() {
        if drawn[id.idx()] {
            continue;
        }
        drawn[id.idx()] = true;
        if opts.switches_only
            && (net.node(ch.src).kind == NodeKind::Terminal
                || net.node(ch.dst).kind == NodeKind::Terminal)
        {
            continue;
        }
        let mut attrs: Vec<String> = Vec::new();
        match ch.rev {
            Some(r) => {
                drawn[r.idx()] = true;
                if let Some(loads) = &opts.channel_loads {
                    let (f, b) = (loads[id.idx()], loads[r.idx()]);
                    attrs.push(format!("label=\"{f}/{b}\""));
                    if max_load > 0 && f.max(b) * 4 >= max_load * 3 {
                        attrs.push("penwidth=3".into());
                    }
                }
            }
            None => {
                attrs.push("dir=forward".into());
                if let Some(loads) = &opts.channel_loads {
                    attrs.push(format!("label=\"{}\"", loads[id.idx()]));
                }
            }
        }
        let attr_str = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        let _ = writeln!(out, "  n{} -- n{}{attr_str};", ch.src.0, ch.dst.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn renders_every_node_and_cable_once() {
        let net = topo::ring(4, 1);
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.starts_with("graph fabric {"));
        assert_eq!(dot.matches("shape=box").count(), 4);
        assert_eq!(dot.matches("shape=ellipse").count(), 4);
        assert_eq!(dot.matches(" -- ").count(), net.num_cables());
    }

    #[test]
    fn switches_only_hides_terminals() {
        let net = topo::kary_ntree(2, 2);
        let dot = to_dot(
            &net,
            &DotOptions {
                switches_only: true,
                ..Default::default()
            },
        );
        assert_eq!(dot.matches("shape=ellipse").count(), 0);
        // Only the 4 switch-switch cables remain.
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn loads_become_labels_and_bold_hotspots() {
        let net = topo::ring(3, 1);
        let mut loads = vec![0u32; net.num_channels()];
        loads[0] = 10; // hottest
        loads[1] = 1;
        let dot = to_dot(
            &net,
            &DotOptions {
                channel_loads: Some(loads),
                ..Default::default()
            },
        );
        assert!(dot.contains("label=\"10/1\""));
        assert!(dot.contains("penwidth=3"));
    }

    #[test]
    fn unidirectional_channels_get_arrows() {
        let net = topo::kautz(2, 1, 0, false);
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.contains("dir=forward"));
    }
}
