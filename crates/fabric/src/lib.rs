//! Network fabric model for the DFSSSP reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Network`] — a directed multigraph of switches and terminals connected
//!   by unidirectional *channels* (a bidirectional cable is a pair of
//!   channels that are each other's [`Channel::rev`]). This mirrors the
//!   channel model of Dally & Seitz that the paper's deadlock analysis uses.
//! * [`NetworkBuilder`] — incremental construction with port bookkeeping,
//!   mirroring how an InfiniBand fabric is cabled port-by-port.
//! * [`topo`] — generators for every topology family in the paper's
//!   evaluation (Table I, Figs 4–11): rings, meshes, tori, hypercubes,
//!   k-ary n-trees, extended generalized fat trees (XGFT), Kautz graphs,
//!   random irregular networks, and synthetic reconstructions of the six
//!   real-world systems.
//! * [`tables`] — forwarding tables + virtual-layer assignment, the artifact
//!   every routing engine produces and every simulator consumes.
//! * [`format`] — text and JSON interchange formats for networks and routes.
//! * [`degrade`] — link/switch failure injection to create the irregular
//!   networks the paper's introduction motivates.
//! * [`reverse`] — channel → destination-tree reverse index, the lookup
//!   structure incremental rerouting uses to map a failed cable to the
//!   destination columns it dirties.

pub mod builder;
pub mod degrade;
pub mod format;
pub mod graph;
pub mod reverse;
pub mod stats;
pub mod tables;
pub mod topo;
pub mod viz;

pub use builder::NetworkBuilder;
pub use graph::{Channel, ChannelId, Network, Node, NodeId, NodeKind};
pub use reverse::ReverseIndex;
pub use stats::TopologyStats;
pub use tables::{PathIter, Routes, RoutesError};
