//! Directed multigraph model of an interconnection network.
//!
//! Nodes are either *switches* (routing elements with a bounded number of
//! ports, e.g. 36-port InfiniBand switches) or *terminals* (endpoints /
//! channel adapters). Every physical cable is represented by two
//! unidirectional [`Channel`]s, one per direction, which are each other's
//! [`Channel::rev`]. Purely unidirectional links (e.g. a classical directed
//! Kautz network) have `rev == None`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a node (switch or terminal) in a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a unidirectional channel in a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl NodeId {
    /// The raw index as a usize, for indexing per-node arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// The raw index as a usize, for indexing per-channel arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Kind of a network node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// A routing element; holds a forwarding table.
    Switch,
    /// An endpoint (InfiniBand: host channel adapter). Sources and sinks
    /// of traffic; `Routes` destinations are always terminals.
    Terminal,
}

/// A node of the network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Switch or terminal.
    pub kind: NodeKind,
    /// Human-readable name (used by the text format and error messages).
    pub name: String,
    /// Maximum number of ports (cable attachment points). Switch radix.
    pub max_ports: u16,
    /// Optional coordinate for structured topologies (meshes, tori); used
    /// by dimension-order routing.
    pub coord: Option<Vec<u16>>,
    /// Optional tree level for fat-tree-like topologies (0 = leaf level);
    /// used by the fat-tree routing baseline and Up*/Down* root selection.
    pub level: Option<u8>,
}

/// A unidirectional communication channel between two nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Channel {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Port number on `src` this channel leaves from (1-based, like IB).
    pub src_port: u16,
    /// Port number on `dst` this channel arrives at (1-based).
    pub dst_port: u16,
    /// The opposite-direction channel of the same cable, if bidirectional.
    pub rev: Option<ChannelId>,
}

/// Flat compressed-sparse-row adjacency: one contiguous channel-id
/// array plus per-node offsets. The routing hot loops (Dijkstra
/// relaxation, BFS sweeps, reachability walks) iterate adjacency
/// millions of times per run; a CSR row is one pointer-width slice into
/// a single allocation, where the `Vec<Vec<_>>` view costs a dependent
/// load per node and scatters rows across the heap. Built once by
/// [`crate::NetworkBuilder::build`] and rebuilt on every degrade/restore
/// (those rebuild the whole `Network`), so the two views never drift —
/// [`Network::validate`] and debug assertions check the agreement.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub(crate) struct CsrAdj {
    /// `channel_offsets[v]..channel_offsets[v+1]` indexes
    /// `channel_ids` for node `v`; length `num_nodes + 1`.
    pub(crate) channel_offsets: Vec<u32>,
    /// Concatenated per-node channel rows.
    pub(crate) channel_ids: Vec<ChannelId>,
}

impl CsrAdj {
    /// Flatten a `Vec<Vec<_>>` adjacency into CSR form.
    pub(crate) fn from_lists(lists: &[Vec<ChannelId>]) -> CsrAdj {
        let mut channel_offsets = Vec::with_capacity(lists.len() + 1);
        let mut channel_ids = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        channel_offsets.push(0);
        for row in lists {
            channel_ids.extend_from_slice(row);
            channel_offsets.push(channel_ids.len() as u32);
        }
        CsrAdj {
            channel_offsets,
            channel_ids,
        }
    }

    /// The adjacency row of node `i`.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[ChannelId] {
        let s = self.channel_offsets[i] as usize;
        let e = self.channel_offsets[i + 1] as usize;
        &self.channel_ids[s..e]
    }

    /// Whether this CSR is exactly the flattening of `lists` (same rows,
    /// same order). Used by [`Network::validate`] and the degrade-path
    /// debug assertions.
    pub(crate) fn agrees_with(&self, lists: &[Vec<ChannelId>]) -> bool {
        if self.channel_offsets.len() != lists.len() + 1 {
            return false;
        }
        if self.channel_offsets.first() != Some(&0) {
            return false;
        }
        let mut at = 0usize;
        for (i, row) in lists.iter().enumerate() {
            at += row.len();
            if self.channel_offsets.get(i + 1).map(|&o| o as usize) != Some(at) {
                return false;
            }
            if self.channel_ids.get(at - row.len()..at) != Some(&row[..]) {
                return false;
            }
        }
        self.channel_ids.len() == at
    }
}

/// An immutable interconnection network `I = G(N, C)`.
///
/// Built via [`crate::NetworkBuilder`] or one of the [`crate::topo`]
/// generators. Provides O(1) access to per-node adjacency and cached
/// switch/terminal index maps used by routing engines and simulators.
/// Adjacency is served from flat [`CsrAdj`] arrays; the `Vec<Vec<_>>`
/// lists are kept as the construction-order source of truth the CSR is
/// derived from (and checked against).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    pub(crate) nodes: Vec<Node>,
    pub(crate) channels: Vec<Channel>,
    /// Outgoing channels per node (source of truth for `out_csr`).
    pub(crate) out_adj: Vec<Vec<ChannelId>>,
    /// Incoming channels per node (source of truth for `in_csr`).
    pub(crate) in_adj: Vec<Vec<ChannelId>>,
    /// Flat CSR view of `out_adj` — what the hot loops read.
    pub(crate) out_csr: CsrAdj,
    /// Flat CSR view of `in_adj` — what the hot loops read.
    pub(crate) in_csr: CsrAdj,
    /// All switch node ids, in id order.
    pub(crate) switches: Vec<NodeId>,
    /// All terminal node ids, in id order.
    pub(crate) terminals: Vec<NodeId>,
    /// For each node: its index within `terminals`, or `u32::MAX`.
    pub(crate) terminal_index: Vec<u32>,
    /// For each node: its index within `switches`, or `u32::MAX`.
    pub(crate) switch_index: Vec<u32>,
    /// Free-form topology label, e.g. `"xgft(2;8,8;4,4)"`.
    pub(crate) label: String,
}

pub(crate) const NONE_U32: u32 = u32::MAX;

impl Network {
    /// Number of nodes `|N|` (switches + terminals).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional channels `|C|`.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of terminals (endpoints).
    #[inline]
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Number of switches.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// The node with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// The channel with the given id.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.idx()]
    }

    /// All nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All channels with their ids.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i as u32), c))
    }

    /// Channels leaving `node`.
    #[inline]
    pub fn out_channels(&self, node: NodeId) -> &[ChannelId] {
        self.out_csr.row(node.idx())
    }

    /// Channels arriving at `node`.
    #[inline]
    pub fn in_channels(&self, node: NodeId) -> &[ChannelId] {
        self.in_csr.row(node.idx())
    }

    /// All switch ids, ascending.
    #[inline]
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// All terminal ids, ascending.
    #[inline]
    pub fn terminals(&self) -> &[NodeId] {
        &self.terminals
    }

    /// Index of `node` within [`Self::terminals`], if it is a terminal.
    #[inline]
    pub fn terminal_index(&self, node: NodeId) -> Option<usize> {
        match self.terminal_index[node.idx()] {
            NONE_U32 => None,
            i => Some(i as usize),
        }
    }

    /// Index of `node` within [`Self::switches`], if it is a switch.
    #[inline]
    pub fn switch_index(&self, node: NodeId) -> Option<usize> {
        match self.switch_index[node.idx()] {
            NONE_U32 => None,
            i => Some(i as usize),
        }
    }

    /// Whether `node` is a terminal.
    #[inline]
    pub fn is_terminal(&self, node: NodeId) -> bool {
        self.terminal_index[node.idx()] != NONE_U32
    }

    /// Whether `node` is a switch.
    #[inline]
    pub fn is_switch(&self, node: NodeId) -> bool {
        self.switch_index[node.idx()] != NONE_U32
    }

    /// Free-form topology label, e.g. `"kautz(3,3)"`.
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Replace the topology label.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// Find a node by name. O(n); intended for tests and file parsing.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Whether every node can reach every other node along directed
    /// channels. Routing engines require this.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let n = self.nodes.len();
        let reach = |adj: &CsrAdj, forward: bool| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = stack.pop() {
                for &c in adj.row(u.idx()) {
                    let v = if forward {
                        self.channels[c.idx()].dst
                    } else {
                        self.channels[c.idx()].src
                    };
                    if !seen[v.idx()] {
                        seen[v.idx()] = true;
                        count += 1;
                        stack.push(v);
                    }
                }
            }
            count
        };
        reach(&self.out_csr, true) == n && reach(&self.in_csr, false) == n
    }

    /// Graph diameter `d(I)` in hops (over directed channels), computed by
    /// BFS from every node. `None` for disconnected networks.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.nodes.len();
        let mut diameter = 0;
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[s] = 0;
            queue.clear();
            queue.push_back(NodeId(s as u32));
            while let Some(u) = queue.pop_front() {
                for &c in self.out_csr.row(u.idx()) {
                    let v = self.channels[c.idx()].dst;
                    if dist[v.idx()] == u32::MAX {
                        dist[v.idx()] = dist[u.idx()] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let max = *dist.iter().max().unwrap();
            if max == u32::MAX {
                return None;
            }
            diameter = diameter.max(max as usize);
        }
        Some(diameter)
    }

    /// The unique channel from `a` to `b`, if there is exactly one.
    pub fn channel_between(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        let mut found = None;
        for &c in self.out_csr.row(a.idx()) {
            if self.channels[c.idx()].dst == b {
                if found.is_some() {
                    return None; // ambiguous: parallel channels
                }
                found = Some(c);
            }
        }
        found
    }

    /// All channels from `a` to `b` (parallel cables produce several).
    pub fn channels_between(&self, a: NodeId, b: NodeId) -> Vec<ChannelId> {
        self.out_csr
            .row(a.idx())
            .iter()
            .copied()
            .filter(|&c| self.channels[c.idx()].dst == b)
            .collect()
    }

    /// Minimum *routable* hop distances from every node to `dst`,
    /// following channels forward (`hops[v]` = length of a shortest
    /// directed path v→dst). Paths never transit terminals: channel
    /// adapters do not forward, so only `dst` itself and switches are
    /// expanded. This is the metric every routing engine's minimality is
    /// measured against.
    pub fn hops_to(&self, dst: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[dst.idx()] = 0;
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            if u != dst && self.nodes[u.idx()].kind == NodeKind::Terminal {
                continue; // terminals sink traffic; they never forward
            }
            for &c in self.in_csr.row(u.idx()) {
                let v = self.channels[c.idx()].src;
                if dist[v.idx()] == u32::MAX {
                    dist[v.idx()] = dist[u.idx()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Raw minimum hop distances from every node to `dst` over the full
    /// graph, terminals included as transit (a pure graph metric — for
    /// the routable metric see [`Self::hops_to`]). Used for orientation
    /// ranking (Up*/Down* levels) and diagnostics.
    pub fn hops_to_raw(&self, dst: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[dst.idx()] = 0;
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for &c in self.in_csr.row(u.idx()) {
                let v = self.channels[c.idx()].src;
                if dist[v.idx()] == u32::MAX {
                    dist[v.idx()] = dist[u.idx()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Internal consistency check: adjacency lists, index maps and port
    /// assignments all agree. Used by tests and after file parsing.
    ///
    /// This must never panic, whatever the contents: a `Network`
    /// deserialized from untrusted JSON can be arbitrarily inconsistent
    /// (short index maps, dangling channel ids, foreign adjacency), so
    /// every array length is checked before any indexed access.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        let nc = self.channels.len();
        if self.out_adj.len() != n || self.in_adj.len() != n {
            return Err(format!(
                "adjacency arrays cover {}/{} nodes, expected {n}",
                self.out_adj.len(),
                self.in_adj.len()
            ));
        }
        if self.terminal_index.len() != n || self.switch_index.len() != n {
            return Err(format!(
                "index maps cover {}/{} nodes, expected {n}",
                self.terminal_index.len(),
                self.switch_index.len()
            ));
        }
        // The flat CSR views must be exact flattenings of the adjacency
        // lists — hot loops read the CSR, so any drift silently changes
        // routing. `agrees_with` is bounds-checked throughout, safe on
        // arbitrarily inconsistent deserialized input.
        if !self.out_csr.agrees_with(&self.out_adj) {
            return Err("out_csr disagrees with out_adj".to_string());
        }
        if !self.in_csr.agrees_with(&self.in_adj) {
            return Err("in_csr disagrees with in_adj".to_string());
        }
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.src.idx() >= n || ch.dst.idx() >= n {
                return Err(format!("channel c{i} references missing node"));
            }
            if ch.src == ch.dst {
                return Err(format!("channel c{i} is a self-loop"));
            }
            if let Some(r) = ch.rev {
                let Some(rc) = self.channels.get(r.idx()) else {
                    return Err(format!("channel c{i} has a dangling reverse c{}", r.0));
                };
                if rc.src != ch.dst || rc.dst != ch.src || rc.rev != Some(ChannelId(i as u32)) {
                    return Err(format!("channel c{i} has inconsistent reverse"));
                }
            }
        }
        // Every channel must appear exactly once in out_adj (at its src)
        // and once in in_adj (at its dst).
        let mut out_seen = vec![false; nc];
        for (u, outs) in self.out_adj.iter().enumerate() {
            for &c in outs {
                let Some(ch) = self.channels.get(c.idx()) else {
                    return Err(format!("out_adj of n{u} lists missing channel c{}", c.0));
                };
                if ch.src.idx() != u {
                    return Err(format!("out_adj of n{u} lists foreign channel"));
                }
                if std::mem::replace(&mut out_seen[c.idx()], true) {
                    return Err(format!("channel c{} listed twice in out_adj", c.0));
                }
            }
        }
        let mut in_seen = vec![false; nc];
        for (u, ins) in self.in_adj.iter().enumerate() {
            for &c in ins {
                let Some(ch) = self.channels.get(c.idx()) else {
                    return Err(format!("in_adj of n{u} lists missing channel c{}", c.0));
                };
                if ch.dst.idx() != u {
                    return Err(format!("in_adj of n{u} lists foreign channel"));
                }
                if std::mem::replace(&mut in_seen[c.idx()], true) {
                    return Err(format!("channel c{} listed twice in in_adj", c.0));
                }
            }
        }
        if let Some(c) = out_seen.iter().position(|&s| !s) {
            return Err(format!("channel c{c} missing from out_adj"));
        }
        if let Some(c) = in_seen.iter().position(|&s| !s) {
            return Err(format!("channel c{c} missing from in_adj"));
        }
        // Port usage per node must be within max_ports and unique per
        // direction pair (a bidirectional cable uses the same port number
        // for both of its channels).
        let mut used: Vec<Vec<u16>> = vec![Vec::new(); n];
        for ch in &self.channels {
            used[ch.src.idx()].push(ch.src_port);
        }
        for (u, ports) in used.iter_mut().enumerate() {
            ports.sort_unstable();
            ports.dedup();
            // A port may appear once as src over all channels of a node
            // only when unidirectional; bidirectional pairs share numbers,
            // so after dedup the count bounds physical port usage.
            if let Some(&max) = ports.last() {
                if max > self.nodes[u].max_ports {
                    return Err(format!(
                        "node n{u} ({}) uses port {max} beyond radix {}",
                        self.nodes[u].name, self.nodes[u].max_ports
                    ));
                }
            }
        }
        let mut want_switches = 0usize;
        let mut want_terminals = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            let ti = self.terminal_index[i];
            let si = self.switch_index[i];
            match node.kind {
                NodeKind::Terminal => {
                    if ti == NONE_U32 || si != NONE_U32 {
                        return Err(format!("terminal n{i} has bad index maps"));
                    }
                    if self.terminals.get(ti as usize) != Some(&NodeId(i as u32)) {
                        return Err(format!("terminal n{i} not at terminals[{ti}]"));
                    }
                    want_terminals += 1;
                }
                NodeKind::Switch => {
                    if si == NONE_U32 || ti != NONE_U32 {
                        return Err(format!("switch n{i} has bad index maps"));
                    }
                    if self.switches.get(si as usize) != Some(&NodeId(i as u32)) {
                        return Err(format!("switch n{i} not at switches[{si}]"));
                    }
                    want_switches += 1;
                }
            }
        }
        if self.switches.len() != want_switches || self.terminals.len() != want_terminals {
            return Err(format!(
                "switch/terminal lists hold {}/{} entries, expected {want_switches}/{want_terminals}",
                self.switches.len(),
                self.terminals.len()
            ));
        }
        Ok(())
    }

    /// Total number of bidirectional cables (channel pairs) plus
    /// unidirectional channels. Useful for reporting topology sizes.
    pub fn num_cables(&self) -> usize {
        let bidir = self.channels.iter().filter(|c| c.rev.is_some()).count();
        let unidir = self.channels.len() - bidir;
        bidir / 2 + unidir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_switch("s0", 36);
        let s1 = b.add_switch("s1", 36);
        let t0 = b.add_terminal("t0");
        let t1 = b.add_terminal("t1");
        b.link(s0, s1).unwrap();
        b.link(t0, s0).unwrap();
        b.link(t1, s1).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_index_maps() {
        let net = tiny();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_channels(), 6);
        assert_eq!(net.num_switches(), 2);
        assert_eq!(net.num_terminals(), 2);
        assert_eq!(net.num_cables(), 3);
        let t0 = net.node_by_name("t0").unwrap();
        assert!(net.is_terminal(t0));
        assert!(!net.is_switch(t0));
        assert_eq!(net.terminal_index(t0), Some(0));
        assert_eq!(net.switch_index(t0), None);
        let s1 = net.node_by_name("s1").unwrap();
        assert_eq!(net.switch_index(s1), Some(1));
    }

    #[test]
    fn reverse_channels_pair_up() {
        let net = tiny();
        for (id, ch) in net.channels() {
            let r = ch.rev.expect("all links bidirectional");
            let rc = net.channel(r);
            assert_eq!(rc.src, ch.dst);
            assert_eq!(rc.dst, ch.src);
            assert_eq!(rc.rev, Some(id));
            // The two directions of one cable share port numbers.
            assert_eq!(rc.src_port, ch.dst_port);
            assert_eq!(rc.dst_port, ch.src_port);
        }
    }

    #[test]
    fn connectivity_and_diameter() {
        let net = tiny();
        assert!(net.is_strongly_connected());
        // t0 -> s0 -> s1 -> t1 = 3 hops.
        assert_eq!(net.diameter(), Some(3));
    }

    #[test]
    fn hops_to_destination() {
        let net = tiny();
        let t1 = net.node_by_name("t1").unwrap();
        let hops = net.hops_to(t1);
        assert_eq!(hops[net.node_by_name("t0").unwrap().idx()], 3);
        assert_eq!(hops[net.node_by_name("s0").unwrap().idx()], 2);
        assert_eq!(hops[net.node_by_name("s1").unwrap().idx()], 1);
        assert_eq!(hops[t1.idx()], 0);
    }

    #[test]
    fn channel_between_finds_unique_channel() {
        let net = tiny();
        let s0 = net.node_by_name("s0").unwrap();
        let s1 = net.node_by_name("s1").unwrap();
        let c = net.channel_between(s0, s1).unwrap();
        assert_eq!(net.channel(c).src, s0);
        assert_eq!(net.channel(c).dst, s1);
        let t0 = net.node_by_name("t0").unwrap();
        assert!(net.channel_between(t0, s1).is_none());
    }

    #[test]
    fn validate_accepts_builder_output() {
        tiny().validate().unwrap();
    }

    #[test]
    fn csr_matches_adjacency_lists() {
        let net = tiny();
        assert!(net.out_csr.agrees_with(&net.out_adj));
        assert!(net.in_csr.agrees_with(&net.in_adj));
        for (id, _) in net.nodes() {
            assert_eq!(net.out_channels(id), &net.out_adj[id.idx()][..]);
            assert_eq!(net.in_channels(id), &net.in_adj[id.idx()][..]);
        }
    }

    #[test]
    fn validate_rejects_csr_drift() {
        let mut net = tiny();
        net.out_csr.channel_ids.swap(0, 1);
        assert!(net.validate().unwrap_err().contains("out_csr"));
        let mut net = tiny();
        net.in_csr.channel_offsets[1] += 1;
        assert!(net.validate().unwrap_err().contains("in_csr"));
        // Truncated CSR must be rejected, not panic.
        let mut net = tiny();
        net.in_csr.channel_offsets.pop();
        assert!(net.validate().is_err());
    }

    #[test]
    fn csr_agrees_with_edge_cases() {
        let empty = CsrAdj::from_lists(&[]);
        assert!(empty.agrees_with(&[]));
        let lists = vec![vec![ChannelId(0)], vec![], vec![ChannelId(1), ChannelId(2)]];
        let csr = CsrAdj::from_lists(&lists);
        assert!(csr.agrees_with(&lists));
        assert_eq!(csr.row(0), &[ChannelId(0)]);
        assert_eq!(csr.row(1), &[] as &[ChannelId]);
        assert_eq!(csr.row(2), &[ChannelId(1), ChannelId(2)]);
        // Extra trailing ids are drift even when offsets look plausible.
        let mut fat = csr.clone();
        fat.channel_ids.push(ChannelId(9));
        assert!(!fat.agrees_with(&lists));
    }
}
