//! Topology statistics: the summary numbers reported alongside every
//! evaluation table (Table I columns, system descriptions in §V/§VI).

use crate::graph::{Network, NodeKind};

/// Structural summary of a network.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyStats {
    /// Total nodes.
    pub nodes: usize,
    /// Switches.
    pub switches: usize,
    /// Terminals.
    pub terminals: usize,
    /// Bidirectional cables + unidirectional channels.
    pub cables: usize,
    /// Graph diameter in hops (`None` if disconnected).
    pub diameter: Option<usize>,
    /// Minimum / maximum switch degree (cables incident to a switch).
    pub switch_degree: (usize, usize),
    /// Mean terminals per switch.
    pub terminals_per_switch: f64,
    /// Inter-switch cables only (the Fig 9 x-axis).
    pub interswitch_cables: usize,
}

impl TopologyStats {
    /// Compute the summary for `net`.
    pub fn of(net: &Network) -> TopologyStats {
        let mut min_deg = usize::MAX;
        let mut max_deg = 0usize;
        for &s in net.switches() {
            // Every incident cable contributes exactly one outgoing
            // channel; purely unidirectional in-channels also occupy a
            // port.
            let deg = net.out_channels(s).len()
                + net
                    .in_channels(s)
                    .iter()
                    .filter(|&&c| net.channel(c).rev.is_none())
                    .count();
            min_deg = min_deg.min(deg);
            max_deg = max_deg.max(deg);
        }
        if net.num_switches() == 0 {
            min_deg = 0;
        }
        let interswitch = net
            .channels()
            .filter(|(id, ch)| {
                net.node(ch.src).kind == NodeKind::Switch
                    && net.node(ch.dst).kind == NodeKind::Switch
                    && (ch.rev.is_none() || ch.rev.map(|r| r.0 > id.0).unwrap_or(true))
            })
            .count();
        TopologyStats {
            nodes: net.num_nodes(),
            switches: net.num_switches(),
            terminals: net.num_terminals(),
            cables: net.num_cables(),
            diameter: net.diameter(),
            switch_degree: (min_deg, max_deg),
            terminals_per_switch: if net.num_switches() > 0 {
                net.num_terminals() as f64 / net.num_switches() as f64
            } else {
                0.0
            },
            interswitch_cables: interswitch,
        }
    }
}

impl std::fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} terminals, {} switches (deg {}..{}), {} cables ({} inter-switch), diameter {}",
            self.terminals,
            self.switches,
            self.switch_degree.0,
            self.switch_degree.1,
            self.cables,
            self.interswitch_cables,
            self.diameter.map_or("∞".into(), |d| d.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn ring_stats() {
        let s = TopologyStats::of(&topo::ring(5, 2));
        assert_eq!(s.switches, 5);
        assert_eq!(s.terminals, 10);
        assert_eq!(s.interswitch_cables, 5);
        assert_eq!(s.switch_degree, (4, 4)); // 2 ring + 2 terminals
        assert_eq!(s.diameter, Some(4));
        assert!((s.terminals_per_switch - 2.0).abs() < 1e-12);
    }

    #[test]
    fn directed_kautz_counts_unidirectional_ports() {
        let s = TopologyStats::of(&topo::kautz(2, 2, 12, false));
        assert_eq!(s.switches, 12);
        // Each switch: 2 out + 2 in unidirectional + 1 terminal.
        assert_eq!(s.switch_degree, (5, 5));
        assert_eq!(s.interswitch_cables, 24);
    }

    #[test]
    fn fig9_interswitch_axis_matches_spec() {
        let spec = topo::RandomTopoSpec::fig9(200);
        let net = topo::random_topology(&spec, 3);
        let s = TopologyStats::of(&net);
        assert_eq!(s.interswitch_cables, 200);
        assert_eq!(s.terminals, 2048);
    }

    #[test]
    fn display_is_informative() {
        let s = TopologyStats::of(&topo::star(4)).to_string();
        assert!(s.contains("4 terminals"));
        assert!(s.contains("1 switches"));
    }
}
