//! The route server: a subnet-manager loop whose reroutes feed the
//! snapshot store.
//!
//! [`RouteServer`] owns an [`SmLoop`] (the writer side) and a
//! [`SnapshotStore`] (the reader side) and keeps them in the only
//! relationship the serving invariant allows:
//!
//! * Fabric events go through the SM's full machinery — coalescing,
//!   the escalation ladder, staged update planning — *contained*: the
//!   whole recompute runs under [`subnet::armor::contain`], so even a
//!   panic that escapes the SM's own engine containment (a bug in
//!   planning, diffing, remapping …) becomes a typed error instead of
//!   unwinding through the serving thread.
//! * Only a reroute that produced new tables is offered to the store,
//!   and the store's vet gate decides whether it becomes an epoch.
//!   Every failure mode — SM error, contained panic, vet rejection —
//!   leaves the last-good snapshot serving.
//!
//! Query engines attach to the store ([`RouteServer::store`]); the
//! server can live on a background thread (it is `Send` when the engine
//! is) while readers keep their `Arc<SnapshotStore>`.

use crate::query::{QueryEngine, QueryOpts};
use crate::shed::ShedController;
use crate::snapshot::{PublishError, Snapshot, SnapshotStore};
use crate::sync::Arc;
use dfsssp_core::RoutingEngine;
use fabric::{Network, NodeId};
use subnet::{armor, EventOutcome, FabricEvent, Rung, SmError, SmLoop};
use telemetry::{counters, RecorderHandle};

/// Why the server could not apply a batch of events.
#[derive(Debug)]
pub enum ServerError {
    /// The subnet manager failed (or its recompute panicked and was
    /// contained). The down-sets were rolled back; the previous epoch
    /// keeps serving.
    Sm(SmError),
    /// The SM rerouted but the store's vet gate refused the artifact.
    /// The SM now serves tables the store never published — the last
    /// vet-clean epoch keeps serving readers.
    Publish(PublishError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Sm(e) => write!(f, "subnet manager: {e}"),
            ServerError::Publish(e) => write!(f, "publish gate: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// What one served batch did: the SM outcome plus the epoch it became
/// (when the reroute published).
#[derive(Clone, Debug)]
pub struct ServedOutcome {
    /// The subnet manager's view of the batch.
    pub outcome: EventOutcome,
    /// Epoch the new tables were published as; `None` when the batch
    /// was a no-op (no reroute, nothing to publish).
    pub epoch: Option<u64>,
}

/// A subnet manager wired to a snapshot store. See the module docs.
pub struct RouteServer<E> {
    sm: SmLoop<E>,
    store: Arc<SnapshotStore>,
    /// Shed controllers of the query engines spawned off this server;
    /// lets epoch publication see overload state (and vice versa).
    sheds: Vec<Arc<ShedController>>,
    recorder: RecorderHandle,
}

impl<E: RoutingEngine> RouteServer<E> {
    /// Bring up the fabric and open the store on the resulting tables
    /// (epoch 0). Fails if bring-up fails or its artifact cannot pass
    /// the vet gate.
    pub fn bring_up(engine: E, net: Network, sm_node: NodeId) -> Result<Self, ServerError> {
        Self::bring_up_recorded(engine, net, sm_node, telemetry::noop())
    }

    /// [`RouteServer::bring_up`] with a telemetry sink attached to both
    /// the SM loop (reroute metrics) and the store (publish metrics).
    pub fn bring_up_recorded(
        engine: E,
        net: Network,
        sm_node: NodeId,
        recorder: RecorderHandle,
    ) -> Result<Self, ServerError> {
        let mut sm = SmLoop::bring_up(engine, net, sm_node).map_err(ServerError::Sm)?;
        sm.set_recorder(recorder.clone());
        let mut store = SnapshotStore::open(
            sm.network().clone(),
            sm.programmed().routes.clone(),
            Some(sm.reference()),
        )
        .map_err(ServerError::Publish)?;
        Arc::get_mut(&mut store)
            .expect("store not yet shared")
            .set_recorder(recorder.clone());
        Ok(RouteServer {
            sm,
            store,
            sheds: Vec::new(),
            recorder,
        })
    }

    /// The store query engines read from. Clone the `Arc` freely; it
    /// stays valid (serving the last published epoch) even if the
    /// server itself is dropped.
    pub fn store(&self) -> Arc<SnapshotStore> {
        self.store.clone()
    }

    /// The current snapshot (shorthand for `store().read()`).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.read()
    }

    /// Spawn a query engine over this server's store. The engine's shed
    /// controller is registered with the server, so event outcomes
    /// published while the engine is thinning load carry an
    /// [`Rung::OverloadShed`] rung — reroute storms and overload are
    /// visible in one escalation ladder.
    pub fn query_engine(&mut self, opts: QueryOpts) -> QueryEngine {
        let engine = QueryEngine::new(self.store(), opts);
        self.sheds.push(engine.shed_controller());
        engine
    }

    /// The underlying subnet-manager loop (fallback, breaker and retry
    /// knobs live there).
    pub fn sm(&mut self) -> &mut SmLoop<E> {
        &mut self.sm
    }

    /// Apply one fabric event. See [`RouteServer::handle_batch`].
    pub fn handle(&mut self, event: FabricEvent) -> Result<ServedOutcome, ServerError> {
        self.handle_batch(&[event])
    }

    /// Apply a batch of fabric events: coalesce + reroute in the SM
    /// (contained), then offer the new tables to the store's vet gate.
    /// On any error the last-good epoch keeps serving.
    pub fn handle_batch(&mut self, events: &[FabricEvent]) -> Result<ServedOutcome, ServerError> {
        // Belt and braces over the SM's own engine containment: a panic
        // anywhere in the recompute (planning, diffing, remapping) must
        // not unwind through the serving thread.
        let mut outcome =
            armor::contain(|| self.sm.handle_batch(events)).map_err(ServerError::Sm)?;
        if !outcome.rerouted {
            return Ok(ServedOutcome {
                outcome,
                epoch: None,
            });
        }
        let snap = self
            .store
            .publish(
                self.sm.network().clone(),
                self.sm.programmed().routes.clone(),
                "event",
                &outcome.plan.describe(),
                Some(self.sm.reference()),
            )
            .map_err(ServerError::Publish)?;
        // Fold serving-side overload into the escalation record: an
        // epoch published while an attached engine is thinning load is
        // a reroute storm meeting a flash crowd — the ladder should say
        // so. The shed floor guarantees admitted_permille > 0 here.
        if let Some(admitted) = self
            .sheds
            .iter()
            .filter(|s| s.shedding())
            .map(|s| s.admitted_permille())
            .min()
        {
            outcome.rungs.push(Rung::OverloadShed {
                admitted_permille: admitted,
            });
            self.recorder.add(counters::RUNG_OVERLOAD_SHED, 1);
        }
        Ok(ServedOutcome {
            outcome,
            epoch: Some(snap.epoch),
        })
    }
}

impl<E> std::fmt::Debug for RouteServer<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteServer")
            .field("epoch", &self.store.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PathQuery;
    use dfsssp_core::{DfSssp, EngineConfig};
    use fabric::{topo, ChannelId};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fat_tree() -> Network {
        topo::kary_ntree(4, 2)
    }

    fn uplinks(net: &Network) -> Vec<ChannelId> {
        net.channels()
            .filter(|(id, ch)| {
                net.is_switch(ch.src) && net.is_switch(ch.dst) && ch.rev.is_none_or(|r| r.0 > id.0)
            })
            .map(|(id, _)| id)
            .collect()
    }

    #[test]
    fn bring_up_publishes_epoch_zero() {
        let net = fat_tree();
        let server = RouteServer::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();
        let snap = server.snapshot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.source, "bring-up");
        for &t in net.terminals() {
            assert!(snap.resolve(t).is_some());
        }
    }

    #[test]
    fn events_publish_new_epochs() {
        let net = fat_tree();
        let mut server =
            RouteServer::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();
        let c = uplinks(&net)[0];
        let served = server.handle(FabricEvent::CableDown(c)).unwrap();
        assert_eq!(served.epoch, Some(1));
        assert_eq!(server.snapshot().epoch, 1);
        assert_eq!(server.snapshot().source, "event");
        assert!(!server.snapshot().plan.is_empty());
        // Flap of a healthy cable with no net change: no reroute, no epoch.
        let flapper = uplinks(&net)[1];
        let served = server
            .handle_batch(&[
                FabricEvent::CableDown(flapper),
                FabricEvent::CableUp(flapper),
            ])
            .unwrap();
        assert_eq!(served.epoch, None);
        assert_eq!(server.snapshot().epoch, 1);
        // Repair publishes again.
        let served = server.handle(FabricEvent::CableUp(c)).unwrap();
        assert_eq!(served.epoch, Some(2));
    }

    #[test]
    fn quarantined_terminals_drop_out_of_the_snapshot() {
        let net = fat_tree();
        let mut server =
            RouteServer::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();
        let leaf = *net
            .switches()
            .iter()
            .find(|&&s| net.node(s).level == Some(0))
            .unwrap();
        let served = server.handle(FabricEvent::SwitchDown(leaf)).unwrap();
        assert!(!served.outcome.quarantined.is_empty());
        let snap = server.snapshot();
        for &q in &served.outcome.quarantined {
            assert_eq!(snap.resolve(q), None, "quarantined terminal still resolves");
        }
        // A query engine attached to the store sees the same truth.
        let engine = server.query_engine(QueryOpts::default());
        let q = served.outcome.quarantined[0];
        let other = *net
            .terminals()
            .iter()
            .find(|t| !served.outcome.quarantined.contains(t))
            .unwrap();
        assert!(matches!(
            engine.query(PathQuery::new(q, other)),
            Err(crate::query::ServeError::Quarantined(_))
        ));
        assert!(matches!(
            engine.query(PathQuery::new(other, q)),
            Err(crate::query::ServeError::Quarantined(_))
        ));
    }

    /// An engine that panics on every reroute after the first.
    #[derive(Debug)]
    struct PanicAfterFirst {
        inner: DfSssp,
        calls: AtomicUsize,
    }

    impl RoutingEngine for PanicAfterFirst {
        fn name(&self) -> &'static str {
            "panic-after-first"
        }
        fn deadlock_free(&self) -> bool {
            true
        }
        fn route_in(
            &self,
            net: &Network,
            cx: &dfsssp_core::ComputeCtx,
        ) -> Result<fabric::Routes, dfsssp_core::RouteError> {
            if self.calls.fetch_add(1, Ordering::SeqCst) > 0 {
                panic!("chaos monkey");
            }
            self.inner.route_in(net, cx)
        }
        fn tunables(&self) -> bool {
            true
        }
        fn config(&self) -> EngineConfig {
            self.inner.config()
        }
        fn set_config(&mut self, config: EngineConfig) {
            self.inner.set_config(config)
        }
    }

    #[test]
    fn contained_panic_keeps_last_good_epoch_serving() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let net = fat_tree();
        let engine = PanicAfterFirst {
            inner: DfSssp::new(),
            calls: AtomicUsize::new(0),
        };
        let mut server = RouteServer::bring_up(engine, net.clone(), net.terminals()[0]).unwrap();
        server.sm().set_fallback(None); // no rung to hide behind
        let c = uplinks(&net)[0];
        let err = server.handle(FabricEvent::CableDown(c)).unwrap_err();
        std::panic::set_hook(hook);
        assert!(matches!(err, ServerError::Sm(SmError::EnginePanicked(_))));
        // The store still serves epoch 0 and answers queries.
        let snap = server.snapshot();
        assert_eq!(snap.epoch, 0);
        let (a, b) = (net.terminals()[0], net.terminals()[1]);
        assert!(snap.answer(a, b).is_ok());
    }

    #[test]
    fn server_moves_to_a_background_thread() {
        // The writer side must be Send: SmLoop + store handle cross a
        // thread boundary while readers keep querying from here.
        let net = fat_tree();
        let mut server =
            RouteServer::bring_up(DfSssp::new(), net.clone(), net.terminals()[0]).unwrap();
        let store = server.store();
        let c = uplinks(&net)[0];
        let writer = std::thread::spawn(move || {
            server.handle(FabricEvent::CableDown(c)).unwrap();
            server.handle(FabricEvent::CableUp(c)).unwrap();
            server.snapshot().epoch
        });
        let final_epoch = writer.join().unwrap();
        assert_eq!(final_epoch, 2);
        assert_eq!(store.read().epoch, 2);
    }
}
